//! Lock-cheap metrics registry: labelled counters, gauges, and
//! fixed-bucket histograms, with Prometheus-text and JSON exposition.
//!
//! Hot-path updates are single atomic operations on handles cloned out
//! of the registry; the registry lock is taken only on registration and
//! on snapshot/exposition.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An ordered label set (`driver="ganglia", source="x:xml"`).
///
/// Keep cardinality low: label values must come from small closed sets
/// (driver names, source URLs, GLUE groups, stage names) — never from
/// per-request data such as SQL text or row contents.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    /// The empty label set.
    pub fn none() -> Labels {
        Labels::default()
    }

    /// Build from `(key, value)` pairs; keys are sorted for a canonical
    /// identity, so `[a, b]` and `[b, a]` address the same series.
    pub fn from_pairs(pairs: &[(&str, &str)]) -> Labels {
        let mut v: Vec<(String, String)> = pairs
            .iter()
            .map(|(k, val)| (k.to_string(), val.to_string()))
            .collect();
        v.sort();
        Labels(v)
    }

    /// A copy with one more label appended (re-canonicalised).
    pub fn with(&self, key: &str, value: &str) -> Labels {
        let mut v = self.0.clone();
        v.push((key.to_string(), value.to_string()));
        v.sort();
        Labels(v)
    }

    /// True when no labels are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The pairs in canonical order.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.0
    }

    /// Prometheus body text: `k1="v1",k2="v2"` (no braces). Label
    /// values escape `\`, `"`, and newline per the text exposition
    /// format, so a value containing any of them cannot corrupt the
    /// line-oriented output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let escaped = v
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            let _ = write!(out, "{k}=\"{escaped}\"");
        }
        out
    }
}

/// Saturating add on a shared atomic (counters never wrap to zero).
fn saturating_add(cell: &AtomicU64, n: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(n);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A monotonically increasing counter. Clones share the same cell, so a
/// handle can live inside a stats struct while the registry exposes it.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (saturating).
    pub fn add(&self, n: u64) {
        saturating_add(&self.cell, n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (pool sizes, queue depths).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set to an absolute value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default latency buckets in milliseconds (upper bounds).
pub const DEFAULT_LATENCY_BUCKETS_MS: &[f64] = &[
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
];

struct HistogramInner {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>, // one per bound, plus a trailing +Inf bucket
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram with a saturating overflow (+Inf) bucket.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Histogram over ascending upper bounds (`+Inf` is implicit).
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// Latency histogram with [`DEFAULT_LATENCY_BUCKETS_MS`].
    pub fn latency_ms() -> Histogram {
        Histogram::new(DEFAULT_LATENCY_BUCKETS_MS)
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.inner.bounds.len()); // overflow bucket
        saturating_add(&self.inner.counts[idx], 1);
        let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observation count across all buckets.
    pub fn count(&self) -> u64 {
        self.inner
            .counts
            .iter()
            .fold(0u64, |acc, c| acc.saturating_add(c.load(Ordering::Relaxed)))
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket `(upper_bound, count)` pairs; the final entry is the
    /// `+Inf` overflow bucket.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        let mut out: Vec<(f64, u64)> = self
            .inner
            .bounds
            .iter()
            .zip(&self.inner.counts)
            .map(|(&b, c)| (b, c.load(Ordering::Relaxed)))
            .collect();
        out.push((
            f64::INFINITY,
            self.inner.counts[self.inner.bounds.len()].load(Ordering::Relaxed),
        ));
        out
    }

    /// Estimate the `q`-quantile (0..=1) as the upper bound of the
    /// first bucket whose cumulative count reaches `q * total`.
    /// Returns `None` with no observations; observations past the last
    /// bound report the last finite bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (bound, count) in self.buckets() {
            cumulative = cumulative.saturating_add(count);
            if cumulative >= rank {
                return Some(if bound.is_finite() {
                    bound
                } else {
                    *self.inner.bounds.last().expect("non-empty bounds")
                });
            }
        }
        Some(*self.inner.bounds.last().expect("non-empty bounds"))
    }

    #[cfg(test)]
    fn saturate_overflow_for_test(&self) {
        self.inner.counts[self.inner.bounds.len()].store(u64::MAX, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }

    fn duplicate(&self) -> Metric {
        match self {
            Metric::Counter(c) => Metric::Counter(c.clone()),
            Metric::Gauge(g) => Metric::Gauge(g.clone()),
            Metric::Histogram(h) => Metric::Histogram(h.clone()),
        }
    }
}

struct Family {
    help: String,
    series: BTreeMap<Labels, Metric>,
}

/// One flat exposition sample: a metric (or histogram component) at one
/// label set.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Sample {
    /// Sample name (`gridrm_requests_total`, `…_bucket`, `…_sum`, …).
    pub name: String,
    /// Rendered labels (`driver="ganglia"`), empty when unlabelled.
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

/// Kind of a recordable time-series point (see
/// [`Registry::series_points`]): counters are cumulative (rate/delta
/// derivable), gauges are instantaneous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointKind {
    /// Cumulative, monotonically non-decreasing.
    Counter,
    /// Instantaneous level.
    Gauge,
}

impl PointKind {
    /// Lower-case name (`counter` / `gauge`), for exposition rows.
    pub fn name(&self) -> &'static str {
        match self {
            PointKind::Counter => "counter",
            PointKind::Gauge => "gauge",
        }
    }
}

impl Serialize for PointKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.name().to_owned())
    }
}

impl<'de> Deserialize<'de> for PointKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v.as_str() {
            Some("counter") => Ok(PointKind::Counter),
            Some("gauge") => Ok(PointKind::Gauge),
            _ => Err(serde::DeError::custom(format!(
                "expected `counter` or `gauge`, got {v}"
            ))),
        }
    }
}

/// One recordable point of one series, as sampled by the time-series
/// recorder: the family (or histogram-component) name, the rendered
/// labels, and the current value.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Series name (`gridrm_requests_total`, `…_count`, `…_p95`, …).
    pub name: String,
    /// Rendered labels (`driver="ganglia"`), empty when unlabelled.
    pub labels: String,
    /// Counter (cumulative) or gauge (instantaneous).
    pub kind: PointKind,
    /// Value at sample time.
    pub value: f64,
}

/// Snapshot of one metric family for JSON exposition.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct MetricSnapshot {
    /// Family name.
    pub name: String,
    /// Metric kind: `counter`, `gauge`, or `histogram`.
    pub kind: String,
    /// Help text.
    pub help: String,
    /// Flat samples of this family.
    pub samples: Vec<Sample>,
}

/// The gateway-wide metric registry.
///
/// Registration returns shared handles; re-registering the same
/// `(name, labels)` returns the existing series, so independently
/// constructed components converge on the same cells.
#[derive(Default)]
pub struct Registry {
    families: RwLock<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: Labels,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut families = self.families.write();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        family.series.entry(labels).or_insert_with(make).duplicate()
    }

    /// Register (or fetch) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: Labels) -> Counter {
        match self.register(name, help, labels, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Register (or fetch) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: Labels) -> Gauge {
        match self.register(name, help, labels, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Register (or fetch) a histogram series with the given buckets.
    pub fn histogram(&self, name: &str, help: &str, labels: Labels, bounds: &[f64]) -> Histogram {
        match self.register(name, help, labels, || {
            Metric::Histogram(Histogram::new(bounds))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as {}", other.kind()),
        }
    }

    /// Expose an externally owned counter cell under a registry name.
    ///
    /// Used to retrofit pre-existing stats structs: their counter
    /// handles keep working and the registry sees the same cell.
    pub fn expose_counter(&self, name: &str, help: &str, labels: Labels, counter: &Counter) {
        let mut families = self.families.write();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        family
            .series
            .entry(labels)
            .or_insert_with(|| Metric::Counter(counter.clone()));
    }

    /// Snapshot every family for JSON exposition.
    ///
    /// Output order is deterministic: families sort by metric name (the
    /// `BTreeMap` key) and, within a family, series sort by their
    /// *rendered* label text — while each histogram series keeps its
    /// own `_bucket` (ascending, `+Inf` last) / `_sum` / `_count`
    /// internal order. Exposition diffs and determinism fingerprints
    /// therefore stay stable across runs.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let families = self.families.read();
        families
            .iter()
            .map(|(name, family)| MetricSnapshot {
                name: name.clone(),
                kind: family
                    .series
                    .values()
                    .next()
                    .map(|m| m.kind().to_string())
                    .unwrap_or_else(|| "counter".to_string()),
                help: family.help.clone(),
                samples: {
                    let mut series: Vec<(String, &Metric)> = family
                        .series
                        .iter()
                        .map(|(labels, metric)| (labels.render(), metric))
                        .collect();
                    series.sort_by(|a, b| a.0.cmp(&b.0));
                    series
                        .iter()
                        .flat_map(|(rendered, metric)| flatten(name, rendered, metric))
                        .collect()
                },
            })
            .collect()
    }

    /// All samples across all families, flattened (virtual-table rows).
    pub fn samples(&self) -> Vec<Sample> {
        self.snapshot()
            .into_iter()
            .flat_map(|s| s.samples)
            .collect()
    }

    /// One recordable point per series, for the time-series recorder.
    ///
    /// Counters and gauges yield one point each; a histogram expands to
    /// `{name}_count` / `{name}_sum` (cumulative, counter-kind) plus
    /// `{name}_p50` / `{name}_p95` / `{name}_p99` quantile estimates
    /// (gauge-kind, omitted until the histogram has observations).
    /// Order is deterministic: family name, then rendered labels.
    pub fn series_points(&self) -> Vec<SeriesPoint> {
        let families = self.families.read();
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            let mut series: Vec<(String, &Metric)> = family
                .series
                .iter()
                .map(|(labels, metric)| (labels.render(), metric))
                .collect();
            series.sort_by(|a, b| a.0.cmp(&b.0));
            for (labels, metric) in series {
                match metric {
                    Metric::Counter(c) => out.push(SeriesPoint {
                        name: name.clone(),
                        labels,
                        kind: PointKind::Counter,
                        value: c.get() as f64,
                    }),
                    Metric::Gauge(g) => out.push(SeriesPoint {
                        name: name.clone(),
                        labels,
                        kind: PointKind::Gauge,
                        value: g.get(),
                    }),
                    Metric::Histogram(h) => {
                        out.push(SeriesPoint {
                            name: format!("{name}_count"),
                            labels: labels.clone(),
                            kind: PointKind::Counter,
                            value: h.count() as f64,
                        });
                        out.push(SeriesPoint {
                            name: format!("{name}_sum"),
                            labels: labels.clone(),
                            kind: PointKind::Counter,
                            value: h.sum(),
                        });
                        for (q, suffix) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
                            if let Some(v) = h.quantile(q) {
                                out.push(SeriesPoint {
                                    name: format!("{name}_{suffix}"),
                                    labels: labels.clone(),
                                    kind: PointKind::Gauge,
                                    value: v,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Sum, across every series of histogram family `name`, of
    /// `(observations ≤ threshold, total observations)`. `None` when
    /// the family is absent or not a histogram. For an exact split the
    /// threshold should coincide with a bucket upper bound; otherwise
    /// the next lower bound is the effective cut.
    pub fn histogram_good_total(&self, name: &str, threshold: f64) -> Option<(u64, u64)> {
        let families = self.families.read();
        let family = families.get(name)?;
        let mut good = 0u64;
        let mut total = 0u64;
        let mut saw_histogram = false;
        for metric in family.series.values() {
            if let Metric::Histogram(h) = metric {
                saw_histogram = true;
                for (bound, count) in h.buckets() {
                    if bound <= threshold {
                        good = good.saturating_add(count);
                    }
                    total = total.saturating_add(count);
                }
            }
        }
        saw_histogram.then_some((good, total))
    }

    /// Point-in-time value of each series of family `name` as
    /// `(rendered labels, value)`: counters and gauges report their
    /// value, histograms their observation count. Empty when the
    /// family is absent.
    pub fn family_values(&self, name: &str) -> Vec<(String, f64)> {
        let families = self.families.read();
        let Some(family) = families.get(name) else {
            return Vec::new();
        };
        let mut out: Vec<(String, f64)> = family
            .series
            .iter()
            .map(|(labels, metric)| {
                let value = match metric {
                    Metric::Counter(c) => c.get() as f64,
                    Metric::Gauge(g) => g.get(),
                    Metric::Histogram(h) => h.count() as f64,
                };
                (labels.render(), value)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Render the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for snap in self.snapshot() {
            let _ = writeln!(out, "# HELP {} {}", snap.name, snap.help);
            let _ = writeln!(out, "# TYPE {} {}", snap.name, snap.kind);
            for sample in &snap.samples {
                if sample.labels.is_empty() {
                    let _ = writeln!(out, "{} {}", sample.name, format_value(sample.value));
                } else {
                    let _ = writeln!(
                        out,
                        "{}{{{}}} {}",
                        sample.name,
                        sample.labels,
                        format_value(sample.value)
                    );
                }
            }
        }
        out
    }
}

fn format_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn flatten(name: &str, labels: &str, metric: &Metric) -> Vec<Sample> {
    match metric {
        Metric::Counter(c) => vec![Sample {
            name: name.to_string(),
            labels: labels.to_string(),
            value: c.get() as f64,
        }],
        Metric::Gauge(g) => vec![Sample {
            name: name.to_string(),
            labels: labels.to_string(),
            value: g.get(),
        }],
        Metric::Histogram(h) => {
            let mut out = Vec::new();
            let mut cumulative = 0u64;
            for (bound, count) in h.buckets() {
                cumulative = cumulative.saturating_add(count);
                let le = if bound.is_finite() {
                    format_value(bound)
                } else {
                    "+Inf".to_string()
                };
                let le_labels = if labels.is_empty() {
                    format!("le=\"{le}\"")
                } else {
                    format!("{labels},le=\"{le}\"")
                };
                out.push(Sample {
                    name: format!("{name}_bucket"),
                    labels: le_labels,
                    value: cumulative as f64,
                });
            }
            out.push(Sample {
                name: format!("{name}_sum"),
                labels: labels.to_string(),
                value: h.sum(),
            });
            out.push(Sample {
                name: format!("{name}_count"),
                labels: labels.to_string(),
                value: h.count() as f64,
            });
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shared_between_handles() {
        let reg = Registry::new();
        let a = reg.counter("gridrm_requests_total", "Requests handled", Labels::none());
        let b = reg.counter("gridrm_requests_total", "Requests handled", Labels::none());
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.samples()[0].value, 3.0);
    }

    #[test]
    fn labels_are_canonical() {
        let x = Labels::from_pairs(&[("b", "2"), ("a", "1")]);
        let y = Labels::from_pairs(&[("a", "1"), ("b", "2")]);
        assert_eq!(x, y);
        assert_eq!(x.render(), "a=\"1\",b=\"2\"");
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::new(&[1.0, 5.0, 10.0]);
        h.observe(0.5); // <= 1
        h.observe(1.0); // <= 1 (boundary lands in its own bucket)
        h.observe(5.0); // <= 5
        h.observe(7.0); // <= 10
        h.observe(99.0); // overflow
        let b = h.buckets();
        assert_eq!(b[0], (1.0, 2));
        assert_eq!(b[1], (5.0, 1));
        assert_eq!(b[2], (10.0, 1));
        assert_eq!(b[3].1, 1);
        assert!(b[3].0.is_infinite());
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 0.5 + 1.0 + 5.0 + 7.0 + 99.0);
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new(&[1.0, 2.0, 5.0, 10.0]);
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..90 {
            h.observe(1.5); // 90 in (1, 2]
        }
        for _ in 0..10 {
            h.observe(8.0); // 10 in (5, 10]
        }
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(0.9), Some(2.0));
        assert_eq!(h.quantile(0.95), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        // Observations beyond the last bound report the last finite bound.
        let h2 = Histogram::new(&[1.0]);
        h2.observe(50.0);
        assert_eq!(h2.quantile(0.5), Some(1.0));
    }

    #[test]
    fn histogram_overflow_saturates() {
        let h = Histogram::new(&[1.0]);
        h.saturate_overflow_for_test();
        h.observe(100.0); // must not wrap
        let b = h.buckets();
        assert_eq!(b[1].1, u64::MAX);
        assert_eq!(h.count(), u64::MAX); // saturating total
    }

    #[test]
    fn prometheus_rendering() {
        let reg = Registry::new();
        let c = reg.counter(
            "gridrm_cache_hits_total",
            "Cache hits",
            Labels::from_pairs(&[("proto", "a:xml")]),
        );
        c.add(4);
        let g = reg.gauge(
            "gridrm_pool_idle",
            "Idle pooled connections",
            Labels::none(),
        );
        g.set(2.0);
        let h = reg.histogram(
            "gridrm_request_latency_ms",
            "Latency",
            Labels::from_pairs(&[("driver", "ganglia")]),
            &[1.0, 10.0],
        );
        h.observe(3.0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE gridrm_cache_hits_total counter"));
        assert!(text.contains("gridrm_cache_hits_total{proto=\"a:xml\"} 4"));
        assert!(text.contains("gridrm_pool_idle 2"));
        assert!(text.contains("gridrm_request_latency_ms_bucket{driver=\"ganglia\",le=\"10\"} 1"));
        assert!(text.contains("gridrm_request_latency_ms_bucket{driver=\"ganglia\",le=\"+Inf\"} 1"));
        assert!(text.contains("gridrm_request_latency_ms_count{driver=\"ganglia\"} 1"));
    }

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        let backslash = Labels::from_pairs(&[("path", "C:\\tmp")]);
        assert_eq!(backslash.render(), "path=\"C:\\\\tmp\"");
        let quote = Labels::from_pairs(&[("msg", "he said \"hi\"")]);
        assert_eq!(quote.render(), "msg=\"he said \\\"hi\\\"\"");
        let newline = Labels::from_pairs(&[("msg", "line1\nline2")]);
        assert_eq!(newline.render(), "msg=\"line1\\nline2\"");
        // A newline smuggled into a label value must not break the
        // line-oriented text format: the rendered exposition stays one
        // sample per line.
        let reg = Registry::new();
        reg.counter("gridrm_evil_total", "Evil", newline).inc();
        let text = reg.render_prometheus();
        assert!(text.contains("gridrm_evil_total{msg=\"line1\\nline2\"} 1"));
        assert_eq!(text.lines().count(), 3, "HELP + TYPE + one sample");
    }

    #[test]
    fn exposition_order_is_deterministic() {
        // Register in one order, read back sorted by name then rendered
        // labels — and histogram internals keep bucket order (+Inf last)
        // rather than sorting "+Inf" before "1" textually.
        let reg = Registry::new();
        reg.counter("gridrm_z_total", "Z", Labels::from_pairs(&[("kind", "b")]))
            .inc();
        reg.counter("gridrm_z_total", "Z", Labels::from_pairs(&[("kind", "a")]))
            .inc();
        reg.counter("gridrm_a_total", "A", Labels::none()).inc();
        let h = reg.histogram("gridrm_lat_ms", "L", Labels::none(), &[1.0, 10.0]);
        h.observe(3.0);

        let flat: Vec<(String, String)> = reg
            .samples()
            .into_iter()
            .map(|s| (s.name, s.labels))
            .collect();
        let expect: Vec<(String, String)> = [
            ("gridrm_a_total", ""),
            ("gridrm_lat_ms_bucket", "le=\"1\""),
            ("gridrm_lat_ms_bucket", "le=\"10\""),
            ("gridrm_lat_ms_bucket", "le=\"+Inf\""),
            ("gridrm_lat_ms_sum", ""),
            ("gridrm_lat_ms_count", ""),
            ("gridrm_z_total", "kind=\"a\""),
            ("gridrm_z_total", "kind=\"b\""),
        ]
        .into_iter()
        .map(|(n, l)| (n.to_string(), l.to_string()))
        .collect();
        assert_eq!(flat, expect);
        // Prometheus text renders the very same order, twice over.
        assert_eq!(reg.render_prometheus(), reg.render_prometheus());
    }

    #[test]
    fn series_points_expand_histograms() {
        let reg = Registry::new();
        reg.counter("gridrm_x_total", "X", Labels::none()).add(3);
        let h = reg.histogram("gridrm_lat_ms", "L", Labels::none(), &[1.0, 10.0]);
        let names = |reg: &Registry| -> Vec<String> {
            reg.series_points().into_iter().map(|p| p.name).collect()
        };
        // No observations: quantile points are withheld.
        assert_eq!(
            names(&reg),
            vec!["gridrm_lat_ms_count", "gridrm_lat_ms_sum", "gridrm_x_total"]
        );
        h.observe(5.0);
        assert_eq!(
            names(&reg),
            vec![
                "gridrm_lat_ms_count",
                "gridrm_lat_ms_sum",
                "gridrm_lat_ms_p50",
                "gridrm_lat_ms_p95",
                "gridrm_lat_ms_p99",
                "gridrm_x_total"
            ]
        );
        let points = reg.series_points();
        assert_eq!(points[0].kind, PointKind::Counter);
        assert_eq!(points[0].value, 1.0);
        assert_eq!(points[2].kind, PointKind::Gauge);
        assert_eq!(points[2].value, 10.0); // p50 reports the bucket bound
    }

    #[test]
    fn histogram_good_total_splits_at_bucket_bound() {
        let reg = Registry::new();
        let h = reg.histogram("gridrm_lat_ms", "L", Labels::none(), &[10.0, 100.0]);
        for _ in 0..9 {
            h.observe(5.0);
        }
        h.observe(50.0);
        assert_eq!(
            reg.histogram_good_total("gridrm_lat_ms", 10.0),
            Some((9, 10))
        );
        assert_eq!(
            reg.histogram_good_total("gridrm_lat_ms", 100.0),
            Some((10, 10))
        );
        assert_eq!(reg.histogram_good_total("gridrm_missing", 10.0), None);
        reg.counter("gridrm_x_total", "X", Labels::none()).inc();
        assert_eq!(reg.histogram_good_total("gridrm_x_total", 10.0), None);
    }

    #[test]
    fn json_snapshot_roundtrips() {
        let reg = Registry::new();
        reg.counter("gridrm_events_total", "Events", Labels::none())
            .add(7);
        let snaps = reg.snapshot();
        let json = serde_json::to_string(&snaps).unwrap();
        let back: Vec<MetricSnapshot> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snaps);
    }
}
