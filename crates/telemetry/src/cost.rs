//! The cost accounting plane: a [`CostLedger`] that attributes wire
//! bytes, messages, rows, driver fetch units and per-stage virtual time
//! to every request, subscription delta and probe.
//!
//! Costs are carried as [`CostVector`]s on trace spans and roll up the
//! span tree: when a child span finishes, its *inclusive* cost (its own
//! direct charges plus everything its children rolled up into it) is
//! credited to its parent through the ledger's pending table, so by the
//! time a root span commits, its cost vector is the whole query's bill.
//! Remote segments ship their spans — cost vectors included — back over
//! the wire, so a Grid fan-out's root accounts for work done on other
//! gateways too.
//!
//! Beyond per-query attribution the ledger keeps **intrusion**
//! accounting in the sense of Zhang et al.'s monitoring-system study:
//! messages and bytes imposed per Grid site, split by cause (`query`,
//! `probe`, `subscription`, `gossip`), with first/last timestamps so
//! per-virtual-second rates fall out. Rows where the site is the local
//! site are traffic this gateway *endured* (inbound wire service,
//! probes, local delta delivery); rows for other sites are traffic this
//! gateway *imposed* on them (fan-out segments, grid subscriptions,
//! event gossip).

use crate::journal::{Journal, JournalSeverity, KIND_COST_BUDGET};
use crate::metrics::{Counter, Labels, Registry};
use gridrm_simnet::SimClock;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The additive cost of a piece of work. Every field defaults to zero
/// so pre-cost peers' wire messages (and persisted spans) still decode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostVector {
    /// Wire messages sent.
    #[serde(default)]
    pub msgs_out: u64,
    /// Wire messages received.
    #[serde(default)]
    pub msgs_in: u64,
    /// Wire bytes sent.
    #[serde(default)]
    pub bytes_out: u64,
    /// Wire bytes received.
    #[serde(default)]
    pub bytes_in: u64,
    /// Rows materialised by drivers (before any consolidation).
    #[serde(default)]
    pub rows_scanned: u64,
    /// Rows returned to the requester (or shipped in a delta).
    #[serde(default)]
    pub rows_returned: u64,
    /// Native driver fetches (one per driver execute attempt).
    #[serde(default)]
    pub fetch_units: u64,
    /// Virtual milliseconds attributed to the charged stage.
    #[serde(default)]
    pub stage_ms: u64,
}

impl CostVector {
    /// Element-wise saturating addition.
    pub fn add(&mut self, other: &CostVector) {
        self.msgs_out = self.msgs_out.saturating_add(other.msgs_out);
        self.msgs_in = self.msgs_in.saturating_add(other.msgs_in);
        self.bytes_out = self.bytes_out.saturating_add(other.bytes_out);
        self.bytes_in = self.bytes_in.saturating_add(other.bytes_in);
        self.rows_scanned = self.rows_scanned.saturating_add(other.rows_scanned);
        self.rows_returned = self.rows_returned.saturating_add(other.rows_returned);
        self.fetch_units = self.fetch_units.saturating_add(other.fetch_units);
        self.stage_ms = self.stage_ms.saturating_add(other.stage_ms);
    }

    /// Messages in either direction.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_out.saturating_add(self.msgs_in)
    }

    /// Bytes in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_out.saturating_add(self.bytes_in)
    }

    /// True when every component is zero.
    pub fn is_zero(&self) -> bool {
        *self == CostVector::default()
    }
}

/// Why traffic was imposed on a site — the closed intrusion cause set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IntrusionCause {
    /// Consolidated/realtime query traffic (fan-out segments, inbound
    /// query service).
    Query,
    /// Active health probes.
    Probe,
    /// Continuous-query subscriptions and delta delivery.
    Subscription,
    /// Inter-gateway event propagation.
    Gossip,
}

impl IntrusionCause {
    /// Lower-case label value (`query`, `probe`, `subscription`,
    /// `gossip`).
    pub fn name(&self) -> &'static str {
        match self {
            IntrusionCause::Query => "query",
            IntrusionCause::Probe => "probe",
            IntrusionCause::Subscription => "subscription",
            IntrusionCause::Gossip => "gossip",
        }
    }

    /// All causes, in label order.
    pub fn all() -> [IntrusionCause; 4] {
        [
            IntrusionCause::Query,
            IntrusionCause::Probe,
            IntrusionCause::Subscription,
            IntrusionCause::Gossip,
        ]
    }
}

/// One completed root request's bill, retained in a bounded ring and
/// served as the `gridrm_query_costs` virtual table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryCostEntry {
    /// The trace whose root this entry bills.
    pub trace_id: String,
    /// Site of the gateway that ran the root.
    pub site: String,
    /// Request label / SQL summary.
    pub request: String,
    /// Virtual start time of the root span.
    pub started_ms: u64,
    /// Virtual end time of the root span.
    pub finished_ms: u64,
    /// The inclusive cost (root + descendants, remote spans included).
    pub cost: CostVector,
    /// True when the configured cost budget was exceeded.
    pub over_budget: bool,
}

/// Accumulated intrusion for one `(site, cause)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntrusionBucket {
    /// Messages imposed (both directions).
    pub msgs: u64,
    /// Bytes imposed (both directions).
    pub bytes: u64,
    /// Virtual time of the first charge.
    pub first_ms: u64,
    /// Virtual time of the most recent charge.
    pub last_ms: u64,
}

impl IntrusionBucket {
    /// The observation window, floored at one virtual second so rates
    /// stay finite for single-shot charges.
    pub fn window_ms(&self) -> u64 {
        self.last_ms.saturating_sub(self.first_ms).max(1_000)
    }

    /// Messages per virtual second over the observation window.
    pub fn msgs_per_vsec(&self) -> f64 {
        self.msgs as f64 * 1_000.0 / self.window_ms() as f64
    }

    /// Bytes per virtual second over the observation window.
    pub fn bytes_per_vsec(&self) -> f64 {
        self.bytes as f64 * 1_000.0 / self.window_ms() as f64
    }
}

/// One row of the intrusion snapshot: a `(site, cause)` bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntrusionRow {
    /// The Grid site the traffic was imposed on.
    pub site: String,
    /// Why (`query` / `probe` / `subscription` / `gossip`).
    pub cause: String,
    /// Accumulated messages and bytes with the observation window.
    pub bucket: IntrusionBucket,
}

/// Per-cause intrusion counter cells (messages + bytes).
#[derive(Debug, Default)]
struct CauseCells {
    msgs: Counter,
    bytes: Counter,
}

/// Default number of completed query-cost entries retained.
pub const DEFAULT_COST_ENTRIES: usize = 256;
/// Default bound on the pending (in-flight roll-up) table.
pub const DEFAULT_COST_PENDING: usize = 1_024;

/// The per-gateway cost accounting ledger. Shared cells, lock-cheap;
/// cloneable via the hub's `Arc`.
pub struct CostLedger {
    clock: Arc<SimClock>,
    journal: Arc<Journal>,
    /// Costs rolled up from finished children, keyed by the parent
    /// span id, awaiting the parent's own finish.
    pending: Mutex<BTreeMap<String, CostVector>>,
    pending_cap: usize,
    /// Completed root entries, oldest evicted first.
    entries: Mutex<VecDeque<QueryCostEntry>>,
    entries_cap: usize,
    /// Per-(site, cause) intrusion buckets.
    intrusion: Mutex<BTreeMap<(String, String), IntrusionBucket>>,
    /// Budget knobs (0 = disabled).
    budget_bytes: AtomicU64,
    budget_rows: AtomicU64,
    // Direct-charge counters, exposed as the gridrm_cost_* family.
    msgs_out: Counter,
    msgs_in: Counter,
    bytes_out: Counter,
    bytes_in: Counter,
    rows_scanned: Counter,
    rows_returned: Counter,
    fetch_units: Counter,
    /// Ledger-side evictions (pending-table overflow + entry-ring
    /// eviction), exposed as `gridrm_cost_drops_total`: loss of cost
    /// data is itself observable, exactly like trace/journal drops.
    drops: Counter,
    /// Per-cause intrusion counters, exposed as gridrm_intrusion_*.
    cause_cells: BTreeMap<&'static str, CauseCells>,
}

impl CostLedger {
    /// Ledger over the gateway clock and journal, default capacities.
    pub fn new(clock: Arc<SimClock>, journal: Arc<Journal>) -> CostLedger {
        CostLedger {
            clock,
            journal,
            pending: Mutex::new(BTreeMap::new()),
            pending_cap: DEFAULT_COST_PENDING,
            entries: Mutex::new(VecDeque::new()),
            entries_cap: DEFAULT_COST_ENTRIES,
            intrusion: Mutex::new(BTreeMap::new()),
            budget_bytes: AtomicU64::new(0),
            budget_rows: AtomicU64::new(0),
            msgs_out: Counter::new(),
            msgs_in: Counter::new(),
            bytes_out: Counter::new(),
            bytes_in: Counter::new(),
            rows_scanned: Counter::new(),
            rows_returned: Counter::new(),
            fetch_units: Counter::new(),
            drops: Counter::new(),
            cause_cells: IntrusionCause::all()
                .into_iter()
                .map(|c| (c.name(), CauseCells::default()))
                .collect(),
        }
    }

    /// Expose the ledger's shared counter cells in a metrics registry.
    /// Registered unconditionally at hub construction so the
    /// `gridrm_cost_*` / `gridrm_intrusion_*` families always exist.
    pub fn register_into(&self, registry: &Registry) {
        let dirs = [("out", &self.msgs_out), ("in", &self.msgs_in)];
        for (dir, counter) in dirs {
            registry.expose_counter(
                "gridrm_cost_msgs_total",
                "Wire messages attributed by the cost ledger, by direction",
                Labels::from_pairs(&[("dir", dir)]),
                counter,
            );
        }
        let dirs = [("out", &self.bytes_out), ("in", &self.bytes_in)];
        for (dir, counter) in dirs {
            registry.expose_counter(
                "gridrm_cost_bytes_total",
                "Wire bytes attributed by the cost ledger, by direction",
                Labels::from_pairs(&[("dir", dir)]),
                counter,
            );
        }
        let kinds = [
            ("scanned", &self.rows_scanned),
            ("returned", &self.rows_returned),
        ];
        for (kind, counter) in kinds {
            registry.expose_counter(
                "gridrm_cost_rows_total",
                "Rows attributed by the cost ledger: driver-materialised (scanned) vs client-shipped (returned)",
                Labels::from_pairs(&[("kind", kind)]),
                counter,
            );
        }
        registry.expose_counter(
            "gridrm_cost_fetch_units_total",
            "Native driver fetches attributed by the cost ledger",
            Labels::none(),
            &self.fetch_units,
        );
        registry.expose_counter(
            "gridrm_cost_drops_total",
            "Cost-ledger records evicted (pending roll-ups or completed entries) before being read",
            Labels::none(),
            &self.drops,
        );
        for cause in IntrusionCause::all() {
            let cells = &self.cause_cells[cause.name()];
            registry.expose_counter(
                "gridrm_intrusion_msgs_total",
                "Messages imposed on Grid sites, by cause",
                Labels::from_pairs(&[("cause", cause.name())]),
                &cells.msgs,
            );
            registry.expose_counter(
                "gridrm_intrusion_bytes_total",
                "Bytes imposed on Grid sites, by cause",
                Labels::from_pairs(&[("cause", cause.name())]),
                &cells.bytes,
            );
        }
    }

    /// Set the per-query budget knobs (0 disables a dimension). A root
    /// whose inclusive cost exceeds either limit is journalled.
    pub fn set_budget(&self, bytes: u64, rows: u64) {
        self.budget_bytes.store(bytes, Ordering::Relaxed);
        self.budget_rows.store(rows, Ordering::Relaxed);
    }

    /// The configured `(bytes, rows)` budget.
    pub fn budget(&self) -> (u64, u64) {
        (
            self.budget_bytes.load(Ordering::Relaxed),
            self.budget_rows.load(Ordering::Relaxed),
        )
    }

    /// Count a *direct* charge into the gateway-wide cost counters.
    /// Roll-ups never come through here, so nothing is double counted.
    pub fn count(&self, v: &CostVector) {
        self.msgs_out.add(v.msgs_out);
        self.msgs_in.add(v.msgs_in);
        self.bytes_out.add(v.bytes_out);
        self.bytes_in.add(v.bytes_in);
        self.rows_scanned.add(v.rows_scanned);
        self.rows_returned.add(v.rows_returned);
        self.fetch_units.add(v.fetch_units);
    }

    /// Charge intrusion against a `(site, cause)` bucket: messages and
    /// bytes only, stamped with the current virtual time.
    pub fn intrude(&self, site: &str, cause: IntrusionCause, v: &CostVector) {
        let (msgs, bytes) = (v.total_msgs(), v.total_bytes());
        if msgs == 0 && bytes == 0 {
            return;
        }
        let cells = &self.cause_cells[cause.name()];
        cells.msgs.add(msgs);
        cells.bytes.add(bytes);
        let now = self.clock.now_millis();
        let mut intrusion = self.intrusion.lock();
        let bucket = intrusion
            .entry((site.to_owned(), cause.name().to_owned()))
            .or_insert(IntrusionBucket {
                msgs: 0,
                bytes: 0,
                first_ms: now,
                last_ms: now,
            });
        bucket.msgs = bucket.msgs.saturating_add(msgs);
        bucket.bytes = bucket.bytes.saturating_add(bytes);
        bucket.last_ms = bucket.last_ms.max(now);
    }

    /// Credit a finished child's inclusive cost to its parent span. The
    /// pending table is bounded: overflow evicts the (lexically) first
    /// entry and counts a drop — a parent that never finishes (a remote
    /// caller's span, a leaked builder) must not grow the table forever.
    pub fn roll_up(&self, parent_span_id: &str, v: &CostVector) {
        if v.is_zero() {
            return;
        }
        let mut pending = self.pending.lock();
        if !pending.contains_key(parent_span_id) && pending.len() >= self.pending_cap {
            let first = pending.keys().next().cloned();
            if let Some(k) = first {
                pending.remove(&k);
                self.drops.inc();
            }
        }
        pending.entry(parent_span_id.to_owned()).or_default().add(v);
    }

    /// Take (and clear) the cost rolled up under a span id.
    pub fn take_pending(&self, span_id: &str) -> CostVector {
        self.pending.lock().remove(span_id).unwrap_or_default()
    }

    /// Record a completed root's bill: append the ring entry (evictions
    /// counted as drops) and journal a budget breach. The caller builds
    /// the entry from its span; `entry.over_budget` is overwritten with
    /// the verdict, which is also returned so the caller can stamp the
    /// span. `source` only labels the journal entry (falls back to the
    /// request text).
    pub fn note_root(&self, mut entry: QueryCostEntry, source: Option<&str>) -> bool {
        let cost = &entry.cost;
        let (budget_bytes, budget_rows) = self.budget();
        let over_bytes = budget_bytes > 0 && cost.total_bytes() > budget_bytes;
        let over_rows = budget_rows > 0 && cost.rows_returned > budget_rows;
        let over_budget = over_bytes || over_rows;
        if over_budget {
            let what = match (over_bytes, over_rows) {
                (true, true) => format!(
                    "{}B > {budget_bytes}B and {} rows > {budget_rows} rows",
                    cost.total_bytes(),
                    cost.rows_returned
                ),
                (true, false) => format!("{}B > {budget_bytes}B", cost.total_bytes()),
                _ => format!("{} rows > {budget_rows} rows", cost.rows_returned),
            };
            self.journal.record_traced(
                self.clock.now_millis(),
                JournalSeverity::Warning,
                KIND_COST_BUDGET,
                source.unwrap_or(&entry.request),
                None,
                Some("cost"),
                &format!("query cost over budget: {what}"),
                Some(&entry.trace_id),
            );
        }
        entry.over_budget = over_budget;
        let mut entries = self.entries.lock();
        if entries.len() == self.entries_cap {
            entries.pop_front();
            self.drops.inc();
        }
        entries.push_back(entry);
        over_budget
    }

    /// Completed root entries, oldest first.
    pub fn entries(&self) -> Vec<QueryCostEntry> {
        self.entries.lock().iter().cloned().collect()
    }

    /// The intrusion buckets, ordered by `(site, cause)`.
    pub fn intrusion_snapshot(&self) -> Vec<IntrusionRow> {
        self.intrusion
            .lock()
            .iter()
            .map(|((site, cause), bucket)| IntrusionRow {
                site: site.clone(),
                cause: cause.clone(),
                bucket: *bucket,
            })
            .collect()
    }

    /// Flush the pending roll-up table: any cost still parked under a
    /// span id is dropped (and counted) — these belong to parents that
    /// will never finish locally, e.g. remote callers' spans. Returns
    /// the number of entries dropped. Ring evictions racing a flush are
    /// still counted: both paths share the same `drops` cell.
    pub fn flush(&self) -> usize {
        let mut pending = self.pending.lock();
        let dropped = pending.len();
        if dropped > 0 {
            self.drops.add(dropped as u64);
            pending.clear();
        }
        dropped
    }

    /// Shared counter of ledger records evicted before being read.
    pub fn drops(&self) -> &Counter {
        &self.drops
    }

    /// Point-in-time copy of the direct-charge totals.
    pub fn totals(&self) -> CostVector {
        CostVector {
            msgs_out: self.msgs_out.get(),
            msgs_in: self.msgs_in.get(),
            bytes_out: self.bytes_out.get(),
            bytes_in: self.bytes_in.get(),
            rows_scanned: self.rows_scanned.get(),
            rows_returned: self.rows_returned.get(),
            fetch_units: self.fetch_units.get(),
            stage_ms: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> CostLedger {
        CostLedger::new(SimClock::new(), Arc::new(Journal::new(16)))
    }

    fn v(bytes_out: u64, rows: u64) -> CostVector {
        CostVector {
            msgs_out: 1,
            bytes_out,
            rows_returned: rows,
            ..CostVector::default()
        }
    }

    fn entry(trace_id: &str, request: &str, cost: CostVector) -> QueryCostEntry {
        QueryCostEntry {
            trace_id: trace_id.to_owned(),
            site: "s".to_owned(),
            request: request.to_owned(),
            started_ms: 0,
            finished_ms: 1,
            cost,
            over_budget: false,
        }
    }

    #[test]
    fn vector_addition_saturates_and_roundtrips() {
        let mut a = v(10, 2);
        a.add(&v(u64::MAX, 3));
        assert_eq!(a.bytes_out, u64::MAX);
        assert_eq!(a.rows_returned, 5);
        assert_eq!(a.msgs_out, 2);
        let json = serde_json::to_string(&a).unwrap();
        let back: CostVector = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn legacy_json_without_cost_fields_defaults_zero() {
        let back: CostVector = serde_json::from_str("{}").unwrap();
        assert!(back.is_zero());
    }

    #[test]
    fn roll_up_accumulates_until_taken() {
        let l = ledger();
        l.roll_up("gw:1", &v(100, 1));
        l.roll_up("gw:1", &v(50, 2));
        let got = l.take_pending("gw:1");
        assert_eq!(got.bytes_out, 150);
        assert_eq!(got.rows_returned, 3);
        assert!(l.take_pending("gw:1").is_zero());
    }

    #[test]
    fn note_root_journals_budget_breach() {
        let clock = SimClock::new();
        let journal = Arc::new(Journal::new(16));
        let l = CostLedger::new(clock, journal.clone());
        l.set_budget(1_000, 0);
        assert!(!l.note_root(entry("t:1", "q1", v(500, 1)), None));
        assert!(l.note_root(entry("t:2", "q2", v(2_000, 1)), None));
        let breaches = journal.recent_of_kind(KIND_COST_BUDGET);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].trace_id.as_deref(), Some("t:2"));
        let entries = l.entries();
        assert_eq!(entries.len(), 2);
        assert!(!entries[0].over_budget);
        assert!(entries[1].over_budget);
    }

    #[test]
    fn intrusion_buckets_rate_per_virtual_second() {
        let clock = SimClock::new();
        let l = CostLedger::new(clock.clone(), Arc::new(Journal::new(4)));
        l.intrude("beta", IntrusionCause::Query, &v(1_000, 0));
        clock.advance(4_000);
        l.intrude("beta", IntrusionCause::Query, &v(1_000, 0));
        let rows = l.intrusion_snapshot();
        assert_eq!(rows.len(), 1);
        let b = &rows[0].bucket;
        assert_eq!(b.msgs, 2);
        assert_eq!(b.bytes, 2_000);
        assert_eq!(b.window_ms(), 4_000);
        assert!((b.msgs_per_vsec() - 0.5).abs() < 1e-9);
        assert!((b.bytes_per_vsec() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn pending_table_is_bounded_and_flush_counts_drops() {
        let clock = SimClock::new();
        let journal = Arc::new(Journal::new(4));
        let mut l = CostLedger::new(clock, journal);
        l.pending_cap = 2;
        l.roll_up("a:1", &v(1, 0));
        l.roll_up("b:1", &v(1, 0));
        l.roll_up("c:1", &v(1, 0)); // evicts a:1
        assert_eq!(l.drops().get(), 1);
        assert!(l.take_pending("a:1").is_zero());
        assert_eq!(l.flush(), 2); // b:1 and c:1 still parked
        assert_eq!(l.drops().get(), 3);
        assert_eq!(l.flush(), 0);
    }

    #[test]
    fn entry_ring_evicts_and_counts_drops_during_concurrent_flush() {
        // Satellite regression: ring evictions that happen while a
        // ledger flush is in progress must still be counted — both
        // paths hit the same shared drops cell, from different threads.
        let clock = SimClock::new();
        let mut l = CostLedger::new(clock, Arc::new(Journal::new(4)));
        l.entries_cap = 8;
        let l = Arc::new(l);
        std::thread::scope(|s| {
            let flusher = l.clone();
            s.spawn(move || {
                for i in 0..200 {
                    flusher.roll_up(&format!("never:{i}"), &v(1, 0));
                    flusher.flush();
                }
            });
            let writer = l.clone();
            s.spawn(move || {
                for i in 0..100 {
                    writer.note_root(entry(&format!("t:{i}"), "q", v(1, 0)), None);
                }
            });
        });
        // 100 entries into a ring of 8: exactly 92 ring evictions, plus
        // every flushed pending roll-up, all present in the one counter.
        assert_eq!(l.entries().len(), 8);
        assert!(l.drops().get() >= 92, "drops = {}", l.drops().get());
    }

    #[test]
    fn counters_track_direct_charges_only() {
        let l = ledger();
        l.count(&v(100, 5));
        l.roll_up("p:1", &v(999, 9)); // roll-ups are not recounted
        let t = l.totals();
        assert_eq!(t.bytes_out, 100);
        assert_eq!(t.rows_returned, 5);
        assert_eq!(t.msgs_out, 1);
    }
}
