//! Slow-query log: the top-K slowest traces by end-to-end virtual
//! latency, with their full per-stage breakdown. Traces are offered on
//! span finish; only those at or above the configured threshold are
//! retained, and within the log the slowest K win.

use crate::metrics::{Counter, Labels, Registry};
use crate::trace::TraceRecord;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of slow queries retained per gateway.
pub const DEFAULT_SLOW_QUERY_CAPACITY: usize = 32;

/// Default slow-query threshold: 0 disables the log until configured.
pub const DEFAULT_SLOW_QUERY_THRESHOLD_MS: u64 = 0;

/// Top-K slow-query log over finished traces.
pub struct SlowQueryLog {
    threshold_ms: AtomicU64,
    capacity: usize,
    /// Sorted slowest-first; ties broken by trace id (earlier first).
    entries: Mutex<Vec<TraceRecord>>,
    recorded: Counter,
}

impl SlowQueryLog {
    /// Log retaining at most `capacity` traces at/above `threshold_ms`.
    /// A threshold of 0 disables recording.
    pub fn new(threshold_ms: u64, capacity: usize) -> SlowQueryLog {
        SlowQueryLog {
            threshold_ms: AtomicU64::new(threshold_ms),
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
            recorded: Counter::default(),
        }
    }

    /// Current threshold (0 = disabled).
    pub fn threshold_ms(&self) -> u64 {
        self.threshold_ms.load(Ordering::Relaxed)
    }

    /// Change the threshold at runtime (0 disables future recording;
    /// already-retained entries stay).
    pub fn set_threshold_ms(&self, threshold_ms: u64) {
        self.threshold_ms.store(threshold_ms, Ordering::Relaxed);
    }

    /// Offer a finished trace. Returns true when it was retained.
    pub fn offer(&self, record: &TraceRecord) -> bool {
        let threshold = self.threshold_ms();
        if threshold == 0 || record.duration_ms() < threshold {
            return false;
        }
        self.recorded.inc();
        let mut entries = self.entries.lock();
        let pos = entries
            .iter()
            .position(|e| {
                let (d, n) = (e.duration_ms(), record.duration_ms());
                d < n || (d == n && e.id > record.id)
            })
            .unwrap_or(entries.len());
        if pos >= self.capacity {
            // Slower (or equally slow, earlier) than nothing retained.
            return false;
        }
        entries.insert(pos, record.clone());
        entries.truncate(self.capacity);
        true
    }

    /// Retained slow queries, slowest first.
    pub fn top(&self) -> Vec<TraceRecord> {
        self.entries.lock().clone()
    }

    /// Number of retained slow queries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Maximum number of retained slow queries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Traces that ever crossed the threshold (including ones later
    /// displaced from the top-K).
    pub fn total_recorded(&self) -> u64 {
        self.recorded.get()
    }

    /// Expose the slow-query counter in a metrics registry.
    pub fn register_into(&self, registry: &Registry) {
        registry.expose_counter(
            "gridrm_slow_queries_total",
            "Traces at or above the slow-query threshold",
            Labels::none(),
            &self.recorded,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, duration: u64) -> TraceRecord {
        TraceRecord {
            id,
            request: format!("req-{id}"),
            started_ms: 1_000,
            finished_ms: 1_000 + duration,
            outcome: "ok".into(),
            ..TraceRecord::default()
        }
    }

    #[test]
    fn zero_threshold_disables() {
        let log = SlowQueryLog::new(0, 4);
        assert!(!log.offer(&record(1, 10_000)));
        assert!(log.is_empty());
        assert_eq!(log.total_recorded(), 0);
    }

    #[test]
    fn below_threshold_rejected() {
        let log = SlowQueryLog::new(100, 4);
        assert!(!log.offer(&record(1, 99)));
        assert!(log.offer(&record(2, 100)));
        assert_eq!(log.len(), 1);
        assert_eq!(log.total_recorded(), 1);
    }

    #[test]
    fn keeps_top_k_slowest_first() {
        let log = SlowQueryLog::new(10, 3);
        for (id, d) in [(1, 50), (2, 20), (3, 80), (4, 30), (5, 60)] {
            log.offer(&record(id, d));
        }
        let top: Vec<(u64, u64)> = log.top().iter().map(|t| (t.id, t.duration_ms())).collect();
        assert_eq!(top, vec![(3, 80), (5, 60), (1, 50)]);
        assert_eq!(log.total_recorded(), 5, "all crossed the threshold");
        assert_eq!(log.capacity(), 3);
    }

    #[test]
    fn ties_keep_earlier_trace_first() {
        let log = SlowQueryLog::new(10, 4);
        log.offer(&record(2, 40));
        log.offer(&record(1, 40));
        log.offer(&record(3, 40));
        let ids: Vec<u64> = log.top().iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn runtime_threshold_change() {
        let log = SlowQueryLog::new(0, 4);
        assert!(!log.offer(&record(1, 500)));
        log.set_threshold_ms(100);
        assert_eq!(log.threshold_ms(), 100);
        assert!(log.offer(&record(2, 500)));
        assert_eq!(log.len(), 1);
    }
}
