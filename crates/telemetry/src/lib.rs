//! GridRM telemetry: metrics registry, query-path tracing, structured
//! event journal, slow-query log, exposition.

pub mod active;
pub mod cost;
pub mod journal;
pub mod metrics;
pub mod slo;
pub mod slowlog;
pub mod timeseries;
pub mod trace;

pub use cost::{
    CostLedger, CostVector, IntrusionBucket, IntrusionCause, IntrusionRow, QueryCostEntry,
    DEFAULT_COST_ENTRIES, DEFAULT_COST_PENDING,
};
pub use journal::{
    Journal, JournalEntry, JournalSeverity, JournalStats, DEFAULT_JOURNAL_CAPACITY,
    KIND_CACHE_SERVE, KIND_COST_BUDGET, KIND_DRIVER_FALLBACK, KIND_EVENT, KIND_EVENT_OVERFLOW,
    KIND_EVENT_UNFORMATTED, KIND_POLICY_DECISION, KIND_PROBE, KIND_SLO, KIND_STATE_TRANSITION,
    KIND_STREAM,
};
pub use metrics::{
    Counter, Gauge, Histogram, Labels, MetricSnapshot, PointKind, Registry, Sample, SeriesPoint,
    DEFAULT_LATENCY_BUCKETS_MS,
};
pub use slo::{
    SloEngine, SloObjective, SloSpec, SloStats, SloStatus, SloTransition,
    DEFAULT_FAST_BURN_THRESHOLD, DEFAULT_FAST_WINDOW_MS, DEFAULT_SLOW_BURN_THRESHOLD,
    DEFAULT_SLOW_WINDOW_MS,
};
pub use slowlog::{SlowQueryLog, DEFAULT_SLOW_QUERY_CAPACITY, DEFAULT_SLOW_QUERY_THRESHOLD_MS};
pub use timeseries::{
    BucketStats, ColumnRing, HistoryRow, TimeSeriesRecorder, DEFAULT_TIMESERIES_CAPACITY,
    DEFAULT_TIMESERIES_INTERVAL_MS,
};
pub use trace::{
    GatewayTelemetry, SpanBuilder, SpanStage, TelemetryCapacities, TraceBuffer, TraceContext,
    TraceRecord, DEFAULT_TRACE_CAPACITY,
};
