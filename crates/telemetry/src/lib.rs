//! GridRM telemetry: metrics registry, query-path tracing, structured
//! event journal, slow-query log, exposition.

pub mod active;
pub mod journal;
pub mod metrics;
pub mod slowlog;
pub mod trace;

pub use journal::{
    Journal, JournalEntry, JournalSeverity, JournalStats, DEFAULT_JOURNAL_CAPACITY,
    KIND_CACHE_SERVE, KIND_DRIVER_FALLBACK, KIND_EVENT, KIND_EVENT_OVERFLOW,
    KIND_EVENT_UNFORMATTED, KIND_POLICY_DECISION, KIND_PROBE, KIND_STATE_TRANSITION,
};
pub use metrics::{
    Counter, Gauge, Histogram, Labels, MetricSnapshot, Registry, Sample, DEFAULT_LATENCY_BUCKETS_MS,
};
pub use slowlog::{SlowQueryLog, DEFAULT_SLOW_QUERY_CAPACITY, DEFAULT_SLOW_QUERY_THRESHOLD_MS};
pub use trace::{
    GatewayTelemetry, SpanBuilder, SpanStage, TelemetryCapacities, TraceBuffer, TraceContext,
    TraceRecord, DEFAULT_TRACE_CAPACITY,
};
