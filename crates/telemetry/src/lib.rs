//! GridRM telemetry: metrics registry, query-path tracing, exposition.

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, Labels, MetricSnapshot, Registry, Sample, DEFAULT_LATENCY_BUCKETS_MS,
};
pub use trace::{
    GatewayTelemetry, SpanBuilder, SpanStage, TraceBuffer, TraceRecord, DEFAULT_TRACE_CAPACITY,
};
