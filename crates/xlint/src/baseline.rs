//! The ratcheted baseline: existing violations are grandfathered in a
//! committed `xlint-baseline.json` as per-(rule, file) counts; a check
//! run fails when any bucket exceeds its grandfathered count, and
//! `--update-baseline` rewrites the file (which code review then keeps
//! monotonically shrinking).
//!
//! Counts — not line numbers — key the ratchet, so unrelated edits that
//! shift lines do not invalidate the baseline.

use crate::Finding;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The committed baseline document.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Baseline {
    /// Format version.
    pub version: u32,
    /// Grandfathered buckets, sorted by (rule, file).
    pub entries: Vec<BaselineEntry>,
}

/// Grandfathered findings for one (rule, file) bucket.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Rule id.
    pub rule: String,
    /// Repo-relative file.
    pub file: String,
    /// Number of grandfathered findings.
    pub count: usize,
}

impl Baseline {
    /// Build a baseline from a fresh scan.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut buckets: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in findings {
            *buckets.entry((f.rule.clone(), f.file.clone())).or_insert(0) += 1;
        }
        Baseline {
            version: 1,
            entries: buckets
                .into_iter()
                .map(|((rule, file), count)| BaselineEntry { rule, file, count })
                .collect(),
        }
    }

    /// Parse the committed JSON.
    pub fn from_json(json: &str) -> Result<Baseline, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Render as committed JSON (stable formatting).
    pub fn to_json(&self) -> String {
        let mut out = serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned());
        out.push('\n');
        out
    }

    fn count(&self, rule: &str, file: &str) -> usize {
        self.entries
            .iter()
            .find(|e| e.rule == rule && e.file == file)
            .map(|e| e.count)
            .unwrap_or(0)
    }
}

/// Result of diffing a fresh scan against the baseline.
#[derive(Debug, Default)]
pub struct Diff {
    /// Buckets over their grandfathered count, with every current
    /// finding in the bucket (the analyzer cannot know *which* are new).
    pub regressions: Vec<(BaselineEntry, Vec<Finding>)>,
    /// Buckets now below their grandfathered count: ratchet these down
    /// with `--update-baseline`.
    pub improvements: Vec<(BaselineEntry, usize)>,
}

impl Diff {
    /// True when nothing exceeds the baseline.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare a fresh scan against the committed baseline.
pub fn diff(baseline: &Baseline, findings: &[Finding]) -> Diff {
    let fresh = Baseline::from_findings(findings);
    let mut out = Diff::default();
    for entry in &fresh.entries {
        let grandfathered = baseline.count(&entry.rule, &entry.file);
        if entry.count > grandfathered {
            let bucket: Vec<Finding> = findings
                .iter()
                .filter(|f| f.rule == entry.rule && f.file == entry.file)
                .cloned()
                .collect();
            out.regressions.push((
                BaselineEntry {
                    rule: entry.rule.clone(),
                    file: entry.file.clone(),
                    count: grandfathered,
                },
                bucket,
            ));
        }
    }
    for entry in &baseline.entries {
        let now = fresh.count(&entry.rule, &entry.file);
        if now < entry.count {
            out.improvements.push((entry.clone(), now));
        }
    }
    out
}
