//! Token-tree walking helpers shared by the lint rules: method-call and
//! macro-invocation pattern matching over `proc-macro2` token sequences.

use proc_macro2::{Delimiter, Group, TokenStream, TokenTree};

/// True when `t` is the punctuation character `c`.
pub fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// True when `t` is the identifier `s`.
pub fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if *i == s)
}

/// The identifier text of `t`, if it is one.
pub fn ident_text(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// `t` as a group with the given delimiter.
pub fn group_with(t: &TokenTree, d: Delimiter) -> Option<&Group> {
    match t {
        TokenTree::Group(g) if g.delimiter() == d => Some(g),
        _ => None,
    }
}

/// Invoke `f` on every token sequence in the stream: the top-level
/// sequence and, recursively, the contents of every group.
pub fn for_each_seq(ts: &TokenStream, f: &mut impl FnMut(&[TokenTree])) {
    fn walk(seq: &[TokenTree], f: &mut impl FnMut(&[TokenTree])) {
        f(seq);
        for t in seq {
            if let TokenTree::Group(g) = t {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                walk(&inner, f);
            }
        }
    }
    let top: Vec<TokenTree> = ts.clone().into_iter().collect();
    walk(&top, f);
}

/// A method call `.name(args)` found in a sequence.
pub struct MethodCall<'a> {
    /// The method name.
    pub name: String,
    /// The argument group.
    pub args: &'a Group,
    /// 1-based line of the method-name token.
    pub line: usize,
    /// 0-based column of the method-name token.
    pub column: usize,
    /// Index of the `.` token in the sequence.
    pub at: usize,
}

/// Find every `.name(...)` pattern at the top level of `seq` (rules that
/// need nesting wrap this in [`for_each_seq`]).
pub fn method_calls<'a>(seq: &'a [TokenTree]) -> Vec<MethodCall<'a>> {
    let mut out = Vec::new();
    for i in 0..seq.len() {
        if !is_punct(&seq[i], '.') {
            continue;
        }
        let Some(name_tok) = seq.get(i + 1) else {
            continue;
        };
        let Some(name) = ident_text(name_tok) else {
            continue;
        };
        let Some(args) = seq
            .get(i + 2)
            .and_then(|t| group_with(t, Delimiter::Parenthesis))
        else {
            continue;
        };
        let span = name_tok.span().start();
        out.push(MethodCall {
            name,
            args,
            line: span.line,
            column: span.column,
            at: i,
        });
    }
    out
}

/// A macro invocation `name!(..)` / `name!{..}` / `name![..]`.
pub struct MacroCall {
    /// The macro name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// 0-based column of the name token.
    pub column: usize,
}

/// Find every `name!...` macro invocation at the top level of `seq`.
pub fn macro_calls(seq: &[TokenTree]) -> Vec<MacroCall> {
    let mut out = Vec::new();
    for i in 0..seq.len() {
        let Some(name) = ident_text(&seq[i]) else {
            continue;
        };
        let Some(bang) = seq.get(i + 1) else {
            continue;
        };
        if !is_punct(bang, '!') {
            continue;
        }
        if !matches!(seq.get(i + 2), Some(TokenTree::Group(_))) {
            continue;
        }
        let span = seq[i].span().start();
        out.push(MacroCall {
            name,
            line: span.line,
            column: span.column,
        });
    }
    out
}

/// Find every `A::B(...)`-style path call whose final two segments are
/// `ty::method`, returning the argument group.
pub fn path_calls<'a>(seq: &'a [TokenTree], ty: &str, method: &str) -> Vec<(&'a Group, usize)> {
    let mut out = Vec::new();
    for i in 0..seq.len() {
        if !is_ident(&seq[i], ty) {
            continue;
        }
        let colons = matches!((seq.get(i + 1), seq.get(i + 2)),
            (Some(a), Some(b)) if is_punct(a, ':') && is_punct(b, ':'));
        if !colons {
            continue;
        }
        let Some(m) = seq.get(i + 3) else { continue };
        if !is_ident(m, method) {
            continue;
        }
        if let Some(args) = seq
            .get(i + 4)
            .and_then(|t| group_with(t, Delimiter::Parenthesis))
        {
            out.push((args, m.span().start().line));
        }
    }
    out
}

/// The first string literal at the top level of a group's stream.
pub fn first_str_literal(args: &Group) -> Option<(String, usize, usize)> {
    for t in args.stream() {
        if let TokenTree::Literal(l) = &t {
            if let Some(v) = l.str_value() {
                let at = l.span().start();
                return Some((v, at.line, at.column));
            }
        }
    }
    None
}

/// True when the sequence contains `needle` as a path segment sequence
/// (e.g. `["Translator", "::", "new"]` given `ty`/`method`), anywhere at
/// any nesting depth.
pub fn contains_path(ts: &TokenStream, ty: &str, method: &str) -> bool {
    let mut found = false;
    for_each_seq(ts, &mut |seq| {
        if found {
            return;
        }
        for i in 0..seq.len() {
            if is_ident(&seq[i], ty)
                && matches!((seq.get(i + 1), seq.get(i + 2)),
                    (Some(a), Some(b)) if is_punct(a, ':') && is_punct(b, ':'))
                && matches!(seq.get(i + 3), Some(m) if is_ident(m, method))
            {
                found = true;
                return;
            }
        }
    });
    found
}

/// True when, anywhere in the stream, identifier `name` is directly
/// followed by a parenthesised argument list — a plain function call
/// (method calls also match when `include_methods`).
pub fn contains_call(ts: &TokenStream, name: &str, include_methods: bool) -> bool {
    let mut found = false;
    for_each_seq(ts, &mut |seq| {
        if found {
            return;
        }
        for i in 0..seq.len() {
            if is_ident(&seq[i], name)
                && seq
                    .get(i + 1)
                    .and_then(|t| group_with(t, Delimiter::Parenthesis))
                    .is_some()
            {
                let is_method = i > 0 && is_punct(&seq[i - 1], '.');
                if include_methods || !is_method {
                    found = true;
                    return;
                }
            }
        }
    });
    found
}
