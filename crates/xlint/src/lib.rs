//! `gridrm-lint` — AST-level house-rule analyzer for the GridRM
//! workspace.
//!
//! Replaces the old grep-based `tools/lint_metrics.sh` with real parsing
//! (via the vendored `proc-macro2`/`syn` stand-ins): rules resolve call
//! expressions, span literals, impl blocks and function bodies instead
//! of relying on rustfmt line-wrapping luck. See
//! `docs/static-analysis.md` for the rule catalog, the waiver syntax and
//! the baseline-ratchet workflow.

pub mod baseline;
pub mod rules;
pub mod schema;
pub mod tokens;

use proc_macro2::TokenStream;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Finding {
    /// Rule identifier (see [`rules::RULES`]).
    pub rule: String,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.column, self.rule, self.message
        )
    }
}

/// An inline waiver comment:
/// `// xlint: allow(<rule>) -- <reason>`.
///
/// A waiver on its own line covers the next line; a trailing waiver
/// covers its own line. The reason is mandatory — a waiver without one
/// is itself a finding (`waiver-syntax`).
#[derive(Debug, Clone)]
pub struct Waiver {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Rules waived (comma separated in the comment).
    pub rules: Vec<String>,
    /// Comment occupies the whole line (so it covers the next line too).
    pub own_line: bool,
}

/// Analyzer configuration: which files count as the hot request path,
/// the closed vocabularies, and the cross-layer dispatch surface.
#[derive(Debug, Clone)]
pub struct Config {
    /// Files audited for panic-freedom in full (repo-relative suffixes).
    pub hot_path_files: Vec<String>,
    /// (path prefix, fn names) pairs audited per-function — the drivers'
    /// `execute_query`/`execute_update` entry points.
    pub hot_path_fns: Vec<(String, Vec<String>)>,
    /// Label keys that are client-controlled open sets.
    pub forbidden_label_keys: Vec<String>,
    /// The closed span-stage vocabulary (from `docs/observability.md`).
    pub stage_vocab: BTreeSet<String>,
    /// Method names that cross a layer boundary or dispatch into a
    /// driver; holding a lock guard across these is the single-flight
    /// deadlock shape.
    pub dispatch_methods: BTreeSet<String>,
    /// Directory containing the driver crate sources.
    pub driver_dir: String,
    /// Driver-dir files exempt from the conformance rule (the DDK
    /// itself, registries, pure helpers).
    pub driver_exempt: Vec<String>,
    /// Path prefixes of the simnet-deterministic source set audited by
    /// the `determinism` rule. Wall-clock crates (serve, bench,
    /// resmodel) are simply not listed.
    pub deterministic_dirs: Vec<String>,
    /// The one file allowed to touch the raw codec helpers
    /// (`protocol.rs` itself) — everything else goes through
    /// `WireFrame::encode`/`decode` (`deprecated-codec`).
    pub codec_home: String,
    /// Scheduling-boundary method names for the `lock-order` pass
    /// (holding a guard across these is flagged even without a cycle).
    pub boundary_methods: BTreeSet<String>,
    /// Root type names the wire-schema closure starts from.
    pub wire_roots: Vec<String>,
}

impl Config {
    /// The GridRM workspace configuration; reads the span-stage
    /// vocabulary from `docs/observability.md` under `root`.
    pub fn for_workspace(root: &Path) -> io::Result<Config> {
        let doc_path = root.join("docs/observability.md");
        let doc = fs::read_to_string(&doc_path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!(
                    "{}: {e} — is --root pointing at the workspace?",
                    doc_path.display()
                ),
            )
        })?;
        let stage_vocab = parse_stage_vocab(&doc);
        if stage_vocab.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "no span-stage vocabulary found in docs/observability.md — section renamed?",
            ));
        }
        Ok(Config {
            hot_path_files: [
                "crates/core/src/gateway.rs",
                "crates/core/src/request.rs",
                "crates/core/src/driver_manager.rs",
                "crates/core/src/connection.rs",
                "crates/core/src/acil.rs",
                "crates/core/src/singleflight.rs",
                "crates/global/src/engine.rs",
                "crates/global/src/transport.rs",
                "crates/serve/src/frame.rs",
                "crates/serve/src/scheduler.rs",
                "crates/serve/src/server.rs",
            ]
            .into_iter()
            .map(str::to_owned)
            .collect(),
            hot_path_fns: vec![(
                "crates/drivers/src/".to_owned(),
                vec!["execute_query".to_owned(), "execute_update".to_owned()],
            )],
            forbidden_label_keys: [
                "source", "url", "hostname", "host", "sql", "query", "address",
            ]
            .into_iter()
            .map(str::to_owned)
            .collect(),
            stage_vocab,
            dispatch_methods: [
                "execute",
                "execute_traced",
                "execute_query",
                "execute_update",
                "dispatch",
                "handle_request",
                "native_request",
                "glue_translate",
                "poll_now",
            ]
            .into_iter()
            .map(str::to_owned)
            .collect(),
            driver_dir: "crates/drivers/src/".to_owned(),
            driver_exempt: [
                "crates/drivers/src/base.rs",
                "crates/drivers/src/lib.rs",
                "crates/drivers/src/registry.rs",
                "crates/drivers/src/mappings.rs",
                "crates/drivers/src/formatters.rs",
                "crates/drivers/src/xml.rs",
            ]
            .into_iter()
            .map(str::to_owned)
            .collect(),
            deterministic_dirs: [
                "crates/core/src/",
                "crates/global/src/",
                "crates/store/src/",
                "crates/telemetry/src/",
                "crates/drivers/src/",
            ]
            .into_iter()
            .map(str::to_owned)
            .collect(),
            codec_home: "crates/global/src/protocol.rs".to_owned(),
            boundary_methods: ["pump"].into_iter().map(str::to_owned).collect(),
            wire_roots: vec!["GlobalRequest".to_owned(), "GlobalResponse".to_owned()],
        })
    }
}

/// Extract the backticked, `[a-z_]+`-shaped names from the "Span stage
/// vocabulary" section of the observability doc.
pub fn parse_stage_vocab(doc: &str) -> BTreeSet<String> {
    let mut vocab = BTreeSet::new();
    let mut in_section = false;
    for line in doc.lines() {
        if line.starts_with("### Span stage vocabulary") {
            in_section = true;
            continue;
        }
        if in_section && line.starts_with('#') {
            break;
        }
        if !in_section {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let tail = &rest[open + 1..];
            let Some(close) = tail.find('`') else { break };
            let name = &tail[..close];
            if !name.is_empty() && name.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
                vocab.insert(name.to_owned());
            }
            rest = &tail[close + 1..];
        }
    }
    vocab
}

/// A parsed source file ready for rule evaluation.
pub struct SourceFile {
    /// Repo-relative path (forward slashes).
    pub rel_path: String,
    /// Raw text.
    pub text: String,
    /// Full token stream of the file.
    pub tokens: TokenStream,
    /// Item-level parse.
    pub ast: syn::File,
    /// Inline waivers.
    pub waivers: Vec<Waiver>,
    /// Waiver-syntax findings produced while parsing comments.
    pub waiver_findings: Vec<Finding>,
}

impl SourceFile {
    /// Parse a file; returns `Err` with a description on lex failure.
    pub fn parse(rel_path: &str, text: String) -> Result<SourceFile, String> {
        let tokens: TokenStream = text
            .parse()
            .map_err(|e: proc_macro2::LexError| format!("{rel_path}: {e}"))?;
        let ast = syn::parse_file(&text).map_err(|e| format!("{rel_path}: {e}"))?;
        let (waivers, waiver_findings) = parse_waivers(rel_path, &text);
        Ok(SourceFile {
            rel_path: rel_path.to_owned(),
            text,
            tokens,
            ast,
            waivers,
            waiver_findings,
        })
    }

    /// Is `finding` covered by a waiver in this file?
    pub fn waived(&self, finding: &Finding) -> bool {
        self.waivers.iter().any(|w| {
            w.rules.iter().any(|r| r == &finding.rule)
                && (w.line == finding.line || (w.own_line && w.line + 1 == finding.line))
        })
    }
}

fn parse_waivers(rel_path: &str, text: &str) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        // Doc comments and string literals may *quote* the waiver syntax
        // (this crate's own docs do); only a real line comment counts.
        let lead = raw.trim_start();
        if lead.starts_with("///") || lead.starts_with("//!") {
            continue;
        }
        let Some(pos) = find_waiver_marker(raw) else {
            continue;
        };
        let comment = &raw[pos + "// xlint:".len()..];
        let own_line = raw[..pos].trim().is_empty();
        let column = pos + 1;
        let bad = |msg: &str, findings: &mut Vec<Finding>| {
            findings.push(Finding {
                rule: "waiver-syntax".to_owned(),
                file: rel_path.to_owned(),
                line: line_no,
                column,
                message: msg.to_owned(),
            });
        };
        let trimmed = comment.trim_start();
        let Some(rest) = trimmed.strip_prefix("allow(") else {
            bad(
                "malformed waiver: expected `// xlint: allow(<rule>) -- <reason>`",
                &mut findings,
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("malformed waiver: missing `)`", &mut findings);
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            bad("malformed waiver: empty rule list", &mut findings);
            continue;
        }
        if let Some(unknown) = rules.iter().find(|r| !rules::RULES.contains(&r.as_str())) {
            bad(
                &format!("waiver names unknown rule `{unknown}`"),
                &mut findings,
            );
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason_ok = after
            .strip_prefix("--")
            .map(|r| !r.trim().is_empty())
            .unwrap_or(false);
        if !reason_ok {
            bad(
                "waiver must carry a reason: `-- <why this is safe>`",
                &mut findings,
            );
            continue;
        }
        waivers.push(Waiver {
            line: line_no,
            rules,
            own_line,
        });
    }
    (waivers, findings)
}

/// First waiver-marker offset on `line` that is not inside a string
/// literal, or `None`.
fn find_waiver_marker(line: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(off) = line[from..].find("// xlint:") {
        let pos = from + off;
        if !inside_string_literal(&line[..pos]) {
            return Some(pos);
        }
        from = pos + 1;
    }
    None
}

/// Crude single-line check: an odd number of unescaped double quotes in
/// `prefix` means the position after it sits inside a string literal.
/// (Multi-line strings are not handled — a waiver has no business inside
/// one anyway.)
fn inside_string_literal(prefix: &str) -> bool {
    let mut open = false;
    let mut chars = prefix.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' if open => {
                chars.next();
            }
            '"' => open = !open,
            _ => {}
        }
    }
    open
}

/// A function body with its lint-relevant context, flattened out of the
/// item tree.
pub struct FnCtx {
    /// Function name.
    pub name: String,
    /// Body tokens.
    pub body: TokenStream,
    /// Inside `#[cfg(test)]` or carrying `#[test]`.
    pub in_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// Collect every function (free, method, defaulted trait method) in the
/// file with test-context tracking.
pub fn collect_fns(file: &syn::File) -> Vec<FnCtx> {
    fn add(f: &syn::ItemFn, in_test: bool, out: &mut Vec<FnCtx>) {
        if !f.has_body {
            return;
        }
        let is_test = in_test
            || f.attrs
                .iter()
                .any(|a| a.path() == "test" || a.is_cfg_test());
        out.push(FnCtx {
            name: f.sig.ident.clone(),
            body: f.block.clone(),
            in_test: is_test,
            line: f.span.start().line,
        });
    }
    fn walk(items: &[syn::Item], in_test: bool, out: &mut Vec<FnCtx>) {
        for item in items {
            match item {
                syn::Item::Fn(f) => add(f, in_test, out),
                syn::Item::Impl(im) => {
                    let t = in_test || im.attrs.iter().any(|a| a.is_cfg_test());
                    for f in &im.fns {
                        add(f, t, out);
                    }
                }
                syn::Item::Trait(tr) => {
                    let t = in_test || tr.attrs.iter().any(|a| a.is_cfg_test());
                    for f in &tr.fns {
                        add(f, t, out);
                    }
                }
                syn::Item::Mod(m) => {
                    let t = in_test || m.attrs.iter().any(|a| a.is_cfg_test());
                    if let Some(content) = &m.content {
                        walk(content, t, out);
                    }
                }
                syn::Item::Verbatim(_) => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(&file.items, false, &mut out);
    out
}

/// Directories scanned inside the workspace root.
const SCAN_DIRS: &[&str] = &["crates", "src", "examples", "tests"];
/// Path fragments never scanned.
const EXCLUDES: &[&str] = &["/target/", "/third_party/", "/tests/fixtures/"];

/// Enumerate the workspace `.rs` files the analyzer covers.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let path = root.join(dir);
        if path.is_dir() {
            visit(&path, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn visit(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let as_str = path.to_string_lossy().replace('\\', "/");
        if EXCLUDES.iter().any(|e| format!("{as_str}/").contains(e)) {
            continue;
        }
        if path.is_dir() {
            visit(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false)
            && !EXCLUDES.iter().any(|e| as_str.contains(e))
        {
            out.push(path);
        }
    }
    Ok(())
}

/// Parse every workspace file. Files that fail to lex come back as
/// `parse` findings instead of aborting the scan.
pub fn parse_workspace(root: &Path) -> io::Result<(Vec<SourceFile>, Vec<Finding>)> {
    let mut files = Vec::new();
    let mut findings = Vec::new();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&path)?;
        match SourceFile::parse(&rel, text) {
            Ok(sf) => files.push(sf),
            Err(e) => findings.push(Finding {
                rule: "parse".to_owned(),
                file: rel,
                line: 1,
                column: 1,
                message: e,
            }),
        }
    }
    Ok((files, findings))
}

/// Scan the whole workspace: parse every file, run every per-file rule
/// plus the workspace-level passes, apply waivers. Returns findings
/// sorted by (file, line, rule).
pub fn scan_workspace(root: &Path, config: &Config) -> io::Result<Vec<Finding>> {
    let (files, mut findings) = parse_workspace(root)?;
    findings.extend(scan_files(&files, config));
    findings.sort();
    Ok(findings)
}

/// Run every rule over already-parsed files: per-file rules first, then
/// the workspace-level lock-order pass (which needs the whole tree for
/// its inter-procedural summaries). Waivers apply to both.
pub fn scan_files(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for sf in files {
        out.extend(check_file(sf, config));
    }
    out.extend(apply_file_waivers(
        files,
        rules::lockorder::check_workspace(files, config),
    ));
    out.sort();
    out
}

/// Filter workspace-level findings through the waivers of the file each
/// finding lands in.
pub fn apply_file_waivers(files: &[SourceFile], findings: Vec<Finding>) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            files
                .iter()
                .find(|sf| sf.rel_path == f.file)
                .map(|sf| !sf.waived(f))
                .unwrap_or(true)
        })
        .collect()
}

/// Run every rule against one parsed file and apply its waivers.
pub fn check_file(sf: &SourceFile, config: &Config) -> Vec<Finding> {
    let mut raw = Vec::new();
    raw.extend(sf.waiver_findings.clone());
    raw.extend(rules::metrics::check(sf, config));
    raw.extend(rules::stages::check(sf, config));
    raw.extend(rules::panics::check(sf, config));
    raw.extend(rules::locks::check(sf, config));
    raw.extend(rules::drivers::check(sf, config));
    raw.extend(rules::determinism::check(sf, config));
    raw.extend(rules::codec::check(sf, config));
    let mut out: Vec<Finding> = raw.into_iter().filter(|f| !sf.waived(f)).collect();
    out.sort();
    out
}
