//! Wire-schema evolution ratchet (`wire-schema`).
//!
//! Extracts every `#[derive(Serialize/Deserialize)]` struct and enum in
//! the workspace straight from the token stream (the vendored `syn`
//! stand-in drops attributes on non-fn items, so the raw tokens are the
//! source of truth), restricts to the closure reachable from the wire
//! roots (`GlobalRequest` / `GlobalResponse` — everything a
//! [`WireFrame`] can carry), and renders a canonical fingerprint that is
//! committed as `xlint-wire-schema.json`.
//!
//! [`diff_schema`] compares the committed fingerprint against a fresh
//! scan and reports *incompatible* evolution as findings: a field added
//! without `#[serde(default)]`, a field removed or retyped, an enum
//! variant removed or reordered, a type removed or changing kind. Those
//! are exactly the edits that break rolling upgrades between mixed peer
//! versions (and the transcript-pinning tests). Compatible drift — a new
//! defaulted field, a new trailing variant, a brand-new wire type —
//! does not produce findings; `--check` instead asks for a fingerprint
//! refresh via `--update-wire-schema`, the same workflow as the finding
//! baseline.

use crate::tokens::{group_with, ident_text, is_ident, is_punct};
use crate::{Config, Finding, SourceFile};
use proc_macro2::{Delimiter, TokenTree};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Fingerprint format version.
pub const SCHEMA_VERSION: u32 = 1;

/// One serialized field (struct field, tuple slot, or variant field).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireField {
    /// Wire name: the field identifier, a `#[serde(rename)]` override,
    /// or the tuple index as text.
    pub name: String,
    /// Canonical type text (token-normalized).
    pub ty: String,
    /// Carries `#[serde(default)]` — absent on the wire is tolerated.
    pub default: bool,
}

/// One enum variant with its payload fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireVariant {
    /// Variant wire name.
    pub name: String,
    /// Payload fields (empty for unit variants).
    pub fields: Vec<WireField>,
}

/// One wire-reachable serde type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireType {
    /// Type name.
    pub name: String,
    /// `"struct"` or `"enum"`.
    pub kind: String,
    /// Defining file (repo-relative).
    pub file: String,
    /// Struct fields (empty for enums).
    pub fields: Vec<WireField>,
    /// Enum variants in declaration order (empty for structs).
    pub variants: Vec<WireVariant>,
}

/// The committed fingerprint document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireSchema {
    /// Format version.
    pub version: u32,
    /// Root type names the closure starts from.
    pub roots: Vec<String>,
    /// Reachable types sorted by name.
    pub types: Vec<WireType>,
}

impl WireSchema {
    /// Parse the committed fingerprint.
    pub fn from_json(text: &str) -> Result<WireSchema, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Canonical JSON rendering (pretty, trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned());
        s.push('\n');
        s
    }
}

/// Definition sites: type name → (file, 1-based line).
pub type SchemaLocs = BTreeMap<String, (String, usize)>;

/// Build the wire schema for the whole workspace: every serde type
/// reachable from `config.wire_roots`, plus definition sites for
/// findings.
pub fn build_schema(files: &[SourceFile], config: &Config) -> (WireSchema, SchemaLocs) {
    let mut defs: BTreeMap<String, (WireType, usize)> = BTreeMap::new();
    for sf in files {
        for (ty, line) in extract_serde_types(sf) {
            // First definition wins (files are scanned in sorted order);
            // wire type names are globally unique in practice.
            defs.entry(ty.name.clone()).or_insert((ty, line));
        }
    }
    let mut reached: BTreeSet<String> = BTreeSet::new();
    let mut queue: Vec<String> = config.wire_roots.clone();
    while let Some(name) = queue.pop() {
        if !reached.insert(name.clone()) {
            continue;
        }
        let Some((ty, _)) = defs.get(&name) else {
            continue;
        };
        for referenced in referenced_idents(ty) {
            if defs.contains_key(&referenced) && !reached.contains(&referenced) {
                queue.push(referenced);
            }
        }
    }
    let mut types = Vec::new();
    let mut locs = SchemaLocs::new();
    for name in &reached {
        if let Some((ty, line)) = defs.get(name) {
            locs.insert(name.clone(), (ty.file.clone(), *line));
            types.push(ty.clone());
        }
    }
    (
        WireSchema {
            version: SCHEMA_VERSION,
            roots: config.wire_roots.clone(),
            types,
        },
        locs,
    )
}

/// Every identifier mentioned in a type's field/variant type strings.
fn referenced_idents(ty: &WireType) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut take = |s: &str| {
        for word in s.split(|c: char| !(c.is_alphanumeric() || c == '_')) {
            if !word.is_empty() && !word.chars().next().unwrap().is_ascii_digit() {
                out.insert(word.to_owned());
            }
        }
    };
    for f in &ty.fields {
        take(&f.ty);
    }
    for v in &ty.variants {
        for f in &v.fields {
            take(&f.ty);
        }
    }
    out
}

/// Scan one file's raw tokens for `#[derive(Serialize/Deserialize)]`
/// struct/enum definitions. Returns each with the 1-based line of its
/// `struct`/`enum` keyword.
pub fn extract_serde_types(sf: &SourceFile) -> Vec<(WireType, usize)> {
    let mut out = Vec::new();
    let mut seqs: Vec<Vec<TokenTree>> = vec![sf.tokens.clone().into_iter().collect()];
    // Items live at the top level and inside `mod`/`impl` brace groups;
    // walking every brace group over-approximates harmlessly.
    let mut i = 0;
    while i < seqs.len() {
        let seq = std::mem::take(&mut seqs[i]);
        scan_seq(&seq, &sf.rel_path, &mut out);
        for t in &seq {
            if let Some(g) = group_with(t, Delimiter::Brace) {
                seqs.push(g.stream().into_iter().collect());
            }
        }
        i += 1;
    }
    out
}

fn scan_seq(seq: &[TokenTree], file: &str, out: &mut Vec<(WireType, usize)>) {
    let mut i = 0;
    while i < seq.len() {
        // Collect a run of `#[...]` attributes.
        let attr_start = i;
        let mut attrs: Vec<&TokenTree> = Vec::new();
        while is_punct(&seq[i], '#')
            && seq
                .get(i + 1)
                .and_then(|t| group_with(t, Delimiter::Bracket))
                .is_some()
        {
            attrs.push(&seq[i + 1]);
            i += 2;
            if i >= seq.len() {
                return;
            }
        }
        // Optional visibility.
        if is_ident(&seq[i], "pub") {
            i += 1;
            if matches!(seq.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(kw) = seq.get(i).and_then(ident_text) else {
            i = attr_start.max(i) + 1;
            continue;
        };
        if kw != "struct" && kw != "enum" {
            i += 1;
            continue;
        }
        let kw_line = seq[i].span().start().line;
        let Some(name) = seq.get(i + 1).and_then(ident_text) else {
            i += 2;
            continue;
        };
        i += 2;
        if !attrs_derive_serde(&attrs) {
            continue;
        }
        // Skip generics `<...>`.
        if matches!(seq.get(i), Some(t) if is_punct(t, '<')) {
            let mut depth = 0i32;
            while i < seq.len() {
                if is_punct(&seq[i], '<') {
                    depth += 1;
                } else if is_punct(&seq[i], '>') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
        // Skip a `where` clause: everything up to the body/`;`.
        while i < seq.len()
            && !matches!(&seq[i], TokenTree::Group(g)
                if matches!(g.delimiter(), Delimiter::Brace | Delimiter::Parenthesis))
            && !is_punct(&seq[i], ';')
        {
            i += 1;
        }
        let mut ty = WireType {
            name,
            kind: kw.clone(),
            file: file.to_owned(),
            fields: Vec::new(),
            variants: Vec::new(),
        };
        match seq.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if kw == "struct" {
                    ty.fields = parse_fields(&inner, true);
                } else {
                    ty.variants = parse_variants(&inner);
                }
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                ty.fields = parse_fields(&inner, false);
                i += 1;
            }
            _ => {} // unit struct
        }
        out.push((ty, kw_line));
    }
}

/// Do the collected attributes contain `derive(..)` naming `Serialize`
/// or `Deserialize`?
fn attrs_derive_serde(attrs: &[&TokenTree]) -> bool {
    for attr in attrs {
        let Some(g) = group_with(attr, Delimiter::Bracket) else {
            continue;
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if !matches!(inner.first(), Some(t) if is_ident(t, "derive")) {
            continue;
        }
        let Some(list) = inner
            .get(1)
            .and_then(|t| group_with(t, Delimiter::Parenthesis))
        else {
            continue;
        };
        for t in list.stream() {
            if let Some(id) = ident_text(&t) {
                if id == "Serialize" || id == "Deserialize" {
                    return true;
                }
            }
        }
    }
    false
}

/// Split a field/variant list at top-level commas. Generic-argument
/// commas sit at angle depth > 0 and stay inside their chunk; group
/// contents are single tokens and never split.
fn split_commas(seq: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    let mut prev_dash = false;
    for t in seq {
        if is_punct(t, '<') {
            angle += 1;
        } else if is_punct(t, '>') && !prev_dash {
            angle -= 1;
        }
        prev_dash = is_punct(t, '-');
        if is_punct(t, ',') && angle == 0 {
            if !cur.is_empty() {
                chunks.push(std::mem::take(&mut cur));
            }
        } else {
            cur.push(t.clone());
        }
    }
    if !cur.is_empty() {
        chunks.push(cur);
    }
    chunks
}

/// Per-field serde attribute facts.
#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    skip: bool,
    rename: Option<String>,
}

/// Consume leading `#[...]` attributes from `chunk`, returning the rest
/// and the serde facts.
fn take_attrs(chunk: &[TokenTree]) -> (&[TokenTree], SerdeAttrs) {
    let mut facts = SerdeAttrs::default();
    let mut i = 0;
    while i + 1 < chunk.len() && is_punct(&chunk[i], '#') {
        let Some(g) = group_with(&chunk[i + 1], Delimiter::Bracket) else {
            break;
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if matches!(inner.first(), Some(t) if is_ident(t, "serde")) {
            if let Some(list) = inner
                .get(1)
                .and_then(|t| group_with(t, Delimiter::Parenthesis))
            {
                let items: Vec<TokenTree> = list.stream().into_iter().collect();
                for (j, t) in items.iter().enumerate() {
                    match ident_text(t).as_deref() {
                        Some("default") => facts.default = true,
                        Some("skip") | Some("skip_serializing") | Some("skip_deserializing") => {
                            facts.skip = true
                        }
                        Some("rename") => {
                            if let Some(TokenTree::Literal(l)) = items.get(j + 2) {
                                facts.rename = l.str_value();
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        i += 2;
    }
    (&chunk[i..], facts)
}

/// Parse struct/variant fields. `named` selects `name: Type` chunks vs
/// positional tuple slots.
fn parse_fields(seq: &[TokenTree], named: bool) -> Vec<WireField> {
    let mut out = Vec::new();
    for (idx, chunk) in split_commas(seq).into_iter().enumerate() {
        let (rest, facts) = take_attrs(&chunk);
        if facts.skip {
            continue;
        }
        let mut rest = rest;
        if matches!(rest.first(), Some(t) if is_ident(t, "pub")) {
            rest = &rest[1..];
            if matches!(rest.first(), Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis)
            {
                rest = &rest[1..];
            }
        }
        if named {
            let Some(field_name) = rest.first().and_then(ident_text) else {
                continue;
            };
            // `name : Type` — a single colon; `::` would be a path.
            if !matches!(rest.get(1), Some(t) if is_punct(t, ':'))
                || matches!(rest.get(2), Some(t) if is_punct(t, ':'))
            {
                continue;
            }
            out.push(WireField {
                name: facts.rename.unwrap_or(field_name),
                ty: render(&rest[2..]),
                default: facts.default,
            });
        } else {
            if rest.is_empty() {
                continue;
            }
            out.push(WireField {
                name: facts.rename.unwrap_or_else(|| idx.to_string()),
                ty: render(rest),
                default: facts.default,
            });
        }
    }
    out
}

/// Parse enum variants in declaration order.
fn parse_variants(seq: &[TokenTree]) -> Vec<WireVariant> {
    let mut out = Vec::new();
    for chunk in split_commas(seq) {
        let (rest, facts) = take_attrs(&chunk);
        if facts.skip {
            continue;
        }
        let Some(name) = rest.first().and_then(ident_text) else {
            continue;
        };
        let fields = match rest.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                parse_fields(&inner, false)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                parse_fields(&inner, true)
            }
            _ => Vec::new(),
        };
        out.push(WireVariant {
            name: facts.rename.unwrap_or(name),
            fields,
        });
    }
    out
}

/// Canonical type text: token `Display`s joined with single spaces.
fn render(seq: &[TokenTree]) -> String {
    seq.iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Diff the committed fingerprint against a fresh scan; every finding is
/// an *incompatible* schema evolution. Compatible drift (new defaulted
/// fields, new variants, new types) is detected separately by comparing
/// the documents for equality.
pub fn diff_schema(committed: &WireSchema, fresh: &WireSchema, locs: &SchemaLocs) -> Vec<Finding> {
    let mut out = Vec::new();
    let fresh_by_name: BTreeMap<&str, &WireType> =
        fresh.types.iter().map(|t| (t.name.as_str(), t)).collect();
    for old in &committed.types {
        let at = |msg: String, out: &mut Vec<Finding>| {
            let (file, line) = locs
                .get(&old.name)
                .cloned()
                .unwrap_or_else(|| (old.file.clone(), 1));
            out.push(Finding {
                rule: "wire-schema".to_owned(),
                file,
                line,
                column: 1,
                message: msg,
            });
        };
        let Some(new) = fresh_by_name.get(old.name.as_str()) else {
            at(
                format!(
                    "wire type `{}` was removed or renamed — peers running the committed \
                     schema still ship it; keep the type and deprecate instead",
                    old.name
                ),
                &mut out,
            );
            continue;
        };
        if old.kind != new.kind {
            at(
                format!(
                    "wire type `{}` changed kind ({} -> {}) — wire-incompatible",
                    old.name, old.kind, new.kind
                ),
                &mut out,
            );
            continue;
        }
        diff_fields(&old.name, None, &old.fields, &new.fields, &at, &mut out);
        // Variant removal / reorder: the surviving old variants must
        // appear in the same relative order (serde enum tags are
        // name-keyed, but reordering is how accidental repurposing and
        // tag collisions start — the ratchet treats it as incompatible).
        let new_order: Vec<&str> = new.variants.iter().map(|v| v.name.as_str()).collect();
        let mut last_pos = 0usize;
        let mut reordered = false;
        for ov in &old.variants {
            match new_order.iter().position(|n| *n == ov.name) {
                None => at(
                    format!(
                        "enum `{}` lost variant `{}` — old peers still send it; \
                         keep the variant (it may return an error) instead",
                        old.name, ov.name
                    ),
                    &mut out,
                ),
                Some(pos) => {
                    if pos < last_pos {
                        reordered = true;
                    }
                    last_pos = pos.max(last_pos);
                    if let Some(nv) = new.variants.iter().find(|v| v.name == ov.name) {
                        diff_fields(
                            &old.name,
                            Some(&ov.name),
                            &ov.fields,
                            &nv.fields,
                            &at,
                            &mut out,
                        );
                    }
                }
            }
        }
        if reordered {
            at(
                format!(
                    "enum `{}` reordered its committed variants — declaration order is part \
                     of the wire contract; append new variants at the end",
                    old.name
                ),
                &mut out,
            );
        }
    }
    out.sort();
    out
}

fn diff_fields(
    ty: &str,
    variant: Option<&str>,
    old: &[WireField],
    new: &[WireField],
    at: &impl Fn(String, &mut Vec<Finding>),
    out: &mut Vec<Finding>,
) {
    let ctx = match variant {
        Some(v) => format!("`{ty}::{v}`"),
        None => format!("`{ty}`"),
    };
    for of in old {
        match new.iter().find(|nf| nf.name == of.name) {
            None => at(
                format!(
                    "{ctx} lost wire field `{}` — old peers still send it and expect it back; \
                     keep the field (or `#[serde(default)]` + ignore) instead",
                    of.name
                ),
                out,
            ),
            Some(nf) => {
                if nf.ty != of.ty {
                    at(
                        format!(
                            "{ctx} field `{}` changed type `{}` -> `{}` — wire-incompatible; \
                             add a new defaulted field instead",
                            of.name, of.ty, nf.ty
                        ),
                        out,
                    );
                }
            }
        }
    }
    for nf in new {
        if old.iter().all(|of| of.name != nf.name) && !nf.default {
            at(
                format!(
                    "{ctx} adds wire field `{}` without `#[serde(default)]` — frames from \
                     peers on the committed schema will fail to decode; mark it \
                     `#[serde(default)]`",
                    nf.name
                ),
                out,
            );
        }
    }
}
