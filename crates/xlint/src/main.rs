//! The `gridrm-lint` binary: scan the workspace, diff against the
//! committed baseline and wire-schema fingerprint, report.
//!
//! ```text
//! gridrm-lint [--check] [--json] [--list] [--update-baseline]
//!             [--update-wire-schema] [--root <dir>] [--baseline <file>]
//!             [--schema <file>]
//! ```
//!
//! * default / `--check` — fail (exit 1) on any finding not
//!   grandfathered in the baseline, on incompatible wire-schema
//!   evolution, or on wire-schema drift that needs a fingerprint
//!   refresh; point out ratchet opportunities.
//! * `--list` — print every current finding (grandfathered included).
//! * `--json` — machine-readable findings on stdout.
//! * `--update-baseline` — rewrite the baseline from a fresh scan.
//! * `--update-wire-schema` — rewrite `xlint-wire-schema.json` from a
//!   fresh scan (only after reviewing the diff for compatibility!).

use gridrm_xlint::baseline::{diff, Baseline};
use gridrm_xlint::schema::{build_schema, diff_schema, WireSchema};
use gridrm_xlint::{apply_file_waivers, parse_workspace, scan_files, Config, Finding};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: PathBuf,
    schema: PathBuf,
    json: bool,
    list: bool,
    update: bool,
    update_schema: bool,
}

const USAGE: &str = "gridrm-lint [--check] [--json] [--list] [--update-baseline] \
                     [--update-wire-schema] [--root <dir>] [--baseline <file>] \
                     [--schema <file>]";

/// `Ok(None)` means `--help` was asked for: print [`USAGE`] and stop.
fn parse_args() -> Result<Option<Args>, String> {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut schema: Option<PathBuf> = None;
    let mut json = false;
    let mut list = false;
    let mut update = false;
    let mut update_schema = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => {}
            "--json" => json = true,
            "--list" => list = true,
            "--update-baseline" => update = true,
            "--update-wire-schema" => update_schema = true,
            "--root" => root = Some(PathBuf::from(it.next().ok_or("--root needs a value")?)),
            "--baseline" => {
                baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?))
            }
            "--schema" => schema = Some(PathBuf::from(it.next().ok_or("--schema needs a value")?)),
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    let baseline = baseline.unwrap_or_else(|| root.join("xlint-baseline.json"));
    let schema = schema.unwrap_or_else(|| root.join("xlint-wire-schema.json"));
    Ok(Some(Args {
        root,
        baseline,
        schema,
        json,
        list,
        update,
        update_schema,
    }))
}

/// Walk upward from the current directory to the workspace root (the
/// directory holding `xlint-baseline.json` or a `[workspace]` manifest).
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if dir.join("xlint-baseline.json").exists()
            || std::fs::read_to_string(&manifest)
                .map(|t| t.contains("[workspace]"))
                .unwrap_or(false)
        {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("gridrm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let config = match Config::for_workspace(&args.root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gridrm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let (files, mut findings) = match parse_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gridrm-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    findings.extend(scan_files(&files, &config));
    let (fresh_schema, schema_locs) = build_schema(&files, &config);

    if args.update_schema {
        if let Err(e) = std::fs::write(&args.schema, fresh_schema.to_json()) {
            eprintln!("gridrm-lint: cannot write {}: {e}", args.schema.display());
            return ExitCode::from(2);
        }
        println!(
            "gridrm-lint: wire schema updated — {} type(s) reachable from {}",
            fresh_schema.types.len(),
            fresh_schema.roots.join(", ")
        );
        if !args.update {
            return ExitCode::SUCCESS;
        }
    }

    // Wire-schema ratchet: incompatible evolution becomes findings (so
    // the baseline machinery and --json/--list see it); compatible drift
    // is a --check failure with a friendlier refresh instruction.
    let mut schema_drift = false;
    let mut schema_missing = false;
    match std::fs::read_to_string(&args.schema) {
        Ok(text) => match WireSchema::from_json(&text) {
            Ok(committed) => {
                let schema_findings: Vec<Finding> = apply_file_waivers(
                    &files,
                    diff_schema(&committed, &fresh_schema, &schema_locs),
                );
                schema_drift = schema_findings.is_empty() && committed != fresh_schema;
                findings.extend(schema_findings);
            }
            Err(e) => {
                eprintln!(
                    "gridrm-lint: {} is not a valid wire schema: {e}",
                    args.schema.display()
                );
                return ExitCode::from(2);
            }
        },
        Err(_) => schema_missing = true,
    }
    findings.sort();

    if args.update {
        let fresh = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(&args.baseline, fresh.to_json()) {
            eprintln!("gridrm-lint: cannot write {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
        println!(
            "gridrm-lint: baseline updated — {} finding(s) in {} bucket(s)",
            findings.len(),
            fresh.entries.len()
        );
        return ExitCode::SUCCESS;
    }

    if args.json {
        match serde_json::to_string_pretty(&findings) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("gridrm-lint: {e}");
                return ExitCode::from(2);
            }
        }
        if args.list {
            return ExitCode::SUCCESS;
        }
    }

    if args.list {
        for f in &findings {
            println!("{f}");
        }
        println!("gridrm-lint: {} finding(s) total", findings.len());
        return ExitCode::SUCCESS;
    }

    let committed = match std::fs::read_to_string(&args.baseline) {
        Ok(text) => match Baseline::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "gridrm-lint: {} is not a valid baseline: {e}",
                    args.baseline.display()
                );
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(), // no baseline: everything is new
    };
    let d = diff(&committed, &findings);
    for (entry, bucket) in &d.regressions {
        eprintln!(
            "FAIL: [{}] {} — {} finding(s), baseline grandfathers {}:",
            entry.rule,
            entry.file,
            bucket.len(),
            entry.count
        );
        for f in bucket {
            eprintln!("  {f}");
        }
    }
    for (entry, now) in &d.improvements {
        println!(
            "ratchet: [{}] {} improved {} -> {} — run `gridrm-lint --update-baseline` \
             and commit xlint-baseline.json",
            entry.rule, entry.file, entry.count, now
        );
    }
    if schema_missing {
        eprintln!(
            "gridrm-lint: {} is missing — run `gridrm-lint --update-wire-schema` and \
             commit it (the wire-schema ratchet has nothing to diff against)",
            args.schema.display()
        );
    }
    if schema_drift {
        eprintln!(
            "gridrm-lint: wire schema drifted compatibly (new defaulted fields, variants \
             or types) — review the diff, then run `gridrm-lint --update-wire-schema` \
             and commit {}",
            args.schema.display()
        );
    }
    if d.is_clean() && !schema_missing && !schema_drift {
        println!(
            "gridrm-lint: OK — {} finding(s), all grandfathered by {}; wire schema matches \
             {} ({} type(s))",
            findings.len(),
            args.baseline.display(),
            args.schema.display(),
            fresh_schema.types.len()
        );
        ExitCode::SUCCESS
    } else {
        if !d.is_clean() {
            eprintln!(
                "gridrm-lint: {} bucket(s) exceed the baseline — fix the findings or add \
                 `xlint: allow(<rule>) -- <reason>` comment waivers (see docs/static-analysis.md)",
                d.regressions.len()
            );
        }
        ExitCode::FAILURE
    }
}
