//! The rule catalog. Each rule module exposes
//! `check(&SourceFile, &Config) -> Vec<Finding>`; waiver filtering
//! happens in [`crate::check_file`].

pub mod codec;
pub mod determinism;
pub mod drivers;
pub mod lockorder;
pub mod locks;
pub mod metrics;
pub mod panics;
pub mod stages;

/// Every rule id the analyzer can emit (used to validate waivers).
pub const RULES: &[&str] = &[
    "metric-prefix",
    "counter-suffix",
    "label-key",
    "stage-vocab",
    "hot-path-panic",
    "lock-across-dispatch",
    "lock-order",
    "determinism",
    "deprecated-codec",
    "wire-schema",
    "driver-conformance",
    "waiver-syntax",
    "parse",
];
