//! `determinism` — virtual-time determinism lint for the
//! simnet-deterministic crates (`core`, `global`, `store`, `telemetry`,
//! `drivers`).
//!
//! Everything under simnet must replay byte-identically from the same
//! seed (`tests/transport_determinism.rs` pins transcripts), so inside
//! `Config::deterministic_dirs` this rule flags:
//!
//! * wall-clock reads — `SystemTime::now()`, `Instant::now()` (time
//!   comes from `SimClock`);
//! * real sleeps — `thread::sleep` (time advances via `pump`);
//! * entropy — `rand::..` / `thread_rng()` (seeds are explicit);
//! * iteration over `HashMap`/`HashSet`, whose `RandomState` ordering
//!   differs per process and leaks straight into rows, frames and
//!   snapshots. Order-insensitive folds (`count`, `sum`, `any`, ...) and
//!   chains that immediately re-sort (`collect` into a `BTree*`,
//!   `sort*()` later in the same statement) are tolerated.
//!
//! Wall-clock crates (`serve`, `bench`, `resmodel/host.rs`) are simply
//! outside `deterministic_dirs`; individual exemptions inside the
//! deterministic set use the usual `// xlint: allow(determinism) -- why`
//! waiver.

use crate::tokens::{group_with, ident_text, is_ident, is_punct, path_calls};
use crate::{collect_fns, Config, Finding, SourceFile};
use proc_macro2::{Delimiter, TokenTree};
use std::collections::BTreeSet;

/// Hash-ordered collection type names.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Iterator-producing methods whose order is the hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Guard/projection adapters that may sit between the receiver and the
/// iteration call without changing what is iterated.
const RECEIVER_ADAPTERS: &[&str] = &[
    "lock",
    "read",
    "write",
    "unwrap",
    "expect",
    "borrow",
    "borrow_mut",
    "as_ref",
    "as_mut",
    "clone",
];

/// Order-insensitive chain terminals: folding every element with a
/// commutative reduction makes hash order unobservable.
const ORDERLESS_TERMINALS: &[&str] = &[
    "count",
    "sum",
    "product",
    "any",
    "all",
    "min",
    "max",
    "min_by",
    "min_by_key",
    "max_by",
    "max_by_key",
];

/// Run the determinism rule over one file.
pub fn check(sf: &SourceFile, config: &Config) -> Vec<Finding> {
    if !config
        .deterministic_dirs
        .iter()
        .any(|d| sf.rel_path.starts_with(d.as_str()))
    {
        return Vec::new();
    }
    let hash_names = hash_typed_names(sf);
    let mut out = Vec::new();
    for f in collect_fns(&sf.ast) {
        if f.in_test {
            continue;
        }
        let body: Vec<TokenTree> = f.body.clone().into_iter().collect();
        walk(&body, sf, &f.name, &hash_names, &mut out);
    }
    out.sort();
    out.dedup();
    out
}

fn walk(
    seq: &[TokenTree],
    sf: &SourceFile,
    fn_name: &str,
    hash_names: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    check_seq(seq, sf, fn_name, hash_names, out);
    for t in seq {
        if let TokenTree::Group(g) = t {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            walk(&inner, sf, fn_name, hash_names, out);
        }
    }
}

fn check_seq(
    seq: &[TokenTree],
    sf: &SourceFile,
    fn_name: &str,
    hash_names: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let finding = |line: usize, column: usize, message: String| Finding {
        rule: "determinism".to_owned(),
        file: sf.rel_path.clone(),
        line,
        column: column + 1,
        message,
    };
    // Wall-clock / sleep / entropy path calls.
    for (ty, method, fix) in [
        ("SystemTime", "now", "take virtual time from SimClock"),
        ("Instant", "now", "take virtual time from SimClock"),
        ("thread", "sleep", "advance time via pump, never block"),
    ] {
        for (_args, line) in path_calls(seq, ty, method) {
            out.push(finding(
                line,
                0,
                format!("`{ty}::{method}()` in `{fn_name}` — simnet-deterministic module; {fix}"),
            ));
        }
    }
    for i in 0..seq.len() {
        // `rand::...` path use or a bare `thread_rng()` call.
        if is_ident(&seq[i], "rand")
            && matches!((seq.get(i + 1), seq.get(i + 2)),
                (Some(a), Some(b)) if is_punct(a, ':') && is_punct(b, ':'))
        {
            let at = seq[i].span().start();
            out.push(finding(
                at.line,
                at.column,
                format!(
                    "`rand::..` in `{fn_name}` — simnet-deterministic module; derive \
                     pseudo-randomness from an explicit seed"
                ),
            ));
        }
        if is_ident(&seq[i], "thread_rng")
            && seq
                .get(i + 1)
                .and_then(|t| group_with(t, Delimiter::Parenthesis))
                .is_some()
        {
            let at = seq[i].span().start();
            out.push(finding(
                at.line,
                at.column,
                format!(
                    "`thread_rng()` in `{fn_name}` — simnet-deterministic module; derive \
                     pseudo-randomness from an explicit seed"
                ),
            ));
        }
        // Iteration over a hash-typed name.
        let Some(name) = ident_text(&seq[i]) else {
            continue;
        };
        if !hash_names.contains(&name) {
            continue;
        }
        // Skip declaration sites (`name: HashMap<..>`) — only uses count.
        if matches!(seq.get(i + 1), Some(t) if is_punct(t, ':')) {
            continue;
        }
        if let Some((method, line, column)) = hash_iteration(seq, i) {
            if !suppressed(seq, i) {
                out.push(finding(
                    line,
                    column,
                    format!(
                        "iteration (`.{method}()`) over hash-ordered `{name}` in `{fn_name}` \
                         flows into ordered output — use BTreeMap/BTreeSet or sort first"
                    ),
                ));
            }
        }
        // `for pat in [&]name { .. }` without an explicit iter call.
        if i >= 1 && for_loop_over(seq, i) {
            let at = seq[i].span().start();
            out.push(finding(
                at.line,
                at.column,
                format!(
                    "`for .. in {name}` iterates hash-ordered `{name}` in `{fn_name}` — \
                     use BTreeMap/BTreeSet or sort first"
                ),
            ));
        }
    }
}

/// Does the method chain starting at the name token `i` reach a
/// hash-order iteration method? Returns `(method, line, column)`.
fn hash_iteration(seq: &[TokenTree], i: usize) -> Option<(String, usize, usize)> {
    let mut j = i + 1;
    loop {
        if !matches!(seq.get(j), Some(t) if is_punct(t, '.')) {
            return None;
        }
        let name_tok = seq.get(j + 1)?;
        let m = ident_text(name_tok)?;
        // Field projection (`self.seen` → `seen` handled when the scan
        // lands on the field ident itself): `.field.iter()` keeps going.
        let mut next = j + 2;
        // Optional turbofish.
        if matches!((seq.get(next), seq.get(next + 1)),
            (Some(a), Some(b)) if is_punct(a, ':') && is_punct(b, ':'))
        {
            next += 2;
            if matches!(seq.get(next), Some(t) if is_punct(t, '<')) {
                let mut depth = 0i32;
                while next < seq.len() {
                    if is_punct(&seq[next], '<') {
                        depth += 1;
                    } else if is_punct(&seq[next], '>') {
                        depth -= 1;
                        if depth == 0 {
                            next += 1;
                            break;
                        }
                    }
                    next += 1;
                }
            }
        }
        let has_args = seq
            .get(next)
            .and_then(|t| group_with(t, Delimiter::Parenthesis))
            .is_some();
        if has_args {
            if ITER_METHODS.contains(&m.as_str()) {
                let at = name_tok.span().start();
                // Orderless terminal directly after the iteration call?
                if chain_is_orderless(seq, next + 1) {
                    return None;
                }
                return Some((m, at.line, at.column));
            }
            if !RECEIVER_ADAPTERS.contains(&m.as_str()) {
                return None; // projection into something else: not hash iteration
            }
            j = next + 1;
            if matches!(seq.get(j), Some(t) if is_punct(t, '?')) {
                j += 1;
            }
        } else {
            // plain field access: `.inner.iter()` — continue the chain
            j += 2;
        }
    }
}

/// After an iteration call ending at token index `k`, does the rest of
/// the chain reduce order away (`count`, `sum`, collect into a BTree*)?
fn chain_is_orderless(seq: &[TokenTree], mut k: usize) -> bool {
    while matches!(seq.get(k), Some(t) if is_punct(t, '.')) {
        let Some(m) = seq.get(k + 1).and_then(ident_text) else {
            return false;
        };
        if ORDERLESS_TERMINALS.contains(&m.as_str()) {
            return true;
        }
        // `collect::<BTreeMap<..>>()` and friends restore an order.
        if m == "collect" {
            let mut t = k + 2;
            let mut saw_btree = false;
            while t < seq.len() && !is_punct(&seq[t], ';') {
                if let Some(id) = ident_text(&seq[t]) {
                    if id.starts_with("BTree") || id.starts_with("Hash") {
                        saw_btree = true;
                    }
                }
                if matches!(&seq[t], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
                {
                    break;
                }
                t += 1;
            }
            return saw_btree;
        }
        // Skip over the method (+turbofish) and its args, keep walking.
        k += 2;
        if matches!((seq.get(k), seq.get(k + 1)),
            (Some(a), Some(b)) if is_punct(a, ':') && is_punct(b, ':'))
        {
            k += 2;
            if matches!(seq.get(k), Some(t) if is_punct(t, '<')) {
                let mut depth = 0i32;
                while k < seq.len() {
                    if is_punct(&seq[k], '<') {
                        depth += 1;
                    } else if is_punct(&seq[k], '>') {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
            }
        }
        if matches!(seq.get(k), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            k += 1;
        }
    }
    false
}

/// Does a later part of the same statement re-establish an order
/// (an explicit `sort*` call, or a `let .. : BTree..` destination)?
fn suppressed(seq: &[TokenTree], i: usize) -> bool {
    // Statement start: walk back to the previous `;` (or seq start).
    let start = (0..i)
        .rev()
        .find(|&k| is_punct(&seq[k], ';'))
        .map_or(0, |k| k + 1);
    let end = (i..seq.len())
        .find(|&k| is_punct(&seq[k], ';'))
        .unwrap_or(seq.len());
    for t in &seq[start..end] {
        if let Some(id) = ident_text(t) {
            if id.starts_with("sort") || id.starts_with("BTree") {
                return true;
            }
        }
    }
    false
}

/// Token at `i` (a hash-typed name) is the iterated expression of a
/// `for` loop: `for PAT in [&[mut]] [self.]name { .. }`.
fn for_loop_over(seq: &[TokenTree], i: usize) -> bool {
    // The name must be directly followed by the loop body.
    if !matches!(seq.get(i + 1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace) {
        return false;
    }
    // Walk back over `self .` / `&` / `mut` to find `in`.
    let mut k = i;
    while k > 0 {
        let prev = &seq[k - 1];
        if is_punct(prev, '.')
            || is_punct(prev, '&')
            || is_ident(prev, "mut")
            || is_ident(prev, "self")
        {
            k -= 1;
            continue;
        }
        break;
    }
    k > 0 && is_ident(&seq[k - 1], "in")
}

/// Names declared with a hash-ordered collection type anywhere in the
/// file: struct fields and `let` bindings with `Hash*` in the annotated
/// type or initializer (`HashMap::new()`, `HashMap::default()`, ...).
fn hash_typed_names(sf: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let mut seqs: Vec<Vec<TokenTree>> = vec![sf.tokens.clone().into_iter().collect()];
    let mut idx = 0;
    while idx < seqs.len() {
        let seq = std::mem::take(&mut seqs[idx]);
        for t in &seq {
            if let TokenTree::Group(g) = t {
                seqs.push(g.stream().into_iter().collect());
            }
        }
        for i in 0..seq.len() {
            let Some(name) = ident_text(&seq[i]) else {
                continue;
            };
            // `name : ..Hash{Map,Set}..` type annotation (single colon).
            let single_colon = matches!(seq.get(i + 1), Some(t) if is_punct(t, ':'))
                && !matches!(seq.get(i + 2), Some(t) if is_punct(t, ':'))
                && !matches!(i.checked_sub(1).and_then(|k| seq.get(k)), Some(t) if is_punct(t, ':'));
            if single_colon && type_tail_is_hash(&seq[i + 2..]) {
                names.insert(name);
                continue;
            }
            // `let [mut] name = ..Hash{Map,Set}::..` initializer.
            if name == "let" {
                let mut k = i + 1;
                if matches!(seq.get(k), Some(t) if is_ident(t, "mut")) {
                    k += 1;
                }
                let Some(bound) = seq.get(k).and_then(ident_text) else {
                    continue;
                };
                if matches!(seq.get(k + 1), Some(t) if is_punct(t, '='))
                    && init_tail_is_hash(&seq[k + 2..])
                {
                    names.insert(bound);
                }
            }
        }
        idx += 1;
    }
    names
}

/// Does the type text starting here (up to `,`/`;`/`=`/`)` at angle
/// depth 0) mention a hash collection?
fn type_tail_is_hash(tail: &[TokenTree]) -> bool {
    let mut angle = 0i32;
    for t in tail {
        if is_punct(t, '<') {
            angle += 1;
        } else if is_punct(t, '>') {
            angle -= 1;
            if angle < 0 {
                return false;
            }
        } else if angle == 0 && (is_punct(t, ',') || is_punct(t, ';') || is_punct(t, '=')) {
            return false;
        }
        if let Some(id) = ident_text(t) {
            if HASH_TYPES.contains(&id.as_str()) {
                return true;
            }
        }
    }
    false
}

/// Does the initializer (up to `;`) build a hash collection directly?
fn init_tail_is_hash(tail: &[TokenTree]) -> bool {
    for w in tail.windows(2) {
        if is_punct(&w[1], ';') {
            break;
        }
        if let Some(id) = ident_text(&w[0]) {
            if HASH_TYPES.contains(&id.as_str()) && is_punct(&w[1], ':') {
                return true;
            }
        }
    }
    false
}
