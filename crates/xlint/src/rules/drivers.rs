//! `driver-conformance` — every driver in `crates/drivers` keeps the
//! homogeneous surface the paper's gateway promises:
//!
//! * every `impl Driver for ...` block defines `accepts_url` (dynamic
//!   driver-to-resource allocation depends on it, §3.1.3);
//! * GLUE translation is routed through `base::glue_translate` — never
//!   a direct `Translator::translate_all` call — so drop/NULL
//!   accounting and the `glue_translate` trace stage stay uniform.

use crate::tokens::{contains_call, contains_path};
use crate::{Config, Finding, SourceFile};

/// Run the conformance rule over one file.
pub fn check(sf: &SourceFile, config: &Config) -> Vec<Finding> {
    if !sf.rel_path.starts_with(&config.driver_dir) {
        return Vec::new();
    }
    let exempt = config.driver_exempt.contains(&sf.rel_path);
    let mut out = Vec::new();

    // accepts_url present on every Driver impl (exempt files too: the
    // DDK does not implement Driver, so this is a no-op there).
    for item in &sf.ast.items {
        let syn::Item::Impl(im) = item else { continue };
        if im.trait_name() != Some("Driver") {
            continue;
        }
        if !im.fns.iter().any(|f| f.sig.ident == "accepts_url") {
            let at = im.span.start();
            out.push(Finding {
                rule: "driver-conformance".to_owned(),
                file: sf.rel_path.clone(),
                line: at.line,
                column: at.column + 1,
                message: format!(
                    "`impl Driver for {}` does not define `accepts_url` — dynamic \
                     driver-to-resource allocation needs it",
                    im.self_ty
                ),
            });
        }
    }

    if exempt {
        return out;
    }

    // A driver that builds a GLUE Translator must route rows through
    // base::glue_translate.
    let uses_translator = contains_path(&sf.tokens, "Translator", "new");
    let routes_through_base = contains_call(&sf.tokens, "glue_translate", true)
        || contains_path(&sf.tokens, "base", "glue_translate");
    if uses_translator && !routes_through_base {
        out.push(Finding {
            rule: "driver-conformance".to_owned(),
            file: sf.rel_path.clone(),
            line: 1,
            column: 1,
            message: "driver builds a GLUE Translator but never calls base::glue_translate — \
                      translation must go through the DDK for uniform drop/NULL tracing"
                .to_owned(),
        });
    }

    // Direct translate_all bypasses the DDK accounting.
    let mut direct = Vec::new();
    crate::tokens::for_each_seq(&sf.tokens, &mut |seq| {
        for call in crate::tokens::method_calls(seq) {
            if call.name == "translate_all" {
                direct.push((call.line, call.column));
            }
        }
    });
    for (line, column) in direct {
        out.push(Finding {
            rule: "driver-conformance".to_owned(),
            file: sf.rel_path.clone(),
            line,
            column: column + 1,
            message: "direct `.translate_all(..)` call — route GLUE translation through \
                      `base::glue_translate` instead"
                .to_owned(),
        });
    }
    out
}
