//! `stage-vocab` — every span stage recorded via `.stage("...")` /
//! `.stage_with("...", ...)` must belong to the closed vocabulary
//! documented in the "Span stage vocabulary" section of
//! `docs/observability.md`.

use crate::tokens::{for_each_seq, method_calls};
use crate::{Config, Finding, SourceFile};
use proc_macro2::TokenTree;

/// Run the stage-vocabulary rule over one file.
pub fn check(sf: &SourceFile, config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for_each_seq(&sf.tokens, &mut |seq| {
        for call in method_calls(seq) {
            if call.name != "stage" && call.name != "stage_with" {
                continue;
            }
            // The stage must be the literal *first* argument; dynamic
            // stage names (forwarding helpers) are out of static reach.
            let Some(TokenTree::Literal(l)) = call.args.stream().trees().first().cloned() else {
                continue;
            };
            let Some(stage) = l.str_value() else { continue };
            if !config.stage_vocab.contains(&stage) {
                let at = l.span().start();
                out.push(Finding {
                    rule: "stage-vocab".to_owned(),
                    file: sf.rel_path.clone(),
                    line: at.line,
                    column: at.column + 1,
                    message: format!(
                        "span stage `{stage}` is not documented in docs/observability.md \
                         (Span stage vocabulary) — stages are a closed set"
                    ),
                });
            }
        }
    });
    out
}
