//! `deprecated-codec` — all wire codec traffic goes through
//! `WireFrame::encode` / `WireFrame::decode` (the single choke point
//! that prices every message into the cost ledger). The free functions
//! `protocol::encode` / `protocol::decode` and the lower-level
//! `encode_framed` / `decode_framed` helpers were deprecated in the
//! serving-layer PR; calling them anywhere outside
//! `Config::codec_home` (protocol.rs itself) bypasses cost accounting
//! and is flagged here.

use crate::tokens::{for_each_seq, group_with, ident_text, is_ident, is_punct};
use crate::{Config, Finding, SourceFile};
use proc_macro2::Delimiter;

/// Run the deprecated-codec rule over one file.
pub fn check(sf: &SourceFile, config: &Config) -> Vec<Finding> {
    if sf.rel_path == config.codec_home {
        return Vec::new();
    }
    let mut out = Vec::new();
    for_each_seq(&sf.tokens, &mut |seq| {
        for i in 0..seq.len() {
            let Some(name) = ident_text(&seq[i]) else {
                continue;
            };
            // `protocol::encode(..)` / `protocol::decode(..)` path calls.
            if name == "protocol"
                && matches!((seq.get(i + 1), seq.get(i + 2)),
                    (Some(a), Some(b)) if is_punct(a, ':') && is_punct(b, ':'))
            {
                if let Some(m) = seq.get(i + 3).and_then(ident_text) {
                    let called = seq
                        .get(i + 4)
                        .map(|t| {
                            group_with(t, Delimiter::Parenthesis).is_some() || is_punct(t, ':')
                        })
                        .unwrap_or(false);
                    if (m == "encode" || m == "decode") && called {
                        let at = seq[i + 3].span().start();
                        out.push(Finding {
                            rule: "deprecated-codec".to_owned(),
                            file: sf.rel_path.clone(),
                            line: at.line,
                            column: at.column + 1,
                            message: format!(
                                "deprecated `protocol::{m}` — use `WireFrame::{m}` so the \
                                 message is priced into the cost ledger"
                            ),
                        });
                    }
                }
            }
            // `encode_framed(..)` / `decode_framed(..)` calls, bare or
            // path-qualified (definitions and `use` imports are not
            // calls — no argument list follows them).
            if name == "encode_framed" || name == "decode_framed" {
                let prev_is_def = i > 0 && is_ident(&seq[i - 1], "fn");
                let mut next = i + 1;
                // Skip a turbofish before the argument list.
                if matches!((seq.get(next), seq.get(next + 1)),
                    (Some(a), Some(b)) if is_punct(a, ':') && is_punct(b, ':'))
                {
                    next += 2;
                    if matches!(seq.get(next), Some(t) if is_punct(t, '<')) {
                        let mut depth = 0i32;
                        while next < seq.len() {
                            if is_punct(&seq[next], '<') {
                                depth += 1;
                            } else if is_punct(&seq[next], '>') {
                                depth -= 1;
                                if depth == 0 {
                                    next += 1;
                                    break;
                                }
                            }
                            next += 1;
                        }
                    }
                }
                let called = seq
                    .get(next)
                    .and_then(|t| group_with(t, Delimiter::Parenthesis))
                    .is_some();
                if called && !prev_is_def {
                    let at = seq[i].span().start();
                    out.push(Finding {
                        rule: "deprecated-codec".to_owned(),
                        file: sf.rel_path.clone(),
                        line: at.line,
                        column: at.column + 1,
                        message: format!(
                            "deprecated `{name}` — use `WireFrame::{}` so the message is \
                             priced into the cost ledger",
                            if name == "encode_framed" {
                                "encode"
                            } else {
                                "decode"
                            }
                        ),
                    });
                }
            }
        }
    });
    out.sort();
    out
}
