//! `lock-order` — workspace-wide static lock-acquisition graph and
//! deadlock-cycle detection.
//!
//! The per-file `lock-across-dispatch` rule catches a guard held across
//! a driver dispatch; this pass extends it inter-procedurally. For every
//! non-test function it records
//!
//! * which locks the function acquires directly (`let g =
//!   <recv>.lock()/.read()/.write()` bindings *and* statement
//!   temporaries like `map.lock().insert(..)`), naming each lock
//!   `file::receiver-chain` (`crates/core/src/stream.rs::inner`);
//! * the nested-acquisition edges `A -> B` it creates by taking `B`
//!   while a guard on `A` is live;
//! * every named call it makes while a guard is live.
//!
//! Function summaries (the set of locks a function may take, directly or
//! transitively) are then propagated to a fixpoint over a name-based
//! call graph; a call made under a guard contributes edges from the held
//! locks to everything the callee's summary may acquire. Cycles in the
//! resulting graph — including self-edges, since neither `std` nor
//! `parking_lot` mutexes are re-entrant — are reported as potential
//! deadlocks, and a guard held across a `pump` boundary
//! (`Config::boundary_methods`) is flagged directly: `pump` drives
//! probes, standing queries and delta delivery, so any lock it needs is
//! reachable from it.
//!
//! Name-based call resolution is deliberately coarse; ubiquitous method
//! names that collide with `std` collections (`get`, `insert`, `len`,
//! ...) are excluded from propagation via [`NO_PROPAGATE`], and dispatch
//! methods are excluded because holding a lock across them is already
//! its own rule.

use crate::tokens::{group_with, ident_text, is_ident, is_punct};
use crate::{collect_fns, Config, Finding, SourceFile};
use proc_macro2::{Delimiter, TokenTree};
use std::collections::{BTreeMap, BTreeSet};

const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// Method names never propagated through: they collide with `std`
/// collection/iterator vocabulary, so a name match says nothing about
/// which function is actually called.
const NO_PROPAGATE: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_front",
    "pop_back",
    "len",
    "is_empty",
    "clear",
    "clone",
    "to_string",
    "to_owned",
    "to_vec",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "next",
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "entry",
    "extend",
    "append",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "min",
    "max",
    "sum",
    "count",
    "collect",
    "join",
    "split",
    "trim",
    "parse",
    "new",
    "default",
    "from",
    "into",
    "take",
    "replace",
    "swap",
    "as_str",
    "as_ref",
    "as_mut",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "map",
    "map_err",
    "and_then",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "filter",
    "find",
    "position",
    "any",
    "all",
    "flush",
    "send",
    "recv",
    "write_all",
    "read_exact",
    "record",
    "observe",
    "with_capacity",
    "drop",
    // Arithmetic / atomics / condvar vocabulary — a workspace fn with
    // one of these names is never what `x.add(1)` or `cv.wait(g)` calls.
    "add",
    "sub",
    "saturating_add",
    "saturating_sub",
    "wrapping_add",
    "checked_add",
    "checked_sub",
    "fetch_add",
    "fetch_sub",
    "load",
    "store",
    "set",
    "wait",
    "wait_timeout",
    "wait_while",
    "notify_one",
    "notify_all",
];

/// One lock-acquisition site.
#[derive(Debug, Clone)]
struct Site {
    file: String,
    line: usize,
    column: usize,
    fn_name: String,
}

/// Per-function facts gathered from the token stream.
#[derive(Debug, Default)]
struct FnFacts {
    /// Locks acquired directly (bindings and temporaries).
    direct: BTreeSet<String>,
    /// Nested direct acquisitions: (held, acquired, site).
    edges: Vec<(String, String, Site)>,
    /// Calls made while guards were live: (held locks, callee, site).
    calls_locked: Vec<(Vec<String>, String, Site)>,
    /// Every named call in the body (for summary propagation).
    calls: BTreeSet<String>,
}

/// Run the lock-order pass over the whole parsed workspace.
pub fn check_workspace(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    // ---- gather per-function facts --------------------------------
    let mut facts: Vec<(String, FnFacts)> = Vec::new(); // (fn name, facts)
    for sf in files {
        for f in collect_fns(&sf.ast) {
            if f.in_test {
                continue;
            }
            let mut ff = FnFacts::default();
            let body: Vec<TokenTree> = f.body.clone().into_iter().collect();
            analyze_block(&body, &mut Vec::new(), sf, &f.name, &mut ff);
            collect_calls(&body, &mut ff.calls);
            facts.push((f.name.clone(), ff));
        }
    }

    // ---- fixpoint summaries over the name-based call graph --------
    let defined: BTreeSet<&str> = facts.iter().map(|(n, _)| n.as_str()).collect();
    let propagatable = |callee: &str| {
        defined.contains(callee)
            && !NO_PROPAGATE.contains(&callee)
            && !config.dispatch_methods.contains(callee)
            && !config.boundary_methods.contains(callee)
    };
    // Same-named functions merge into one summary: coarse but sound for
    // cycle *detection* (it over-approximates what a call may lock).
    let mut summary: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for (name, ff) in &facts {
        summary
            .entry(name.as_str())
            .or_default()
            .extend(ff.direct.iter().cloned());
    }
    let calls_of: BTreeMap<&str, BTreeSet<&str>> = {
        let mut m: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (name, ff) in &facts {
            let e = m.entry(name.as_str()).or_default();
            for c in &ff.calls {
                // A call to the caller's own name is almost always
                // same-named delegation into another type (`self.inner
                // .advance_to(..)` from `advance_to`), which name-based
                // resolution would turn into spurious self-recursion.
                if propagatable(c) && c != name {
                    e.insert(c.as_str());
                }
            }
        }
        m
    };
    for _round in 0..32 {
        let mut changed = false;
        let snapshot = summary.clone();
        for (name, callees) in &calls_of {
            for callee in callees {
                if let Some(locks) = snapshot.get(callee) {
                    let own = summary.entry(name).or_default();
                    for l in locks {
                        changed |= own.insert(l.clone());
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- edges: direct nesting + calls under a guard --------------
    let mut edge_sites: BTreeMap<(String, String), Site> = BTreeMap::new();
    let mut out = Vec::new();
    for (name, ff) in &facts {
        for (held, acquired, site) in &ff.edges {
            edge_sites
                .entry((held.clone(), acquired.clone()))
                .or_insert_with(|| site.clone());
        }
        for (held, callee, site) in &ff.calls_locked {
            if config.boundary_methods.contains(callee) {
                out.push(Finding {
                    rule: "lock-order".to_owned(),
                    file: site.file.clone(),
                    line: site.line,
                    column: site.column + 1,
                    message: format!(
                        "`.{callee}(..)` called in `{}` while lock guard(s) on {} are held — \
                         `{callee}` is a scheduling boundary (probes, standing queries, delta \
                         delivery); drop the guard first",
                        site.fn_name,
                        held.join(", ")
                    ),
                });
            }
            if !propagatable(callee) || callee == name {
                continue;
            }
            if let Some(locks) = summary.get(callee.as_str()) {
                for h in held {
                    for l in locks {
                        edge_sites
                            .entry((h.clone(), l.clone()))
                            .or_insert_with(|| Site {
                                file: site.file.clone(),
                                line: site.line,
                                column: site.column,
                                fn_name: format!("{} (via `{callee}`)", site.fn_name),
                            });
                    }
                }
            }
        }
    }

    // ---- cycle detection ------------------------------------------
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edge_sites.keys() {
        graph.entry(from.as_str()).or_default().insert(to.as_str());
        graph.entry(to.as_str()).or_default();
    }
    for scc in tarjan(&graph) {
        let cyclic = scc.len() > 1
            || (scc.len() == 1
                && graph
                    .get(scc[0])
                    .map(|s| s.contains(scc[0]))
                    .unwrap_or(false));
        if !cyclic {
            continue;
        }
        let members: BTreeSet<&str> = scc.iter().copied().collect();
        // Describe the cycle through its internal edges, anchored at the
        // lexicographically-first edge's site for a stable finding.
        let mut internal: Vec<(&str, &str, &Site)> = edge_sites
            .iter()
            .filter(|((f, t), _)| members.contains(f.as_str()) && members.contains(t.as_str()))
            .map(|((f, t), s)| (f.as_str(), t.as_str(), s))
            .collect();
        internal.sort_by_key(|(f, t, _)| (*f, *t));
        let Some((_, _, anchor)) = internal.first() else {
            continue;
        };
        let path = internal
            .iter()
            .map(|(f, t, s)| format!("{f} -> {t} (`{}` at {}:{})", s.fn_name, s.file, s.line))
            .collect::<Vec<_>>()
            .join("; ");
        out.push(Finding {
            rule: "lock-order".to_owned(),
            file: anchor.file.clone(),
            line: anchor.line,
            column: anchor.column + 1,
            message: format!(
                "lock-order cycle — potential deadlock across {} lock(s): {path}; \
                 acquire locks in one global order or narrow the guard scopes",
                members.len()
            ),
        });
    }
    out.sort();
    out.dedup();
    out
}

/// Iterative Tarjan SCC over a borrowed graph; returns components in a
/// deterministic order.
fn tarjan<'a>(graph: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Vec<Vec<&'a str>> {
    struct State<'a> {
        index: BTreeMap<&'a str, usize>,
        low: BTreeMap<&'a str, usize>,
        on_stack: BTreeSet<&'a str>,
        stack: Vec<&'a str>,
        next: usize,
        out: Vec<Vec<&'a str>>,
    }
    let mut st = State {
        index: BTreeMap::new(),
        low: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    // Explicit work stack: (node, neighbor iterator position).
    for &root in graph.keys() {
        if st.index.contains_key(root) {
            continue;
        }
        let mut work: Vec<(&str, usize)> = vec![(root, 0)];
        while let Some((v, pos)) = work.last().copied() {
            if pos == 0 && !st.index.contains_key(v) {
                st.index.insert(v, st.next);
                st.low.insert(v, st.next);
                st.next += 1;
                st.stack.push(v);
                st.on_stack.insert(v);
            }
            let neighbors: Vec<&str> = graph
                .get(v)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            if pos < neighbors.len() {
                if let Some(slot) = work.last_mut() {
                    slot.1 += 1;
                }
                let w = neighbors[pos];
                if !st.index.contains_key(w) {
                    work.push((w, 0));
                } else if st.on_stack.contains(w) {
                    let lw = st.index[w];
                    let lv = st.low[v];
                    st.low.insert(v, lv.min(lw));
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    let lv = st.low[v];
                    let lp = st.low[parent];
                    st.low.insert(parent, lp.min(lv));
                }
                if st.low[v] == st.index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = st.stack.pop() {
                        st.on_stack.remove(w);
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    st.out.push(comp);
                }
            }
        }
    }
    st.out
}

/// Walk one statement block tracking live guards; recurses into nested
/// blocks with the *current* guard environment (a guard bound outside an
/// `if` stays held inside it).
fn analyze_block(
    seq: &[TokenTree],
    live: &mut Vec<(String, String)>, // (binding name, lock id)
    sf: &SourceFile,
    fn_name: &str,
    ff: &mut FnFacts,
) {
    let base = live.len();
    for stmt in split_statements(seq) {
        if let Some(name) = dropped_guard(&stmt) {
            live.retain(|(g, _)| *g != name);
        }
        let binding = guard_binding(&stmt, sf, fn_name);
        // Every acquisition in this statement (the binding included)
        // adds edges from the currently-held locks and registers the
        // lock as directly acquired.
        for (lock, site) in acquisitions(&stmt, sf, fn_name) {
            ff.direct.insert(lock.clone());
            for (_, held) in live.iter() {
                if *held != lock {
                    ff.edges.push((held.clone(), lock.clone(), site.clone()));
                }
            }
        }
        // Calls made while guards are live (skip the pure binding
        // statement's guard call itself via the callee filter below).
        if !live.is_empty() {
            let held: Vec<String> = live.iter().map(|(_, l)| l.clone()).collect();
            scan_calls_locked(&stmt, &held, sf, fn_name, ff);
        }
        // Nested blocks inherit the live guards; their own bindings die
        // with the block.
        for t in &stmt {
            if let Some(g) = group_with(t, Delimiter::Brace) {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                analyze_block(&inner, live, sf, fn_name, ff);
            }
        }
        if let Some(b) = binding {
            live.push(b);
        }
    }
    live.truncate(base);
}

/// Split a block's top-level tokens into statements at `;`.
fn split_statements(seq: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut stmts = Vec::new();
    let mut cur = Vec::new();
    for t in seq {
        cur.push(t.clone());
        if is_punct(t, ';') {
            stmts.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        stmts.push(cur);
    }
    stmts
}

/// `drop(name)` → the guard name.
fn dropped_guard(stmt: &[TokenTree]) -> Option<String> {
    for i in 0..stmt.len() {
        if !is_ident(&stmt[i], "drop") {
            continue;
        }
        let args = stmt
            .get(i + 1)
            .and_then(|t| group_with(t, Delimiter::Parenthesis))?;
        let inner: Vec<TokenTree> = args.stream().into_iter().collect();
        if inner.len() == 1 {
            return ident_text(&inner[0]);
        }
    }
    None
}

/// `let [mut] NAME = <recv>.lock()[.unwrap()|.expect(..)|?]* ;` →
/// the binding name and its lock id.
fn guard_binding(stmt: &[TokenTree], sf: &SourceFile, fn_name: &str) -> Option<(String, String)> {
    if !matches!(stmt.first(), Some(t) if is_ident(t, "let")) {
        return None;
    }
    let mut i = 1;
    if matches!(stmt.get(i), Some(t) if is_ident(t, "mut")) {
        i += 1;
    }
    let name = ident_text(stmt.get(i)?)?;
    if !matches!(stmt.get(i + 1), Some(t) if is_punct(t, '=')) {
        return None;
    }
    // Find the last guard-method call; only panic adapters may follow.
    let mut last: Option<usize> = None;
    for j in 0..stmt.len() {
        if guard_call_at(stmt, j).is_some() {
            last = Some(j);
        }
    }
    let j = last?;
    let mut k = j + 3;
    while k < stmt.len() {
        match &stmt[k] {
            t if is_punct(t, ';') || is_punct(t, '?') => k += 1,
            t if is_punct(t, '.') => {
                let adapter = stmt.get(k + 1).and_then(ident_text)?;
                if adapter != "unwrap" && adapter != "expect" && adapter != "unwrap_or_else" {
                    return None; // projection through the guard: temporary
                }
                k += 2;
                if matches!(stmt.get(k), Some(TokenTree::Group(_))) {
                    k += 1;
                }
            }
            _ => return None,
        }
    }
    let lock = lock_id(stmt, j, sf, fn_name);
    Some((name, lock))
}

/// Is `stmt[j]` the `.` of a `.lock()/.read()/.write()` call with empty
/// arguments? Returns the method name.
fn guard_call_at(stmt: &[TokenTree], j: usize) -> Option<String> {
    if !is_punct(stmt.get(j)?, '.') {
        return None;
    }
    let m = stmt.get(j + 1).and_then(ident_text)?;
    if !GUARD_METHODS.contains(&m.as_str()) {
        return None;
    }
    let args = stmt
        .get(j + 2)
        .and_then(|t| group_with(t, Delimiter::Parenthesis))?;
    if !args.stream().is_empty() {
        return None;
    }
    Some(m)
}

/// Every guard-method acquisition in the statement (nested groups
/// included), with its lock id and site.
fn acquisitions(stmt: &[TokenTree], sf: &SourceFile, fn_name: &str) -> Vec<(String, Site)> {
    let mut out = Vec::new();
    fn walk(seq: &[TokenTree], sf: &SourceFile, fn_name: &str, out: &mut Vec<(String, Site)>) {
        for j in 0..seq.len() {
            if guard_call_at(seq, j).is_some() {
                let at = seq[j + 1].span().start();
                out.push((
                    lock_id(seq, j, sf, fn_name),
                    Site {
                        file: sf.rel_path.clone(),
                        line: at.line,
                        column: at.column,
                        fn_name: fn_name.to_owned(),
                    },
                ));
            }
            if let TokenTree::Group(g) = &seq[j] {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                walk(&inner, sf, fn_name, out);
            }
        }
    }
    walk(stmt, sf, fn_name, &mut out);
    out
}

/// Lock identity for the guard call whose `.` sits at `seq[j]`: the
/// receiver chain walked backwards over `ident . ident ...` (leading
/// `self` stripped), qualified by the defining file. A receiver that is
/// not a simple chain (a call result, an index) falls back to the
/// enclosing function name — still stable, if coarser.
fn lock_id(seq: &[TokenTree], j: usize, sf: &SourceFile, fn_name: &str) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut k = j;
    while k > 0 {
        let prev = &seq[k - 1];
        if let Some(id) = ident_text(prev) {
            if id == "self" {
                k -= 1;
                continue;
            }
            parts.push(id);
            k -= 1;
            if k > 0 && is_punct(&seq[k - 1], '.') {
                k -= 1;
                continue;
            }
        }
        break;
    }
    parts.reverse();
    let chain = if parts.is_empty() {
        format!("<expr in {fn_name}>")
    } else {
        parts.join(".")
    };
    format!("{}::{}", sf.rel_path, chain)
}

/// Record `.name(..)` method calls and bare `name(..)` fn calls made in
/// this statement while `held` locks are live. Guard methods themselves
/// and panic adapters are not calls of interest.
fn scan_calls_locked(
    stmt: &[TokenTree],
    held: &[String],
    sf: &SourceFile,
    fn_name: &str,
    ff: &mut FnFacts,
) {
    fn walk(seq: &[TokenTree], held: &[String], sf: &SourceFile, fn_name: &str, ff: &mut FnFacts) {
        for i in 0..seq.len() {
            let Some(name) = ident_text(&seq[i]) else {
                if let TokenTree::Group(g) = &seq[i] {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    walk(&inner, held, sf, fn_name, ff);
                }
                continue;
            };
            if GUARD_METHODS.contains(&name.as_str()) || name == "drop" {
                continue;
            }
            let called = seq
                .get(i + 1)
                .and_then(|t| group_with(t, Delimiter::Parenthesis))
                .is_some();
            if !called {
                continue;
            }
            let at = seq[i].span().start();
            ff.calls_locked.push((
                held.to_vec(),
                name,
                Site {
                    file: sf.rel_path.clone(),
                    line: at.line,
                    column: at.column,
                    fn_name: fn_name.to_owned(),
                },
            ));
        }
    }
    walk(stmt, held, sf, fn_name, ff);
}

/// Every named call anywhere in the body (for summary propagation).
fn collect_calls(seq: &[TokenTree], out: &mut BTreeSet<String>) {
    for i in 0..seq.len() {
        if let TokenTree::Group(g) = &seq[i] {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            collect_calls(&inner, out);
            continue;
        }
        let Some(name) = ident_text(&seq[i]) else {
            continue;
        };
        if seq
            .get(i + 1)
            .and_then(|t| group_with(t, Delimiter::Parenthesis))
            .is_some()
        {
            out.insert(name);
        }
    }
}
