//! `lock-across-dispatch` — a `Mutex`/`RwLock` guard bound with `let`
//! must not stay live across a driver dispatch or cross-layer call
//! (`.execute(..)`, `.handle_request(..)`, ...). That shape is exactly
//! the deadlock that would break single-flight coalescing: the leader
//! parks followers on a condvar while holding a gateway lock the
//! followers need.
//!
//! Temporaries (`map.lock().get(..)`) are fine — the guard dies at the
//! end of the statement. The rule tracks `let g = <expr>.lock();`-style
//! bindings (also `.read()` / `.write()`, with optional trailing
//! `.unwrap()` / `.expect(..)` / `?`) and flags dispatch calls between
//! the binding and `drop(g)` or the end of the enclosing block.

use crate::tokens::{group_with, ident_text, is_ident, is_punct, method_calls};
use crate::{collect_fns, Config, Finding, SourceFile};
use proc_macro2::{Delimiter, TokenTree};

const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// Run the lock-hygiene rule over one file.
pub fn check(sf: &SourceFile, config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in collect_fns(&sf.ast) {
        if f.in_test {
            continue;
        }
        let body: Vec<TokenTree> = f.body.clone().into_iter().collect();
        check_block(&body, sf, config, &f.name, &mut out);
    }
    out
}

/// Analyze one brace-delimited statement sequence; recurses into nested
/// blocks (each with a fresh guard environment — guards bound in a
/// nested block die at its end).
fn check_block(
    seq: &[TokenTree],
    sf: &SourceFile,
    config: &Config,
    fn_name: &str,
    out: &mut Vec<Finding>,
) {
    let statements = split_statements(seq);
    let mut live_guards: Vec<(String, usize)> = Vec::new(); // (name, line)
    for stmt in &statements {
        // Release on `drop(guard)` / `std::mem::drop(guard)`.
        if let Some(name) = dropped_guard(stmt) {
            live_guards.retain(|(g, _)| *g != name);
        }
        let guard = guard_binding(stmt);
        if guard.is_none() && !live_guards.is_empty() {
            // Scan this statement (including nested groups) for dispatch
            // calls made while a guard is live.
            scan_for_dispatch(stmt, sf, config, fn_name, &live_guards, out);
        }
        // Recurse into nested blocks for their own bindings. When guards
        // are live here, the nested scan above already covered dispatch
        // inside them; the recursion looks for *new* guard bindings.
        for t in stmt {
            if let Some(g) = group_with(t, Delimiter::Brace) {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                check_block(&inner, sf, config, fn_name, out);
            }
        }
        if let Some(g) = guard {
            live_guards.push(g);
        }
    }
}

/// Split a block's top-level tokens into statements at `;`. Brace groups
/// end statements too (`if`/`match`/`loop` tails), keeping guard
/// lifetimes aligned with statement boundaries.
fn split_statements(seq: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut stmts = Vec::new();
    let mut cur = Vec::new();
    for t in seq {
        if is_punct(t, ';') {
            cur.push(t.clone());
            stmts.push(std::mem::take(&mut cur));
        } else {
            cur.push(t.clone());
        }
    }
    if !cur.is_empty() {
        stmts.push(cur);
    }
    stmts
}

/// `let [mut] NAME = <expr>.lock()[.unwrap()|.expect(..)|?]* ;` →
/// `Some((NAME, line))`.
fn guard_binding(stmt: &[TokenTree]) -> Option<(String, usize)> {
    if !matches!(stmt.first(), Some(t) if is_ident(t, "let")) {
        return None;
    }
    let mut i = 1;
    if matches!(stmt.get(i), Some(t) if is_ident(t, "mut")) {
        i += 1;
    }
    let name = ident_text(stmt.get(i)?)?;
    let line = stmt.get(i)?.span().start().line;
    if !matches!(stmt.get(i + 1), Some(t) if is_punct(t, '=')) {
        return None; // destructuring / typed patterns: not a simple guard
    }
    // Find the *last* `.lock()`-style call and require that only
    // panic-to-value adapters follow it before the terminating `;`.
    let mut last_guard_end: Option<usize> = None;
    for j in 0..stmt.len() {
        if !is_punct(&stmt[j], '.') {
            continue;
        }
        let Some(m) = stmt.get(j + 1).and_then(ident_text) else {
            continue;
        };
        if !GUARD_METHODS.contains(&m.as_str()) {
            continue;
        }
        let Some(args) = stmt
            .get(j + 2)
            .and_then(|t| group_with(t, Delimiter::Parenthesis))
        else {
            continue;
        };
        if args.stream().is_empty() {
            last_guard_end = Some(j + 3);
        }
    }
    let mut k = last_guard_end?;
    while k < stmt.len() {
        match &stmt[k] {
            t if is_punct(t, ';') || is_punct(t, '?') => k += 1,
            t if is_punct(t, '.') => {
                let adapter = stmt.get(k + 1).and_then(ident_text)?;
                if adapter != "unwrap" && adapter != "expect" && adapter != "unwrap_or_else" {
                    return None; // projection through the guard: temporary
                }
                k += 2;
                if matches!(stmt.get(k), Some(TokenTree::Group(_))) {
                    k += 1;
                }
            }
            _ => return None,
        }
    }
    Some((name, line))
}

/// `drop(name)` (possibly `std::mem::drop`) → the guard name.
fn dropped_guard(stmt: &[TokenTree]) -> Option<String> {
    for i in 0..stmt.len() {
        if !is_ident(&stmt[i], "drop") {
            continue;
        }
        let Some(args) = stmt
            .get(i + 1)
            .and_then(|t| group_with(t, Delimiter::Parenthesis))
        else {
            continue;
        };
        let inner: Vec<TokenTree> = args.stream().into_iter().collect();
        if inner.len() == 1 {
            if let Some(name) = ident_text(&inner[0]) {
                return Some(name);
            }
        }
    }
    None
}

/// Flag dispatch-method calls anywhere inside `stmt` (nested groups
/// included) while `guards` are live.
fn scan_for_dispatch(
    stmt: &[TokenTree],
    sf: &SourceFile,
    config: &Config,
    fn_name: &str,
    guards: &[(String, usize)],
    out: &mut Vec<Finding>,
) {
    fn walk(
        seq: &[TokenTree],
        sf: &SourceFile,
        config: &Config,
        fn_name: &str,
        guards: &[(String, usize)],
        out: &mut Vec<Finding>,
    ) {
        for call in method_calls(seq) {
            if config.dispatch_methods.contains(&call.name) {
                let held: Vec<String> = guards
                    .iter()
                    .map(|(g, l)| format!("`{g}` (bound line {l})"))
                    .collect();
                out.push(Finding {
                    rule: "lock-across-dispatch".to_owned(),
                    file: sf.rel_path.clone(),
                    line: call.line,
                    column: call.column + 1,
                    message: format!(
                        "`.{}(..)` called in `{fn_name}` while lock guard {} is held — \
                         drop the guard before dispatching (single-flight deadlock shape)",
                        call.name,
                        held.join(", ")
                    ),
                });
            }
        }
        for t in seq {
            if let TokenTree::Group(g) = t {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                walk(&inner, sf, config, fn_name, guards, out);
            }
        }
    }
    walk(stmt, sf, config, fn_name, guards, out);
}
