//! `hot-path-panic` — panic-freedom audit of the hot request path.
//!
//! Inside the configured scope (gateway request handling, the driver /
//! connection managers, ACIL, the global fan-out engine, and every
//! driver's `execute_query`/`execute_update`) the following are
//! findings: `.unwrap()`, `.expect(..)`, `panic!`, `unreachable!`,
//! `todo!`, `unimplemented!`, and slice/array indexing `expr[i]` (which
//! panics out of bounds). Test code (`#[cfg(test)]` modules, `#[test]`
//! fns) is exempt; deliberate uses take an inline
//! `// xlint: allow(hot-path-panic) -- reason` waiver.

use crate::tokens::{for_each_seq, is_punct, macro_calls, method_calls};
use crate::{collect_fns, Config, Finding, SourceFile};
use proc_macro2::{Delimiter, TokenTree};

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may directly precede a `[` without it being an index
/// expression (slice patterns, array-literal positions).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "break", "continue", "move", "as",
    "where", "loop", "while", "for", "unsafe", "async", "dyn", "impl", "fn", "use", "pub", "const",
    "static", "box", "await", "yield", "union", "type", "enum", "struct", "trait", "mod",
];

/// Run the panic audit over one file.
pub fn check(sf: &SourceFile, config: &Config) -> Vec<Finding> {
    let whole_file = config
        .hot_path_files
        .iter()
        .any(|p| sf.rel_path.ends_with(p));
    let fn_names: Vec<&str> = config
        .hot_path_fns
        .iter()
        .filter(|(prefix, _)| sf.rel_path.starts_with(prefix))
        .flat_map(|(_, names)| names.iter().map(String::as_str))
        .collect();
    if !whole_file && fn_names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in collect_fns(&sf.ast) {
        if f.in_test {
            continue;
        }
        if !whole_file && !fn_names.contains(&f.name.as_str()) {
            continue;
        }
        audit_fn(sf, &f.name, &f.body, &mut out);
    }
    out
}

fn audit_fn(
    sf: &SourceFile,
    fn_name: &str,
    body: &proc_macro2::TokenStream,
    out: &mut Vec<Finding>,
) {
    let file = &sf.rel_path;
    for_each_seq(body, &mut |seq| {
        for call in method_calls(seq) {
            let finding = match call.name.as_str() {
                "unwrap" if call.args.stream().is_empty() => Some(format!(
                    "`.unwrap()` in hot-path fn `{fn_name}` — convert to a GridRmError \
                     (or waive with a reason)"
                )),
                "expect" if !call.args.stream().is_empty() => Some(format!(
                    "`.expect(..)` in hot-path fn `{fn_name}` — convert to a GridRmError \
                     (or waive with a reason)"
                )),
                _ => None,
            };
            if let Some(message) = finding {
                out.push(Finding {
                    rule: "hot-path-panic".to_owned(),
                    file: file.clone(),
                    line: call.line,
                    column: call.column + 1,
                    message,
                });
            }
        }
        for mac in macro_calls(seq) {
            if PANIC_MACROS.contains(&mac.name.as_str()) {
                out.push(Finding {
                    rule: "hot-path-panic".to_owned(),
                    file: file.clone(),
                    line: mac.line,
                    column: mac.column + 1,
                    message: format!("`{}!` in hot-path fn `{fn_name}`", mac.name),
                });
            }
        }
        // Indexing: a bracket group directly following an expression
        // tail (identifier, literal, call/paren, or another index).
        for i in 1..seq.len() {
            let TokenTree::Group(g) = &seq[i] else {
                continue;
            };
            if g.delimiter() != Delimiter::Bracket {
                continue;
            }
            let indexable = match &seq[i - 1] {
                TokenTree::Ident(id) => !NON_INDEX_KEYWORDS.contains(&id.to_string().as_str()),
                TokenTree::Literal(_) => true,
                TokenTree::Group(p) => {
                    matches!(p.delimiter(), Delimiter::Parenthesis | Delimiter::Bracket)
                }
                TokenTree::Punct(_) => false,
            };
            // `name![...]` is a macro, not an index.
            let is_macro = i >= 2 && is_punct(&seq[i - 1], '!');
            if indexable && !is_macro {
                let at = g.span().start();
                out.push(Finding {
                    rule: "hot-path-panic".to_owned(),
                    file: file.clone(),
                    line: at.line,
                    column: at.column + 1,
                    message: format!(
                        "slice indexing in hot-path fn `{fn_name}` can panic out of bounds — \
                         use `.get(..)` (or waive with a reason)"
                    ),
                });
            }
        }
    });
}
