//! Metric-registration rules, resolved from the call expression rather
//! than line grepping:
//!
//! * `metric-prefix` — every registered metric name starts `gridrm_`.
//! * `counter-suffix` — counter names end `_total`.
//! * `label-key` — label keys never come from client-controlled open
//!   sets (`source`, `url`, `hostname`, ...): high-cardinality detail
//!   belongs in the trace, not in labels.

use crate::tokens::{first_str_literal, for_each_seq, group_with, method_calls, path_calls};
use crate::{Config, Finding, SourceFile};
use proc_macro2::{Delimiter, TokenTree};

const REGISTRATIONS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "expose_counter",
    "expose_gauge",
    "expose_histogram",
];

/// Run the three metric rules over one file.
pub fn check(sf: &SourceFile, config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    let file = sf.rel_path.clone();
    for_each_seq(&sf.tokens, &mut |seq| {
        // Registration calls: `.counter("name", ...)` and friends.
        for call in method_calls(seq) {
            if !REGISTRATIONS.contains(&call.name.as_str()) {
                continue;
            }
            let Some((name, line, column)) = first_str_literal(call.args) else {
                continue; // dynamic name: nothing to resolve statically
            };
            if !name.starts_with("gridrm_") {
                out.push(Finding {
                    rule: "metric-prefix".to_owned(),
                    file: file.clone(),
                    line,
                    column: column + 1,
                    message: format!(
                        "metric `{name}` registered via `.{}()` must start with `gridrm_`",
                        call.name
                    ),
                });
            }
            if call.name.ends_with("counter") && !name.ends_with("_total") {
                out.push(Finding {
                    rule: "counter-suffix".to_owned(),
                    file: file.clone(),
                    line,
                    column: column + 1,
                    message: format!(
                        "counter `{name}` registered via `.{}()` must end in `_total`",
                        call.name
                    ),
                });
            }
        }
        // Label keys: tuples inside `Labels::from_pairs(&[("key", v), ..])`
        // and the first argument of `.with("key", v)`.
        for (args, _line) in path_calls(seq, "Labels", "from_pairs") {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            collect_pair_keys(&inner, config, &file, &mut out);
        }
        for call in method_calls(seq) {
            if call.name != "with" {
                continue;
            }
            if let Some((key, line, column)) = first_tuple_free_literal(call.args) {
                flag_key(&key, line, column, config, &file, &mut out);
            }
        }
    });
    out
}

/// Walk `&[("key", value), ...]` shapes: every parenthesised group whose
/// first token is a string literal contributes a label key.
fn collect_pair_keys(seq: &[TokenTree], config: &Config, file: &str, out: &mut Vec<Finding>) {
    for t in seq {
        if let Some(g) = group_with(t, Delimiter::Parenthesis) {
            if let Some((key, line, column)) = first_str_literal(g) {
                flag_key(&key, line, column, config, file, out);
            }
        } else if let TokenTree::Group(g) = t {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            collect_pair_keys(&inner, config, file, out);
        }
    }
}

/// First string literal of the args — but only when it is genuinely the
/// first argument (not nested inside a sub-group), so `.with(var, "x")`
/// is not misread.
fn first_tuple_free_literal(args: &proc_macro2::Group) -> Option<(String, usize, usize)> {
    match args.stream().trees().first() {
        Some(TokenTree::Literal(l)) => l.str_value().map(|v| {
            let at = l.span().start();
            (v, at.line, at.column)
        }),
        _ => None,
    }
}

fn flag_key(
    key: &str,
    line: usize,
    column: usize,
    config: &Config,
    file: &str,
    out: &mut Vec<Finding>,
) {
    if config.forbidden_label_keys.iter().any(|k| k == key) {
        out.push(Finding {
            rule: "label-key".to_owned(),
            file: file.to_owned(),
            line,
            column: column + 1,
            message: format!(
                "label key `{key}` is a client-controlled open set — put the detail in the trace, not in labels"
            ),
        });
    }
}
