//! Schema-ratchet fixture: an *incompatible* evolution of v1 — a field
//! added without `#[serde(default)]`, a field type change, a removed
//! variant, reordered surviving variants, and a lost tuple slot. Every
//! one must produce a `wire-schema` finding. Parsed, never compiled.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Envelope {
    pub from: String,
    pub cost: i64,
    #[serde(default)]
    pub trace: Option<String>,
    pub peer: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Req {
    Query {
        env: Envelope,
        sql: String,
        rows: Payload,
    },
    Ping,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Payload(pub Vec<String>);

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Unreachable {
    pub x: u8,
}
