//! Schema-ratchet fixture: baseline wire protocol (v1). Reachable
//! closure from root `Req` is {Req, Envelope, Payload}; `Unreachable`
//! stays outside the fingerprint. Parsed, never compiled.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Envelope {
    pub from: String,
    pub cost: u64,
    #[serde(default)]
    pub trace: Option<String>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Req {
    Ping,
    Query {
        env: Envelope,
        sql: String,
        rows: Payload,
    },
    Bye(u32),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Payload(pub Vec<String>, pub u32);

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Unreachable {
    pub x: u8,
}
