//! Schema-ratchet fixture: a *compatible* evolution of v1 — a defaulted
//! field, a new trailing variant, and a new type pulled into the
//! closure. The ratchet reports no findings but the fingerprint drifts
//! (so `--check` still demands `--update-wire-schema`). Parsed, never
//! compiled.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Envelope {
    pub from: String,
    pub cost: u64,
    #[serde(default)]
    pub trace: Option<String>,
    #[serde(default)]
    pub hops: u32,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Req {
    Ping,
    Query {
        env: Envelope,
        sql: String,
        rows: Payload,
    },
    Bye(u32),
    Subscribe { every: Cadence },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Payload(pub Vec<String>, pub u32);

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cadence {
    pub every_ms: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Unreachable {
    pub x: u8,
}
