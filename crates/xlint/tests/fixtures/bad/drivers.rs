//! Fixture: a driver that breaks every conformance promise — no
//! `accepts_url`, GLUE translation bypassing the DDK.

impl Driver for BadDriver {
    fn execute_query(&self, sql: &str) -> DbcResult<RowSet> {
        let translator = Translator::new(self.schema());
        let rows = translator.translate_all(self.native_rows(sql));
        Ok(rows)
    }
}
