//! Fixture: panic-audit scope for drivers is per-function — only the
//! `execute_query`/`execute_update` entry points are audited.

pub fn helper() {
    helper_value().unwrap();
}

impl Driver for HotDriver {
    fn accepts_url(&self, url: &str) -> bool {
        url.starts_with("gridrm:hot:")
    }

    fn execute_query(&self, sql: &str) -> DbcResult<RowSet> {
        let rows = fetch(sql).unwrap();
        Ok(rows)
    }
}
