//! Fixture: every hot-path-panic shape once; test code stays exempt.

pub fn handle(req: &Request) -> Response {
    let first = req.parts.get(0).unwrap();
    let second = req.lookup("x").expect("present");
    let third = req.parts[1];
    if second.is_empty() {
        panic!("empty request");
    }
    respond(first, third)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_tests() {
        build().unwrap();
        parts()[0].clone();
    }
}
