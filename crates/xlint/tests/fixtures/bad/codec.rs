//! Fixture: deprecated raw codec calls outside `protocol.rs`. Parsed by
//! the tests, never compiled.

use gridrm_global::protocol;

pub fn ship(msg: &GlobalRequest) -> Vec<u8> {
    protocol::encode(msg)
}

pub fn relay(bytes: &[u8]) -> DbcResult<GlobalRequest> {
    let frame = encode_framed(&GlobalRequest::Ping);
    let _ = frame;
    let (msg, _cost) = decode_framed::<GlobalRequest>(bytes)?;
    let _ = protocol::decode::<GlobalResponse>(bytes);
    Ok(msg)
}
