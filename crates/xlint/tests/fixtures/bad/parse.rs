//! Fixture: unbalanced delimiters — must surface as a `parse` finding,
//! not a crash.

pub fn broken(x: u32 -> u32 {
    x + 1
