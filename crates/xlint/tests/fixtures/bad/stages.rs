//! Fixture: span stages outside the documented vocabulary.

pub fn trace(span: &mut Span, rows: usize) {
    span.stage("warp_drive");
    span.stage_with("hyperspace", rows);
}
