//! Fixture: opposite lock orders across two functions — one side
//! acquires directly, the other through a helper (exercising the
//! inter-procedural summaries) — plus a guard held across the `pump`
//! scheduling boundary. Parsed by the tests, never compiled.

use parking_lot::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn backward(&self) -> u32 {
        let gb = self.b.lock();
        let x = self.grab_a();
        drop(gb);
        x
    }

    fn grab_a(&self) -> u32 {
        *self.a.lock()
    }

    pub fn across_pump(&self, gw: &Gateway) {
        let ga = self.a.lock();
        gw.pump(10);
        drop(ga);
    }
}
