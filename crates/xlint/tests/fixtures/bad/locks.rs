//! Fixture: lock guards held across driver dispatch.

pub fn dispatch_holding_guard(gw: &Gateway) -> Result<RowSet, SqlError> {
    let mut stats = gw.stats.lock();
    stats.requests += 1;
    let rows = gw.driver.execute_query(&gw.sql)?;
    Ok(rows)
}

pub fn poll_holding_read_guard(gw: &Gateway) {
    let snapshot = gw.table.read().unwrap();
    gw.scheduler.poll_now(&snapshot);
}
