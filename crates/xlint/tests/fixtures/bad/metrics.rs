//! Fixture: metric-registration violations. Never compiled — only
//! parsed by gridrm-xlint's tests.

pub fn register(reg: &Registry, name: &str, target: &str) {
    reg.counter("queries_total", "fan-out queries", Labels::empty());
    reg.counter("gridrm_queries", "fan-out queries", Labels::empty());
    reg.gauge("up", "gateway liveness", Labels::empty());
    let labels = Labels::from_pairs(&[("source", name), ("layer", "local")]);
    reg.histogram("gridrm_latency_ms", "latency", labels.with("url", target));
    reg.expose_counter("polls", "agent polls", Labels::empty());
}
