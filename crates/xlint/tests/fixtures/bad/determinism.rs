//! Fixture: wall-clock reads, real sleeps, entropy and hash-order
//! iteration inside a simnet-deterministic module. Parsed by the tests,
//! never compiled.

use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

pub struct Snapshotter {
    seen: HashMap<String, u64>,
    tags: HashSet<String>,
}

impl Snapshotter {
    pub fn stamp(&self) -> u64 {
        let _t0 = Instant::now();
        let _t1 = SystemTime::now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        0
    }

    pub fn rows(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (k, v) in self.seen.iter() {
            out.push((k.clone(), *v));
        }
        for t in &self.tags {
            out.push((t.clone(), 0));
        }
        out
    }

    pub fn jitter(&self) -> u64 {
        rand::random::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let s = Snapshotter {
            seen: HashMap::new(),
            tags: HashSet::new(),
        };
        let _ = Instant::now();
        for (_k, _v) in s.seen.iter() {}
    }
}
