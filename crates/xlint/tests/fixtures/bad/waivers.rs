//! Fixture: every malformed-waiver shape once.

pub fn f() -> u32 {
    // xlint: allow(hot-path-panic)
    let a = 1;
    // xlint: allow(made-up-rule) -- because I said so
    let b = 2;
    // xlint: nothing to see here
    let c = 3;
    a + b + c
}
