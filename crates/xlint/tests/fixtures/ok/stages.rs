//! Fixture: span stages from the documented vocabulary, plus a dynamic
//! stage name the analyzer deliberately leaves alone.

pub fn trace(span: &mut Span, rows: usize, dynamic: &str) {
    span.stage("parse");
    span.stage_with("execute", rows);
    span.stage(dynamic);
}
