//! Fixture: well-formed waivers suppress hot-path-panic findings, in
//! both the own-line and the trailing form.

pub fn handle(req: &Request) -> Response {
    // xlint: allow(hot-path-panic) -- fixture: deliberate, invariant covered elsewhere
    let first = req.parts.get(0).unwrap();
    let second = req.lookup("x").expect("present"); // xlint: allow(hot-path-panic) -- fixture: trailing waiver form
    respond(first, second)
}
