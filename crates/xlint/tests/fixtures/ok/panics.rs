//! Fixture: a panic-free hot-path function.

pub fn handle(req: &Request) -> Result<Response, GridRmError> {
    let first = req
        .parts
        .first()
        .ok_or_else(|| GridRmError::Internal("no parts".to_owned()))?;
    let rest = req.parts.get(1..).unwrap_or_default();
    let second = req.lookup("x").unwrap_or("");
    Ok(respond(first, rest, second))
}
