//! Fixture: consistent `a` → `b` acquisition order everywhere (directly
//! and through a helper), guards dropped before the `pump` boundary,
//! and statement temporaries. Parsed by the tests, never compiled.

use parking_lot::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn also_forward(&self) -> u32 {
        let ga = self.a.lock();
        let x = *ga + self.grab_b();
        x
    }

    fn grab_b(&self) -> u32 {
        *self.b.lock()
    }

    pub fn before_pump(&self, gw: &Gateway) {
        let ga = self.a.lock();
        let snapshot = *ga;
        drop(ga);
        gw.pump(snapshot as u64);
    }

    pub fn temporaries(&self) -> u32 {
        *self.a.lock() + *self.b.lock()
    }
}
