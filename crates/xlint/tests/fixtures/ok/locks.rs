//! Fixture: lock hygiene done right — drop before dispatch, or keep
//! the guard a statement-scoped temporary.

pub fn dispatch_after_drop(gw: &Gateway) -> Result<RowSet, SqlError> {
    let mut stats = gw.stats.lock();
    stats.requests += 1;
    drop(stats);
    let rows = gw.driver.execute_query(&gw.sql)?;
    Ok(rows)
}

pub fn temporaries_are_fine(gw: &Gateway) {
    let n = gw.stats.lock().requests;
    gw.scheduler.poll_now(n);
}
