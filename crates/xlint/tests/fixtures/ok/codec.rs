//! Fixture: the blessed codec path — everything goes through
//! `WireFrame`. Imports and same-named definitions are not calls.
//! Parsed by the tests, never compiled.

use gridrm_global::protocol::encode_framed;

pub fn ship(msg: &GlobalRequest) -> WireFrame {
    WireFrame::encode(msg)
}

pub fn receive(bytes: &[u8]) -> DbcResult<(GlobalRequest, u64)> {
    WireFrame::decode(bytes)
}

pub mod shim {
    /// A local `encode` — not `protocol::encode`.
    pub fn encode(x: u8) -> u8 {
        x
    }
}

pub fn uses_local(x: u8) -> u8 {
    shim::encode(x)
}

fn encode_framed_like() -> u8 {
    0
}
