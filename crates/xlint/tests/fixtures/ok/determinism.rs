//! Fixture: deterministic counterparts — ordered collections, orderless
//! folds over hash maps, an order-restoring collect, and the waiver
//! shape for a genuinely wall-clock helper. Parsed, never compiled.

use std::collections::{BTreeMap, BTreeSet, HashMap};

pub struct Snapshotter {
    seen: BTreeMap<String, u64>,
    hot: HashMap<String, u64>,
}

impl Snapshotter {
    pub fn rows(&self) -> Vec<(String, u64)> {
        self.seen.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    pub fn total(&self) -> u64 {
        self.hot.values().sum::<u64>()
    }

    pub fn live(&self) -> usize {
        self.hot.iter().count()
    }

    pub fn busiest(&self) -> Option<u64> {
        self.hot.values().copied().max()
    }

    pub fn names(&self) -> BTreeSet<String> {
        self.hot.keys().cloned().collect::<BTreeSet<String>>()
    }

    pub fn lookup(&self, k: &str) -> Option<u64> {
        self.hot.get(k).copied()
    }

    pub fn wall_probe(&self) -> u64 {
        // xlint: allow(determinism) -- demonstrating the waiver shape for a reviewed wall-clock exception
        let _ = std::time::Instant::now();
        0
    }
}
