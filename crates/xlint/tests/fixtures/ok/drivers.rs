//! Fixture: a conforming driver — `accepts_url` present, GLUE rows
//! routed through the DDK.

impl Driver for GoodDriver {
    fn accepts_url(&self, url: &str) -> bool {
        url.starts_with("gridrm:good:")
    }

    fn execute_query(&self, sql: &str) -> DbcResult<RowSet> {
        let translator = Translator::new(self.schema());
        base::glue_translate(&translator, self.native_rows(sql))
    }
}
