//! Fixture: conforming metric registrations. Never compiled — only
//! parsed by gridrm-xlint's tests.

pub fn register(reg: &Registry, name: &str, code: &str) {
    reg.counter("gridrm_queries_total", "fan-out queries", Labels::empty());
    reg.gauge("gridrm_up", "gateway liveness", Labels::empty());
    let labels = Labels::from_pairs(&[("driver", name), ("layer", "local")]);
    reg.histogram("gridrm_latency_ms", "latency", labels.with("status", code));
    reg.expose_counter("gridrm_polls_total", "agent polls", Labels::empty());
}
