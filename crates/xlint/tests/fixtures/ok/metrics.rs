//! Fixture: conforming metric registrations. Never compiled — only
//! parsed by gridrm-xlint's tests.

pub fn register(reg: &Registry, name: &str, code: &str) {
    reg.counter("gridrm_queries_total", "fan-out queries", Labels::empty());
    reg.gauge("gridrm_up", "gateway liveness", Labels::empty());
    let labels = Labels::from_pairs(&[("driver", name), ("layer", "local")]);
    reg.histogram("gridrm_latency_ms", "latency", labels.with("status", code));
    reg.expose_counter("gridrm_polls_total", "agent polls", Labels::empty());
}

pub fn register_cost_families(reg: &Registry) {
    // The cost-ledger and intrusion families: bounded label sets
    // (dir/kind/cause), gridrm_ prefix, _total counter suffix.
    for dir in ["in", "out"] {
        reg.counter(
            "gridrm_cost_msgs_total",
            "wire messages",
            Labels::from_pairs(&[("dir", dir)]),
        );
        reg.counter(
            "gridrm_cost_bytes_total",
            "wire bytes",
            Labels::from_pairs(&[("dir", dir)]),
        );
    }
    for kind in ["scanned", "returned"] {
        reg.counter(
            "gridrm_cost_rows_total",
            "rows",
            Labels::from_pairs(&[("kind", kind)]),
        );
    }
    for cause in ["query", "probe", "subscription", "gossip"] {
        reg.counter(
            "gridrm_intrusion_msgs_total",
            "imposed messages",
            Labels::from_pairs(&[("cause", cause)]),
        );
        reg.counter(
            "gridrm_intrusion_bytes_total",
            "imposed bytes",
            Labels::from_pairs(&[("cause", cause)]),
        );
    }
}
