//! Baseline-ratchet tests: the committed `xlint-baseline.json` must
//! match a fresh scan exactly (no silent drift in either direction),
//! and the diff logic must classify regressions and improvements.

use gridrm_xlint::baseline::{diff, Baseline};
use gridrm_xlint::{scan_workspace, Config, Finding};
use std::path::Path;

fn finding(rule: &str, file: &str, line: usize) -> Finding {
    Finding {
        rule: rule.to_owned(),
        file: file.to_owned(),
        line,
        column: 1,
        message: "test".to_owned(),
    }
}

#[test]
fn committed_baseline_matches_fresh_scan() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let config = Config::for_workspace(root).expect("workspace config");
    let findings = scan_workspace(root, &config).expect("scan");
    let fresh = Baseline::from_findings(&findings);
    let text = std::fs::read_to_string(root.join("xlint-baseline.json"))
        .expect("xlint-baseline.json is committed");
    let committed = Baseline::from_json(&text).expect("baseline parses");
    assert_eq!(
        committed, fresh,
        "xlint-baseline.json is stale — run `cargo run -p gridrm-xlint -- \
         --update-baseline` and commit the result.\nfindings now: {findings:#?}"
    );
}

#[test]
fn workspace_stage_vocab_includes_cost_accounting() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let config = Config::for_workspace(root).expect("workspace config");
    // The cost-accounting upgrade added the `cost` (over-budget) stage;
    // the vocabulary the stage-vocab rule enforces must carry it.
    assert!(
        config.stage_vocab.contains("cost"),
        "docs/observability.md stage vocabulary lost `cost`"
    );
}

#[test]
fn new_findings_are_regressions() {
    let committed = Baseline::from_findings(&[finding("hot-path-panic", "a.rs", 1)]);
    let now = vec![
        finding("hot-path-panic", "a.rs", 1),
        finding("hot-path-panic", "a.rs", 9),
    ];
    let d = diff(&committed, &now);
    assert!(!d.is_clean());
    assert_eq!(d.regressions.len(), 1);
    assert_eq!(d.regressions[0].1.len(), 2, "whole bucket is reported");
}

#[test]
fn fixed_findings_are_improvements_not_failures() {
    let committed = Baseline::from_findings(&[
        finding("hot-path-panic", "a.rs", 1),
        finding("hot-path-panic", "a.rs", 2),
    ]);
    let now = vec![finding("hot-path-panic", "a.rs", 1)];
    let d = diff(&committed, &now);
    assert!(d.is_clean(), "shrinking a bucket never fails the check");
    assert_eq!(d.improvements.len(), 1);
    assert_eq!(d.improvements[0].1, 1, "new count is reported");
}

#[test]
fn line_shifts_do_not_disturb_the_ratchet() {
    let committed = Baseline::from_findings(&[finding("label-key", "b.rs", 10)]);
    let now = vec![finding("label-key", "b.rs", 400)];
    let d = diff(&committed, &now);
    assert!(d.is_clean(), "counts key the ratchet, not line numbers");
    assert!(d.improvements.is_empty());
}

#[test]
fn baseline_json_round_trips() {
    let b = Baseline::from_findings(&[
        finding("metric-prefix", "x.rs", 3),
        finding("metric-prefix", "x.rs", 5),
        finding("stage-vocab", "y.rs", 8),
    ]);
    let back = Baseline::from_json(&b.to_json()).expect("round trip");
    assert_eq!(b, back);
}
