//! Per-rule fixture tests: every rule has a fixture that makes it fire
//! and a fixture it stays silent on. Fixtures live under
//! `tests/fixtures/{ok,bad}/` and are parsed, never compiled.

use gridrm_xlint::{check_file, scan_files, Config, Finding, SourceFile};
use std::collections::BTreeSet;

fn fixture(rel: &str) -> String {
    let path = format!("{}/tests/fixtures/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// A self-contained config mirroring the workspace one, with fixture
/// paths standing in for the real hot-path files.
fn test_config() -> Config {
    Config {
        hot_path_files: vec!["hot/panics.rs".to_owned(), "hot/waivers.rs".to_owned()],
        hot_path_fns: vec![(
            "crates/drivers/src/".to_owned(),
            vec!["execute_query".to_owned(), "execute_update".to_owned()],
        )],
        forbidden_label_keys: [
            "source", "url", "hostname", "host", "sql", "query", "address",
        ]
        .into_iter()
        .map(str::to_owned)
        .collect(),
        stage_vocab: ["parse", "execute", "glue_translate"]
            .into_iter()
            .map(str::to_owned)
            .collect::<BTreeSet<_>>(),
        dispatch_methods: [
            "execute",
            "execute_traced",
            "execute_query",
            "execute_update",
            "dispatch",
            "handle_request",
            "native_request",
            "glue_translate",
            "poll_now",
        ]
        .into_iter()
        .map(str::to_owned)
        .collect(),
        driver_dir: "crates/drivers/src/".to_owned(),
        driver_exempt: vec!["crates/drivers/src/base.rs".to_owned()],
        deterministic_dirs: vec![
            "crates/core/src/".to_owned(),
            "crates/global/src/".to_owned(),
            "crates/store/src/".to_owned(),
            "crates/telemetry/src/".to_owned(),
            "crates/drivers/src/".to_owned(),
        ],
        codec_home: "crates/global/src/protocol.rs".to_owned(),
        boundary_methods: ["pump"].into_iter().map(str::to_owned).collect(),
        wire_roots: vec!["GlobalRequest".to_owned(), "GlobalResponse".to_owned()],
    }
}

/// Parse `fixture_rel` pretending it sits at `as_path`, run every rule.
fn scan(fixture_rel: &str, as_path: &str) -> Vec<Finding> {
    let sf = SourceFile::parse(as_path, fixture(fixture_rel)).expect("fixture parses");
    check_file(&sf, &test_config())
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn metric_rules_fire_on_bad_fixture() {
    let f = scan("bad/metrics.rs", "crates/core/src/metrics_fixture.rs");
    assert_eq!(count(&f, "metric-prefix"), 3, "{f:#?}");
    assert_eq!(count(&f, "counter-suffix"), 2, "{f:#?}");
    assert_eq!(count(&f, "label-key"), 2, "{f:#?}");
}

#[test]
fn metric_rules_pass_ok_fixture() {
    let f = scan("ok/metrics.rs", "crates/core/src/metrics_fixture.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn stage_vocab_fires_on_undocumented_stages() {
    let f = scan("bad/stages.rs", "crates/core/src/stages_fixture.rs");
    assert_eq!(count(&f, "stage-vocab"), 2, "{f:#?}");
}

#[test]
fn stage_vocab_passes_documented_and_dynamic_stages() {
    let f = scan("ok/stages.rs", "crates/core/src/stages_fixture.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn panic_audit_fires_on_every_shape_outside_tests() {
    let f = scan("bad/panics.rs", "hot/panics.rs");
    // unwrap + expect + indexing + panic! — and nothing from the
    // #[cfg(test)] module.
    assert_eq!(count(&f, "hot-path-panic"), 4, "{f:#?}");
}

#[test]
fn panic_audit_passes_panic_free_code() {
    let f = scan("ok/panics.rs", "hot/panics.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn panic_audit_skips_files_outside_the_hot_path() {
    let f = scan("bad/panics.rs", "crates/telemetry/src/cold.rs");
    assert_eq!(count(&f, "hot-path-panic"), 0, "{f:#?}");
}

#[test]
fn panic_audit_in_drivers_covers_only_entry_points() {
    let f = scan("bad/hot_fn.rs", "crates/drivers/src/hot_fixture.rs");
    // helper()'s unwrap is out of scope; execute_query's is in scope.
    assert_eq!(count(&f, "hot-path-panic"), 1, "{f:#?}");
    assert!(f[0].message.contains("execute_query"), "{f:#?}");
}

#[test]
fn lock_rule_fires_on_guard_held_across_dispatch() {
    let f = scan("bad/locks.rs", "crates/core/src/locks_fixture.rs");
    assert_eq!(count(&f, "lock-across-dispatch"), 2, "{f:#?}");
}

#[test]
fn lock_rule_passes_drop_before_dispatch_and_temporaries() {
    let f = scan("ok/locks.rs", "crates/core/src/locks_fixture.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn driver_conformance_fires_on_bad_driver() {
    let f = scan("bad/drivers.rs", "crates/drivers/src/bad_fixture.rs");
    // missing accepts_url + Translator without glue_translate +
    // direct translate_all.
    assert_eq!(count(&f, "driver-conformance"), 3, "{f:#?}");
}

#[test]
fn driver_conformance_passes_good_driver() {
    let f = scan("ok/drivers.rs", "crates/drivers/src/good_fixture.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn driver_conformance_ignores_files_outside_driver_dir() {
    let f = scan("bad/drivers.rs", "crates/core/src/not_a_driver.rs");
    assert_eq!(count(&f, "driver-conformance"), 0, "{f:#?}");
}

#[test]
fn waiver_syntax_fires_on_malformed_waivers() {
    let f = scan("bad/waivers.rs", "crates/core/src/waivers_fixture.rs");
    assert_eq!(count(&f, "waiver-syntax"), 3, "{f:#?}");
}

#[test]
fn well_formed_waivers_suppress_findings_in_both_forms() {
    let f = scan("ok/waivers.rs", "hot/waivers.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn waivers_only_cover_their_own_rule() {
    // A hot-path-panic waiver on a line with a stage-vocab violation
    // must not hide the latter.
    let src = "pub fn f(span: &mut Span) {\n    \
               span.stage(\"bogus\"); // xlint: allow(hot-path-panic) -- wrong rule on purpose\n}\n";
    let sf = SourceFile::parse("crates/core/src/cross.rs", src.to_owned()).expect("parses");
    let f = check_file(&sf, &test_config());
    assert_eq!(count(&f, "stage-vocab"), 1, "{f:#?}");
}

#[test]
fn determinism_fires_on_wall_clock_entropy_and_hash_iteration() {
    let f = scan(
        "bad/determinism.rs",
        "crates/core/src/determinism_fixture.rs",
    );
    // Instant::now + SystemTime::now + thread::sleep + rand:: +
    // seen.iter() + `for .. in &self.tags` — and nothing from the
    // #[cfg(test)] module.
    assert_eq!(count(&f, "determinism"), 6, "{f:#?}");
}

#[test]
fn determinism_passes_ordered_orderless_and_waived_code() {
    let f = scan(
        "ok/determinism.rs",
        "crates/core/src/determinism_fixture.rs",
    );
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn determinism_ignores_wall_clock_crates() {
    let f = scan(
        "bad/determinism.rs",
        "crates/serve/src/determinism_fixture.rs",
    );
    assert_eq!(count(&f, "determinism"), 0, "{f:#?}");
}

#[test]
fn deprecated_codec_fires_on_raw_codec_calls() {
    let f = scan("bad/codec.rs", "crates/core/src/codec_fixture.rs");
    // protocol::encode + encode_framed + decode_framed::<..> +
    // protocol::decode::<..>.
    assert_eq!(count(&f, "deprecated-codec"), 4, "{f:#?}");
}

#[test]
fn deprecated_codec_passes_wireframe_imports_and_definitions() {
    let f = scan("ok/codec.rs", "crates/core/src/codec_fixture.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn deprecated_codec_exempts_the_codec_home() {
    let f = scan("bad/codec.rs", "crates/global/src/protocol.rs");
    assert_eq!(count(&f, "deprecated-codec"), 0, "{f:#?}");
}

#[test]
fn lock_order_detects_cycle_through_helper_and_pump_boundary() {
    let sf = SourceFile::parse(
        "crates/core/src/lockorder_fixture.rs",
        fixture("bad/lockorder.rs"),
    )
    .expect("fixture parses");
    let f = scan_files(std::slice::from_ref(&sf), &test_config());
    // One cycle (forward locks a→b, backward locks b then a via
    // grab_a's summary) and one guard held across pump.
    assert_eq!(count(&f, "lock-order"), 2, "{f:#?}");
    assert!(
        f.iter().any(|x| x.message.contains("lock-order cycle")),
        "{f:#?}"
    );
    assert!(
        f.iter().any(|x| x.message.contains("scheduling boundary")),
        "{f:#?}"
    );
}

#[test]
fn lock_order_passes_consistent_order_and_dropped_guards() {
    let sf = SourceFile::parse(
        "crates/core/src/lockorder_fixture.rs",
        fixture("ok/lockorder.rs"),
    )
    .expect("fixture parses");
    let f = scan_files(std::slice::from_ref(&sf), &test_config());
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn unbalanced_fixture_fails_to_parse() {
    let err = SourceFile::parse("bad/parse.rs", fixture("bad/parse.rs"));
    assert!(err.is_err(), "unbalanced delimiters must not parse");
}
