//! Wire-schema ratchet tests: the committed `xlint-wire-schema.json`
//! must match a fresh extraction exactly, and the diff logic must fail
//! on every incompatible evolution (a field added without
//! `#[serde(default)]` above all) while staying silent on compatible
//! drift.

use gridrm_xlint::schema::{build_schema, diff_schema, WireSchema};
use gridrm_xlint::{parse_workspace, Config, SourceFile};
use std::collections::BTreeSet;
use std::path::Path;

fn fixture(rel: &str) -> String {
    let path = format!("{}/tests/fixtures/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Minimal config whose wire closure is rooted at the fixture `Req`.
fn fixture_config() -> Config {
    Config {
        hot_path_files: Vec::new(),
        hot_path_fns: Vec::new(),
        forbidden_label_keys: Vec::new(),
        stage_vocab: BTreeSet::new(),
        dispatch_methods: BTreeSet::new(),
        driver_dir: "crates/drivers/src/".to_owned(),
        driver_exempt: Vec::new(),
        deterministic_dirs: Vec::new(),
        codec_home: "crates/global/src/protocol.rs".to_owned(),
        boundary_methods: BTreeSet::new(),
        wire_roots: vec!["Req".to_owned()],
    }
}

fn schema_of(fixture_rel: &str) -> (WireSchema, gridrm_xlint::schema::SchemaLocs) {
    let sf = SourceFile::parse("crates/global/src/protocol.rs", fixture(fixture_rel))
        .expect("fixture parses");
    build_schema(std::slice::from_ref(&sf), &fixture_config())
}

#[test]
fn committed_wire_schema_matches_fresh_scan() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let config = Config::for_workspace(root).expect("workspace config");
    let (files, _) = parse_workspace(root).expect("parse workspace");
    let (fresh, _locs) = build_schema(&files, &config);
    let text = std::fs::read_to_string(root.join("xlint-wire-schema.json"))
        .expect("xlint-wire-schema.json is committed");
    let committed = WireSchema::from_json(&text).expect("schema parses");
    assert_eq!(
        committed, fresh,
        "xlint-wire-schema.json is stale — run `cargo run -p gridrm-xlint -- \
         --update-wire-schema` and commit the result"
    );
}

#[test]
fn closure_covers_reachable_types_only() {
    let (v1, _) = schema_of("schema/wire_v1.rs");
    let names: Vec<&str> = v1.types.iter().map(|t| t.name.as_str()).collect();
    assert_eq!(names, ["Envelope", "Payload", "Req"], "{v1:#?}");
}

#[test]
fn ratchet_fails_on_incompatible_evolution() {
    let (v1, _) = schema_of("schema/wire_v1.rs");
    let (v2, locs) = schema_of("schema/wire_v2_bad.rs");
    let f = diff_schema(&v1, &v2, &locs);
    // peer added without default + cost type change + Bye removed +
    // Ping/Query reordered + Payload slot 1 lost.
    assert_eq!(f.len(), 5, "{f:#?}");
    for needle in [
        "without `#[serde(default)]`",
        "changed type",
        "lost variant",
        "reordered its committed variants",
        "lost wire field",
    ] {
        assert!(
            f.iter().any(|x| x.message.contains(needle)),
            "missing {needle:?} in {f:#?}"
        );
    }
    assert!(f.iter().all(|x| x.rule == "wire-schema"), "{f:#?}");
}

#[test]
fn compatible_drift_is_silent_but_changes_the_fingerprint() {
    let (v1, _) = schema_of("schema/wire_v1.rs");
    let (v2, locs) = schema_of("schema/wire_v2_ok.rs");
    let f = diff_schema(&v1, &v2, &locs);
    assert!(
        f.is_empty(),
        "defaulted fields and new variants are compatible: {f:#?}"
    );
    assert_ne!(v1, v2, "drift must still force an --update-wire-schema");
}

#[test]
fn schema_json_round_trips() {
    let (v1, _) = schema_of("schema/wire_v1.rs");
    let back = WireSchema::from_json(&v1.to_json()).expect("round trip");
    assert_eq!(v1, back);
}
