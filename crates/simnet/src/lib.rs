#![warn(missing_docs)]

//! # gridrm-simnet — simulated wide-area network substrate
//!
//! The GridRM paper deployed gateways and agents on real LAN/WAN hosts. This
//! crate replaces that testbed with a **deterministic in-process network**
//! so that every experiment in `EXPERIMENTS.md` is reproducible bit-for-bit
//! and machine-independent:
//!
//! * [`Network`] — an address → service registry with request/response RPC
//!   ([`Network::request`]) and one-way push delivery ([`Network::push`],
//!   used for SNMP traps and NetLogger event streams);
//! * [`LinkStats`]/[`EndpointStats`] — message/byte accounting. The paper's
//!   scalability claims are about *traffic shape* ("limiting resource
//!   intrusion", §4), so experiments count messages instead of trusting
//!   wall-clock noise;
//! * latency modelling — each request accrues simulated latency onto the
//!   shared [`SimClock`] totals without ever sleeping;
//! * fault injection — endpoints can be taken down, links blocked
//!   (partitions) or given a deterministic drop rate, which exercises the
//!   gateway's failure policies (§4).

pub mod clock;
pub mod network;
pub mod rng;
pub mod stats;

pub use clock::SimClock;
pub use network::{Endpoint, Latency, NetError, Network, Push, Service};
pub use rng::XorShift;
pub use stats::{EndpointSnapshot, EndpointStats, LinkKey, LinkSnapshot, LinkStats};
