//! Message and byte accounting.
//!
//! The paper's scalability argument (§4) is about *how many requests reach
//! the agents and remote gateways*; these counters are the measurement
//! instrument experiments E1/E7/E9 read.

use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies a directed link `src → dst`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkKey {
    /// Sending endpoint.
    pub src: String,
    /// Receiving endpoint.
    pub dst: String,
}

impl LinkKey {
    /// Construct a link key.
    pub fn new(src: &str, dst: &str) -> Self {
        LinkKey {
            src: src.to_owned(),
            dst: dst.to_owned(),
        }
    }
}

/// Per-link counters.
#[derive(Debug, Default)]
pub struct LinkStats {
    /// Requests delivered.
    pub requests: AtomicU64,
    /// Bytes carried src → dst (request payloads).
    pub bytes_out: AtomicU64,
    /// Bytes carried dst → src (response payloads).
    pub bytes_in: AtomicU64,
    /// Requests that failed (down endpoint, partition, drop).
    pub failures: AtomicU64,
    /// Total simulated latency accrued on this link, in microseconds.
    pub latency_us: AtomicU64,
}

/// Plain-data snapshot of [`LinkStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkSnapshot {
    /// Requests delivered.
    pub requests: u64,
    /// Request bytes.
    pub bytes_out: u64,
    /// Response bytes.
    pub bytes_in: u64,
    /// Failed requests.
    pub failures: u64,
    /// Accrued simulated latency (µs).
    pub latency_us: u64,
}

impl LinkStats {
    /// Copy the counters out.
    pub fn snapshot(&self) -> LinkSnapshot {
        LinkSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            latency_us: self.latency_us.load(Ordering::Relaxed),
        }
    }
}

/// Per-endpoint counters — `requests_served` is the "resource intrusion"
/// metric of experiment E7.
#[derive(Debug, Default)]
pub struct EndpointStats {
    /// Requests this endpoint's service handled.
    pub requests_served: AtomicU64,
    /// Bytes of responses it produced.
    pub bytes_served: AtomicU64,
    /// Pushes it emitted.
    pub pushes_sent: AtomicU64,
}

/// Plain-data snapshot of [`EndpointStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EndpointSnapshot {
    /// Requests handled.
    pub requests_served: u64,
    /// Response bytes produced.
    pub bytes_served: u64,
    /// Pushes emitted.
    pub pushes_sent: u64,
}

impl EndpointStats {
    /// Copy the counters out.
    pub fn snapshot(&self) -> EndpointSnapshot {
        EndpointSnapshot {
            requests_served: self.requests_served.load(Ordering::Relaxed),
            bytes_served: self.bytes_served.load(Ordering::Relaxed),
            pushes_sent: self.pushes_sent.load(Ordering::Relaxed),
        }
    }
}
