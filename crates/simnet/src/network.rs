//! The in-memory network: service registry, RPC, push delivery, faults.

use crate::clock::SimClock;
use crate::rng::XorShift;
use crate::stats::{EndpointStats, LinkKey, LinkStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A network-attached service: agents and gateways implement this.
pub trait Service: Send + Sync {
    /// Handle one request payload, producing a response payload.
    fn handle(&self, from: &str, request: &[u8]) -> Vec<u8>;
}

impl<F> Service for F
where
    F: Fn(&str, &[u8]) -> Vec<u8> + Send + Sync,
{
    fn handle(&self, from: &str, request: &[u8]) -> Vec<u8> {
        self(from, request)
    }
}

/// A one-way asynchronous message (trap, streamed event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Push {
    /// Sender address.
    pub from: String,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Virtual send time (ms).
    pub sent_at: u64,
}

/// Network-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No endpoint registered at the address.
    NoSuchEndpoint(String),
    /// Endpoint is administratively down (fault injection).
    EndpointDown(String),
    /// The link between the peers is partitioned.
    Partitioned {
        /// Sender.
        src: String,
        /// Receiver.
        dst: String,
    },
    /// The message was dropped by the link's loss model.
    Dropped,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NoSuchEndpoint(a) => write!(f, "no endpoint at '{a}'"),
            NetError::EndpointDown(a) => write!(f, "endpoint '{a}' is down"),
            NetError::Partitioned { src, dst } => {
                write!(f, "link {src} -> {dst} is partitioned")
            }
            NetError::Dropped => f.write_str("message dropped"),
        }
    }
}

impl std::error::Error for NetError {}

/// Latency model for a link: `base_us + uniform(0, jitter_us)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latency {
    /// Fixed one-way latency (µs).
    pub base_us: u64,
    /// Uniform jitter bound (µs).
    pub jitter_us: u64,
}

impl Latency {
    /// Zero-latency link (LAN-local calls, default).
    pub const ZERO: Latency = Latency {
        base_us: 0,
        jitter_us: 0,
    };

    /// Convenience constructor from milliseconds.
    pub fn ms(base_ms: u64, jitter_ms: u64) -> Latency {
        Latency {
            base_us: base_ms * 1000,
            jitter_us: jitter_ms * 1000,
        }
    }
}

struct EndpointEntry {
    service: Arc<dyn Service>,
    down: bool,
    stats: Arc<EndpointStats>,
    subscribers: Vec<Sender<Push>>,
}

/// An endpoint registration handle: lets the owner read its stats and
/// receive pushes.
pub struct Endpoint {
    /// The endpoint's address.
    pub addr: String,
    /// Its traffic counters.
    pub stats: Arc<EndpointStats>,
}

/// The deterministic in-memory network.
pub struct Network {
    clock: Arc<SimClock>,
    endpoints: RwLock<HashMap<String, EndpointEntry>>,
    links: RwLock<HashMap<LinkKey, Arc<LinkStats>>>,
    latency: RwLock<HashMap<LinkKey, Latency>>,
    default_latency: RwLock<Latency>,
    blocked: RwLock<HashSet<LinkKey>>,
    drop_rates: RwLock<HashMap<LinkKey, f64>>,
    rng: Mutex<XorShift>,
}

impl Network {
    /// Network with the given virtual clock and deterministic seed.
    pub fn new(clock: Arc<SimClock>, seed: u64) -> Arc<Network> {
        Arc::new(Network {
            clock,
            endpoints: RwLock::new(HashMap::new()),
            links: RwLock::new(HashMap::new()),
            latency: RwLock::new(HashMap::new()),
            default_latency: RwLock::new(Latency::ZERO),
            blocked: RwLock::new(HashSet::new()),
            drop_rates: RwLock::new(HashMap::new()),
            rng: Mutex::new(XorShift::new(seed)),
        })
    }

    /// The shared clock.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// Register a service at `addr`, replacing any previous registration.
    pub fn register(&self, addr: &str, service: Arc<dyn Service>) -> Endpoint {
        let stats = Arc::new(EndpointStats::default());
        self.endpoints.write().insert(
            addr.to_owned(),
            EndpointEntry {
                service,
                down: false,
                stats: stats.clone(),
                subscribers: Vec::new(),
            },
        );
        Endpoint {
            addr: addr.to_owned(),
            stats,
        }
    }

    /// Remove an endpoint entirely.
    pub fn unregister(&self, addr: &str) -> bool {
        self.endpoints.write().remove(addr).is_some()
    }

    /// All registered addresses, sorted — this is what "scanning a network"
    /// for data sources (§4) returns.
    pub fn scan(&self) -> Vec<String> {
        let mut v: Vec<String> = self.endpoints.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Mark an endpoint up/down (fault injection).
    pub fn set_down(&self, addr: &str, down: bool) -> bool {
        let mut eps = self.endpoints.write();
        match eps.get_mut(addr) {
            Some(e) => {
                e.down = down;
                true
            }
            None => false,
        }
    }

    /// Block/unblock the directed link `src → dst` (partitions).
    pub fn set_blocked(&self, src: &str, dst: &str, blocked: bool) {
        let key = LinkKey::new(src, dst);
        if blocked {
            self.blocked.write().insert(key);
        } else {
            self.blocked.write().remove(&key);
        }
    }

    /// Set a deterministic drop probability on a link.
    pub fn set_drop_rate(&self, src: &str, dst: &str, rate: f64) {
        self.drop_rates
            .write()
            .insert(LinkKey::new(src, dst), rate.clamp(0.0, 1.0));
    }

    /// Set the default latency model for all links without an override.
    pub fn set_default_latency(&self, latency: Latency) {
        *self.default_latency.write() = latency;
    }

    /// Override the latency model of one directed link.
    pub fn set_latency(&self, src: &str, dst: &str, latency: Latency) {
        self.latency.write().insert(LinkKey::new(src, dst), latency);
    }

    fn link_stats(&self, key: &LinkKey) -> Arc<LinkStats> {
        if let Some(s) = self.links.read().get(key) {
            return s.clone();
        }
        self.links
            .write()
            .entry(key.clone())
            .or_insert_with(|| Arc::new(LinkStats::default()))
            .clone()
    }

    /// Stats for the directed link `src → dst` (created lazily).
    pub fn stats_for(&self, src: &str, dst: &str) -> Arc<LinkStats> {
        self.link_stats(&LinkKey::new(src, dst))
    }

    /// Endpoint stats, if the endpoint exists.
    pub fn endpoint_stats(&self, addr: &str) -> Option<Arc<EndpointStats>> {
        self.endpoints.read().get(addr).map(|e| e.stats.clone())
    }

    /// Total requests served by all endpoints whose address matches
    /// `predicate` — the aggregate-intrusion probe used by E7.
    pub fn total_requests_served(&self, predicate: impl Fn(&str) -> bool) -> u64 {
        self.endpoints
            .read()
            .iter()
            .filter(|(a, _)| predicate(a))
            .map(|(_, e)| e.stats.requests_served.load(Ordering::Relaxed))
            .sum()
    }

    /// Synchronous request/response RPC from `src` to `dst`.
    pub fn request(&self, src: &str, dst: &str, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self.request_timed(src, dst, payload).map(|(resp, _)| resp)
    }

    /// Like [`Network::request`], but also returns the sampled
    /// round-trip latency in microseconds so callers modelling time
    /// (the global fan-out scheduler) can charge the virtual clock.
    pub fn request_timed(
        &self,
        src: &str,
        dst: &str,
        payload: &[u8],
    ) -> Result<(Vec<u8>, u64), NetError> {
        let key = LinkKey::new(src, dst);
        let stats = self.link_stats(&key);

        let fail = |e: NetError| {
            stats.failures.fetch_add(1, Ordering::Relaxed);
            Err(e)
        };

        if self.blocked.read().contains(&key) {
            return fail(NetError::Partitioned {
                src: src.to_owned(),
                dst: dst.to_owned(),
            });
        }
        if let Some(rate) = self.drop_rates.read().get(&key).copied() {
            if rate > 0.0 && self.rng.lock().chance(rate) {
                return fail(NetError::Dropped);
            }
        }

        // Resolve the service handle without holding the map lock during
        // the call (handlers may re-enter the network, e.g. a gateway
        // forwarding to another gateway).
        let (service, ep_stats, down) = {
            let eps = self.endpoints.read();
            let Some(entry) = eps.get(dst) else {
                drop(eps);
                return fail(NetError::NoSuchEndpoint(dst.to_owned()));
            };
            (entry.service.clone(), entry.stats.clone(), entry.down)
        };
        if down {
            return fail(NetError::EndpointDown(dst.to_owned()));
        }

        // Latency accrual (round trip = 2 one-way samples).
        let model = self
            .latency
            .read()
            .get(&key)
            .copied()
            .unwrap_or(*self.default_latency.read());
        let rtt_us = {
            let mut rng = self.rng.lock();
            let one = |rng: &mut XorShift| {
                model.base_us
                    + if model.jitter_us > 0 {
                        rng.next_below(model.jitter_us + 1)
                    } else {
                        0
                    }
            };
            one(&mut rng) + one(&mut rng)
        };
        stats.latency_us.fetch_add(rtt_us, Ordering::Relaxed);

        let response = service.handle(src, payload);

        stats.requests.fetch_add(1, Ordering::Relaxed);
        stats
            .bytes_out
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        stats
            .bytes_in
            .fetch_add(response.len() as u64, Ordering::Relaxed);
        ep_stats.requests_served.fetch_add(1, Ordering::Relaxed);
        ep_stats
            .bytes_served
            .fetch_add(response.len() as u64, Ordering::Relaxed);

        Ok((response, rtt_us))
    }

    /// Subscribe to pushes addressed to `addr` (e.g. a gateway listening
    /// for SNMP traps). Multiple subscribers each receive every push.
    pub fn subscribe(&self, addr: &str) -> Option<Receiver<Push>> {
        let (tx, rx) = unbounded();
        let mut eps = self.endpoints.write();
        let entry = eps.get_mut(addr)?;
        entry.subscribers.push(tx);
        Some(rx)
    }

    /// One-way push from `src` to `dst` subscribers. Returns the number of
    /// subscribers reached (0 when the endpoint is missing, down or the
    /// link is unavailable — pushes are fire-and-forget like UDP traps).
    pub fn push(&self, src: &str, dst: &str, payload: Vec<u8>) -> usize {
        let key = LinkKey::new(src, dst);
        if self.blocked.read().contains(&key) {
            return 0;
        }
        if let Some(rate) = self.drop_rates.read().get(&key).copied() {
            if rate > 0.0 && self.rng.lock().chance(rate) {
                return 0;
            }
        }
        let push = Push {
            from: src.to_owned(),
            payload,
            sent_at: self.clock.now_millis(),
        };
        let mut eps = self.endpoints.write();
        let Some(entry) = eps.get_mut(dst) else {
            return 0;
        };
        if entry.down {
            return 0;
        }
        // Drop subscribers whose receiver side is gone.
        entry.subscribers.retain(|tx| tx.send(push.clone()).is_ok());
        let reached = entry.subscribers.len();
        if reached > 0 {
            if let Some(src_entry) = eps.get(src) {
                src_entry.stats.pushes_sent.fetch_add(1, Ordering::Relaxed);
            }
        }
        reached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo() -> Arc<dyn Service> {
        Arc::new(|_from: &str, req: &[u8]| {
            let mut v = b"echo:".to_vec();
            v.extend_from_slice(req);
            v
        })
    }

    fn net() -> Arc<Network> {
        Network::new(SimClock::new(), 42)
    }

    #[test]
    fn basic_rpc() {
        let n = net();
        n.register("agent01", echo());
        let resp = n.request("gw", "agent01", b"hello").unwrap();
        assert_eq!(resp, b"echo:hello");
    }

    #[test]
    fn missing_endpoint() {
        let n = net();
        assert_eq!(
            n.request("gw", "nowhere", b"x"),
            Err(NetError::NoSuchEndpoint("nowhere".into()))
        );
    }

    #[test]
    fn down_endpoint_and_recovery() {
        let n = net();
        n.register("a", echo());
        assert!(n.set_down("a", true));
        assert_eq!(
            n.request("gw", "a", b"x"),
            Err(NetError::EndpointDown("a".into()))
        );
        n.set_down("a", false);
        assert!(n.request("gw", "a", b"x").is_ok());
        assert!(!n.set_down("ghost", true));
    }

    #[test]
    fn partition_is_directional() {
        let n = net();
        n.register("a", echo());
        n.register("b", echo());
        n.set_blocked("a", "b", true);
        assert!(matches!(
            n.request("a", "b", b"x"),
            Err(NetError::Partitioned { .. })
        ));
        // Reverse direction unaffected.
        assert!(n.request("b", "a", b"x").is_ok());
        n.set_blocked("a", "b", false);
        assert!(n.request("a", "b", b"x").is_ok());
    }

    #[test]
    fn drop_rate_statistical() {
        let n = net();
        n.register("a", echo());
        n.set_drop_rate("gw", "a", 0.5);
        let mut dropped = 0;
        for _ in 0..1000 {
            if n.request("gw", "a", b"x").is_err() {
                dropped += 1;
            }
        }
        assert!((300..700).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn accounting() {
        let n = net();
        n.register("a", echo());
        n.request("gw", "a", b"12345").unwrap();
        n.request("gw", "a", b"12345").unwrap();
        let link = n.stats_for("gw", "a").snapshot();
        assert_eq!(link.requests, 2);
        assert_eq!(link.bytes_out, 10);
        assert_eq!(link.bytes_in, 2 * ("echo:12345".len() as u64));
        let ep = n.endpoint_stats("a").unwrap().snapshot();
        assert_eq!(ep.requests_served, 2);
    }

    #[test]
    fn latency_accrues() {
        let n = net();
        n.register("a", echo());
        n.set_latency("gw", "a", Latency::ms(10, 0));
        n.request("gw", "a", b"x").unwrap();
        let link = n.stats_for("gw", "a").snapshot();
        assert_eq!(link.latency_us, 20_000); // 10 ms each way
    }

    #[test]
    fn request_timed_reports_the_sampled_rtt() {
        let n = net();
        n.register("a", echo());
        n.set_latency("gw", "a", Latency::ms(10, 0));
        let (resp, rtt_us) = n.request_timed("gw", "a", b"x").unwrap();
        assert_eq!(resp, b"echo:x");
        assert_eq!(rtt_us, 20_000); // 10 ms each way
                                    // The reported sample is exactly what the link stats accrued.
        assert_eq!(n.stats_for("gw", "a").snapshot().latency_us, rtt_us);
    }

    #[test]
    fn default_latency_applies_to_new_links() {
        let n = net();
        n.register("a", echo());
        n.set_default_latency(Latency::ms(5, 0));
        n.request("gw", "a", b"x").unwrap();
        assert_eq!(n.stats_for("gw", "a").snapshot().latency_us, 10_000);
    }

    #[test]
    fn push_subscription() {
        let n = net();
        n.register("gw", echo());
        n.register("agent", echo());
        let rx = n.subscribe("gw").unwrap();
        let reached = n.push("agent", "gw", b"TRAP".to_vec());
        assert_eq!(reached, 1);
        let p = rx.try_recv().unwrap();
        assert_eq!(p.from, "agent");
        assert_eq!(p.payload, b"TRAP");
    }

    #[test]
    fn push_to_down_endpoint_lost() {
        let n = net();
        n.register("gw", echo());
        n.register("agent", echo());
        let rx = n.subscribe("gw").unwrap();
        n.set_down("gw", true);
        assert_eq!(n.push("agent", "gw", b"TRAP".to_vec()), 0);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn scan_lists_endpoints() {
        let n = net();
        n.register("b", echo());
        n.register("a", echo());
        assert_eq!(n.scan(), vec!["a".to_owned(), "b".into()]);
        n.unregister("a");
        assert_eq!(n.scan(), vec!["b".to_owned()]);
    }

    #[test]
    fn reentrant_handler_allowed() {
        // A "gateway" service that forwards to an agent over the same
        // network — must not deadlock.
        let n = net();
        n.register("agent", echo());
        let n2 = n.clone();
        n.register(
            "gw",
            Arc::new(move |_from: &str, req: &[u8]| {
                n2.request("gw", "agent", req).unwrap_or_default()
            }),
        );
        let resp = n.request("client", "gw", b"q").unwrap();
        assert_eq!(resp, b"echo:q");
    }

    #[test]
    fn failure_counting() {
        let n = net();
        n.register("a", echo());
        n.set_down("a", true);
        let _ = n.request("gw", "a", b"x");
        let _ = n.request("gw", "a", b"x");
        assert_eq!(n.stats_for("gw", "a").snapshot().failures, 2);
    }

    #[test]
    fn total_requests_served_filter() {
        let n = net();
        n.register("site-a/agent1", echo());
        n.register("site-a/agent2", echo());
        n.register("site-b/agent1", echo());
        n.request("gw", "site-a/agent1", b"x").unwrap();
        n.request("gw", "site-a/agent2", b"x").unwrap();
        n.request("gw", "site-b/agent1", b"x").unwrap();
        assert_eq!(n.total_requests_served(|a| a.starts_with("site-a/")), 2);
        assert_eq!(n.total_requests_served(|_| true), 3);
    }
}
