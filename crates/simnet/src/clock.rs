//! Shared virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A virtual millisecond clock shared by the network, the resource models
/// and the gateways.
///
/// Nothing in the simulation sleeps: scenarios advance the clock explicitly
/// (`advance`) and components read it (`now_millis`). This keeps tests fast
/// and experiments reproducible, while TTL caches, event timestamps and
/// history retention all behave exactly as they would against a wall clock.
#[derive(Debug, Default)]
pub struct SimClock {
    millis: AtomicU64,
}

impl SimClock {
    /// Clock starting at 0 ms.
    pub fn new() -> Arc<SimClock> {
        Arc::new(SimClock::default())
    }

    /// Clock starting at an arbitrary epoch offset.
    pub fn starting_at(millis: u64) -> Arc<SimClock> {
        let c = SimClock::default();
        c.millis.store(millis, Ordering::Release);
        Arc::new(c)
    }

    /// Current virtual time in milliseconds.
    pub fn now_millis(&self) -> u64 {
        self.millis.load(Ordering::Acquire)
    }

    /// Current virtual time as an `i64` (for SQL timestamps).
    pub fn now_ts(&self) -> i64 {
        self.now_millis() as i64
    }

    /// Advance the clock by `delta_ms`, returning the new time.
    pub fn advance(&self, delta_ms: u64) -> u64 {
        self.millis.fetch_add(delta_ms, Ordering::AcqRel) + delta_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_millis(), 0);
        assert_eq!(c.advance(250), 250);
        assert_eq!(c.now_millis(), 250);
        c.advance(50);
        assert_eq!(c.now_ts(), 300);
    }

    #[test]
    fn custom_epoch() {
        let c = SimClock::starting_at(1_000_000);
        assert_eq!(c.now_millis(), 1_000_000);
    }

    #[test]
    fn concurrent_advances_sum() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                });
            }
        });
        assert_eq!(c.now_millis(), 4000);
    }
}
