//! Small deterministic PRNG used throughout the simulation.
//!
//! All simulated randomness (latency jitter, packet drops, metric noise)
//! flows through this xorshift64* generator so that a seed fully determines
//! an experiment. The `rand` crate is reserved for workload generation in
//! benches where reproducibility is provided by criterion instead.

/// xorshift64* — tiny, fast, good enough for simulation noise.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Seeded generator. A zero seed is remapped (xorshift cannot hold 0).
    pub fn new(seed: u64) -> Self {
        XorShift {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Approximate standard normal via the sum of 12 uniforms (Irwin–Hall);
    /// cheap, deterministic and plenty for metric noise.
    pub fn next_gaussian(&mut self) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.next_f64();
        }
        acc - 6.0
    }

    /// Derive an independent stream for a named sub-component.
    pub fn fork(&mut self, label: &str) -> XorShift {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        XorShift::new(self.next_u64() ^ h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift::new(1);
        let mut b = XorShift::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = XorShift::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = XorShift::new(9);
        for _ in 0..1000 {
            let x = r.range_f64(5.0, 6.0);
            assert!((5.0..6.0).contains(&x));
        }
    }

    #[test]
    fn gaussian_is_roughly_centred() {
        let mut r = XorShift::new(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_gaussian()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = XorShift::new(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn forks_are_independent_streams() {
        let mut root = XorShift::new(5);
        let mut a = root.fork("agent");
        let mut b = root.fork("network");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
