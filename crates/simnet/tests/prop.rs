//! Property tests for the network substrate: accounting conservation and
//! fault-injection invariants.

use gridrm_simnet::{Network, Service, SimClock};
use proptest::prelude::*;
use std::sync::Arc;

fn echo() -> Arc<dyn Service> {
    Arc::new(|_from: &str, req: &[u8]| req.to_vec())
}

proptest! {
    /// requests + failures on a link equals attempts; byte counters equal
    /// the sum of successful payload sizes (echo service: in == out).
    #[test]
    fn accounting_conserves(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..40),
        down_after in prop::option::of(0usize..40),
    ) {
        let net = Network::new(SimClock::new(), 7);
        net.register("agent", echo());
        let mut expect_ok = 0u64;
        let mut expect_fail = 0u64;
        let mut expect_bytes = 0u64;
        for (i, p) in payloads.iter().enumerate() {
            if Some(i) == down_after {
                net.set_down("agent", true);
            }
            match net.request("client", "agent", p) {
                Ok(resp) => {
                    prop_assert_eq!(&resp, p);
                    expect_ok += 1;
                    expect_bytes += p.len() as u64;
                }
                Err(_) => expect_fail += 1,
            }
        }
        let snap = net.stats_for("client", "agent").snapshot();
        prop_assert_eq!(snap.requests, expect_ok);
        prop_assert_eq!(snap.failures, expect_fail);
        prop_assert_eq!(snap.bytes_out, expect_bytes);
        prop_assert_eq!(snap.bytes_in, expect_bytes);
        let served = net.endpoint_stats("agent").unwrap().snapshot();
        prop_assert_eq!(served.requests_served, expect_ok);
    }

    /// A drop rate of 0 never drops; a rate of 1 always drops; in between,
    /// every outcome is one of Ok/Dropped and the counters still add up.
    #[test]
    fn drop_rate_extremes(rate in prop::sample::select(vec![0.0f64, 1.0]), n in 1usize..30) {
        let net = Network::new(SimClock::new(), 11);
        net.register("a", echo());
        net.set_drop_rate("c", "a", rate);
        let mut ok = 0;
        for _ in 0..n {
            if net.request("c", "a", b"x").is_ok() {
                ok += 1;
            }
        }
        if rate == 0.0 {
            prop_assert_eq!(ok, n);
        } else {
            prop_assert_eq!(ok, 0);
        }
    }

    /// Partitions are exactly directional and reversible.
    #[test]
    fn partitions_directional(block_ab in any::<bool>(), block_ba in any::<bool>()) {
        let net = Network::new(SimClock::new(), 13);
        net.register("a", echo());
        net.register("b", echo());
        net.set_blocked("a", "b", block_ab);
        net.set_blocked("b", "a", block_ba);
        prop_assert_eq!(net.request("a", "b", b"x").is_ok(), !block_ab);
        prop_assert_eq!(net.request("b", "a", b"x").is_ok(), !block_ba);
        net.set_blocked("a", "b", false);
        net.set_blocked("b", "a", false);
        prop_assert!(net.request("a", "b", b"x").is_ok());
        prop_assert!(net.request("b", "a", b"x").is_ok());
    }

    /// Pushes reach every subscriber exactly once, in order.
    #[test]
    fn pushes_fan_out(messages in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 0..20),
                      subscribers in 1usize..4) {
        let net = Network::new(SimClock::new(), 17);
        net.register("sink", echo());
        net.register("src", echo());
        let rxs: Vec<_> = (0..subscribers)
            .map(|_| net.subscribe("sink").unwrap())
            .collect();
        for m in &messages {
            prop_assert_eq!(net.push("src", "sink", m.clone()), subscribers);
        }
        for rx in rxs {
            let got: Vec<Vec<u8>> = rx.try_iter().map(|p| p.payload).collect();
            prop_assert_eq!(&got, &messages);
        }
    }

    /// Deterministic: two networks with the same seed and the same request
    /// sequence agree on every outcome, even with a lossy link.
    #[test]
    fn seeded_determinism(n in 1usize..60, seed in any::<u64>()) {
        let run = |seed: u64| -> Vec<bool> {
            let net = Network::new(SimClock::new(), seed);
            net.register("a", echo());
            net.set_drop_rate("c", "a", 0.4);
            (0..n).map(|_| net.request("c", "a", b"p").is_ok()).collect()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
