//! Property tests for the resource model: bounds, monotonicity, and
//! independence from advancement chunking.

use gridrm_resmodel::{SiteModel, SiteSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// However time is advanced, every metric stays within physical
    /// bounds and counters never decrease.
    #[test]
    fn metrics_bounded_and_counters_monotone(
        seed in any::<u64>(),
        steps in prop::collection::vec(1u64..120_000, 1..20),
    ) {
        let site = SiteModel::generate(seed, &SiteSpec::new("p", 2, 4));
        let mut t = 0u64;
        let mut last_rx = [0u64; 2];
        let mut last_uptime = [0u64; 2];
        for dt in steps {
            t += dt;
            site.advance_to(t);
            for (i, snap) in site.all_snapshots().iter().enumerate() {
                prop_assert!(snap.load1 >= 0.0 && snap.load1 <= 8.0, "load {}", snap.load1);
                prop_assert!(snap.cpu_idle >= 0.0 && snap.cpu_user >= 0.0);
                let total = snap.cpu_user + snap.cpu_system + snap.cpu_idle;
                prop_assert!((total - 100.0).abs() < 1e-6);
                prop_assert!(snap.mem_available_mb <= snap.spec.mem_mb);
                let rx = snap.nics[0].rx_bytes;
                prop_assert!(rx >= last_rx[i], "rx went backwards");
                last_rx[i] = rx;
                prop_assert!(snap.uptime_sec >= last_uptime[i]);
                last_uptime[i] = snap.uptime_sec;
                for fs in &snap.filesystems {
                    prop_assert!(fs.available_mb <= fs.size_mb);
                }
            }
        }
    }

    /// Compute summary invariants: free + running == total, regardless of
    /// load state.
    #[test]
    fn compute_summary_conserves_cpus(seed in any::<u64>(), t in 1u64..3_600_000) {
        let site = SiteModel::generate(seed, &SiteSpec::new("q", 3, 4));
        site.advance_to(t);
        let (total, free, running, _) = site.compute_summary();
        prop_assert_eq!(total, 12);
        prop_assert_eq!(free + running, total);
    }

    /// Spike injection never violates bounds and always decays.
    #[test]
    fn spikes_bounded_and_transient(seed in any::<u64>(), magnitude in 0.1f64..50.0) {
        let site = SiteModel::generate(seed, &SiteSpec::new("r", 1, 4));
        site.advance_to(60_000);
        let host = site.hostnames()[0].clone();
        let baseline = site.host_snapshot(&host).unwrap().load1;
        site.inject_load_spike(&host, magnitude);
        site.advance_to(61_000);
        let spiked = site.host_snapshot(&host).unwrap().load1;
        prop_assert!(spiked <= 8.0); // ncpu * 2 clamp
        // After plenty of decay time the load returns to normal territory.
        site.advance_to(600_000);
        let later = site.host_snapshot(&host).unwrap().load1;
        prop_assert!(later <= baseline + 2.0, "spike stuck: {later}");
    }

    /// NWS pair history timestamps are strictly increasing.
    #[test]
    fn pair_history_ordered(seed in any::<u64>(), minutes in 2u64..30) {
        let mut spec = SiteSpec::new("s", 2, 2);
        spec.peers = vec!["far.away".to_owned()];
        let site = SiteModel::generate(seed, &spec);
        site.advance_to(minutes * 60_000);
        for (src, dst) in site.pair_names() {
            let hist = site.pair_history(&src, &dst);
            prop_assert!(!hist.is_empty());
            for w in hist.windows(2) {
                prop_assert!(w[0].at_ms < w[1].at_ms);
            }
        }
    }
}
