//! Pairwise end-to-end network performance series (what NWS measures).

use crate::signal::Signal;
use std::collections::VecDeque;

/// One bandwidth/latency measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Virtual time of the measurement, ms.
    pub at_ms: u64,
    /// Bandwidth, Mb/s.
    pub bandwidth_mbps: f64,
    /// Latency, ms.
    pub latency_ms: f64,
}

/// Evolving performance of one directed host pair, with a bounded history
/// ring that the NWS agent forecasts from.
#[derive(Debug, Clone)]
pub struct PairPerf {
    /// Source host.
    pub src: String,
    /// Destination host.
    pub dst: String,
    bandwidth: Signal,
    latency: Signal,
    history: VecDeque<Measurement>,
    capacity: usize,
    last_ms: u64,
}

impl PairPerf {
    /// New pair with seeded signals. WAN-ish defaults: tens of Mb/s with a
    /// diurnal wave, single-digit-to-tens of ms latency.
    pub fn new(seed: u64, src: &str, dst: &str) -> PairPerf {
        let base_bw = 20.0 + (seed % 80) as f64;
        let base_lat = 5.0 + (seed % 40) as f64;
        PairPerf {
            src: src.to_owned(),
            dst: dst.to_owned(),
            bandwidth: Signal::new(seed ^ 0xBEEF, base_bw, base_bw * 0.05, 1.0, 1000.0)
                .with_wave(base_bw * 0.3, 7_200_000.0),
            latency: Signal::new(seed ^ 0xF00D, base_lat, base_lat * 0.08, 0.1, 500.0),
            history: VecDeque::new(),
            capacity: 256,
            last_ms: 0,
        }
    }

    /// Take a measurement at virtual time `t_ms` (appended to history).
    pub fn measure(&mut self, t_ms: u64) -> Measurement {
        let m = Measurement {
            at_ms: t_ms,
            bandwidth_mbps: self.bandwidth.step(t_ms),
            latency_ms: self.latency.step(t_ms),
        };
        self.last_ms = t_ms;
        if self.history.len() == self.capacity {
            self.history.pop_front();
        }
        self.history.push_back(m);
        m
    }

    /// Most recent measurement, if any.
    pub fn latest(&self) -> Option<Measurement> {
        self.history.back().copied()
    }

    /// The measurement history, oldest first.
    pub fn history(&self) -> impl Iterator<Item = &Measurement> {
        self.history.iter()
    }

    /// Number of retained measurements.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_accumulate_and_cap() {
        let mut p = PairPerf::new(1, "a", "b");
        for i in 0..300u64 {
            p.measure(i * 60_000);
        }
        assert_eq!(p.history_len(), 256);
        assert!(p.latest().unwrap().at_ms == 299 * 60_000);
    }

    #[test]
    fn values_plausible() {
        let mut p = PairPerf::new(77, "a", "b");
        for i in 0..100u64 {
            let m = p.measure(i * 10_000);
            assert!(m.bandwidth_mbps >= 1.0 && m.bandwidth_mbps <= 1000.0);
            assert!(m.latency_ms >= 0.1 && m.latency_ms <= 500.0);
        }
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut p = PairPerf::new(5, "a", "b");
            (0..50u64)
                .map(|i| p.measure(i * 1000).bandwidth_mbps)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
