//! Deterministic metric signal generators.

/// Tiny xorshift64* PRNG, duplicated from `gridrm-simnet` to keep this
/// crate dependency-free below the network layer.
#[derive(Debug, Clone)]
pub(crate) struct Rng {
    state: u64,
}

impl Rng {
    pub(crate) fn new(seed: u64) -> Self {
        Rng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub(crate) fn gaussian(&mut self) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.next_f64();
        }
        acc - 6.0
    }

    pub(crate) fn fork(&mut self, label: &str) -> Rng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Rng::new(self.next_u64() ^ h)
    }
}

/// A stateful, bounded metric signal evolving in virtual time.
///
/// The model is a mean-reverting random walk with an optional diurnal
/// sinusoid — enough structure that NWS-style forecasters have something to
/// predict, and load averages look like load averages.
#[derive(Debug, Clone)]
pub struct Signal {
    value: f64,
    mean: f64,
    /// Mean-reversion strength per step (0..1).
    reversion: f64,
    /// Gaussian step noise amplitude.
    noise: f64,
    /// Sinusoid amplitude (0 disables).
    wave_amp: f64,
    /// Sinusoid period in ms.
    wave_period_ms: f64,
    min: f64,
    max: f64,
    rng: Rng,
    /// Additive spike that decays back to 0 (for injected load spikes).
    spike: f64,
    spike_decay: f64,
}

impl Signal {
    /// A mean-reverting noisy signal clamped to `[min, max]`.
    pub fn new(seed: u64, mean: f64, noise: f64, min: f64, max: f64) -> Signal {
        Signal {
            value: mean,
            mean,
            reversion: 0.15,
            noise,
            wave_amp: 0.0,
            wave_period_ms: 1.0,
            min,
            max,
            rng: Rng::new(seed),
            spike: 0.0,
            spike_decay: 0.85,
        }
    }

    /// Builder: add a diurnal-style sinusoidal component.
    pub fn with_wave(mut self, amplitude: f64, period_ms: f64) -> Signal {
        self.wave_amp = amplitude;
        self.wave_period_ms = period_ms.max(1.0);
        self
    }

    /// Advance one step at virtual time `t_ms` and return the new value.
    pub fn step(&mut self, t_ms: u64) -> f64 {
        let wave = if self.wave_amp != 0.0 {
            self.wave_amp * (2.0 * std::f64::consts::PI * (t_ms as f64) / self.wave_period_ms).sin()
        } else {
            0.0
        };
        let target = self.mean + wave;
        self.value += (target - self.value) * self.reversion + self.rng.gaussian() * self.noise;
        self.spike *= self.spike_decay;
        (self.value + self.spike).clamp(self.min, self.max)
    }

    /// Current value without stepping.
    pub fn value(&self) -> f64 {
        (self.value + self.spike).clamp(self.min, self.max)
    }

    /// Inject an additive spike that decays over subsequent steps —
    /// used to provoke threshold events.
    pub fn inject_spike(&mut self, magnitude: f64) {
        self.spike += magnitude;
    }
}

/// A monotonically increasing counter (disk ops, NIC bytes).
#[derive(Debug, Clone)]
pub struct Counter {
    value: u64,
    /// Mean increase per second.
    rate_per_sec: f64,
    rng: Rng,
}

impl Counter {
    /// Counter with a mean rate.
    pub fn new(seed: u64, rate_per_sec: f64) -> Counter {
        Counter {
            value: 0,
            rate_per_sec,
            rng: Rng::new(seed),
        }
    }

    /// Advance by `dt_ms` of virtual time.
    pub fn step(&mut self, dt_ms: u64) -> u64 {
        let expected = self.rate_per_sec * dt_ms as f64 / 1000.0;
        let jitter = 1.0 + 0.2 * (self.rng.next_f64() - 0.5);
        self.value += (expected * jitter).max(0.0) as u64;
        self.value
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_stays_in_bounds() {
        let mut s = Signal::new(1, 0.5, 0.2, 0.0, 4.0);
        for t in 0..10_000u64 {
            let v = s.step(t * 100);
            assert!((0.0..=4.0).contains(&v), "out of bounds: {v}");
        }
    }

    #[test]
    fn signal_deterministic() {
        let run = || {
            let mut s = Signal::new(7, 1.0, 0.1, 0.0, 8.0);
            (0..100).map(|t| s.step(t * 1000)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn signal_reverts_to_mean() {
        let mut s = Signal::new(3, 2.0, 0.01, 0.0, 10.0);
        let avg: f64 = (0..5000).map(|t| s.step(t * 1000)).sum::<f64>() / 5000.0;
        assert!((avg - 2.0).abs() < 0.3, "avg {avg}");
    }

    #[test]
    fn spike_decays() {
        let mut s = Signal::new(5, 0.2, 0.0, 0.0, 100.0);
        for t in 0..10 {
            s.step(t);
        }
        let before = s.value();
        s.inject_spike(10.0);
        let spiked = s.step(11);
        assert!(spiked > before + 5.0);
        let mut v = spiked;
        for t in 12..200 {
            v = s.step(t);
        }
        assert!(v < before + 1.0, "spike failed to decay: {v}");
    }

    #[test]
    fn wave_moves_the_mean() {
        let mut s = Signal::new(9, 5.0, 0.0, 0.0, 10.0).with_wave(3.0, 1000.0);
        // At t=250ms the sine is at its crest.
        let mut crest = 0.0;
        for _ in 0..50 {
            crest = s.step(250);
        }
        assert!(crest > 6.5, "crest {crest}");
    }

    #[test]
    fn counter_monotone() {
        let mut c = Counter::new(1, 100.0);
        let mut last = 0;
        for _ in 0..100 {
            let v = c.step(500);
            assert!(v >= last);
            last = v;
        }
        // ~100/s * 50 s = ~5000 ±20%
        assert!((3500..6500).contains(&last), "count {last}");
    }
}
