//! Simulated host: static identity plus evolving metrics.

use crate::signal::{Counter, Rng, Signal};
use serde::{Deserialize, Serialize};

/// Operating system identity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OsSpec {
    /// OS name, e.g. `Linux`.
    pub name: String,
    /// Kernel/OS release, e.g. `2.4.20`.
    pub release: String,
    /// Full version string.
    pub version: String,
}

/// Static description of a simulated host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Fully qualified host name (also its simnet address).
    pub hostname: String,
    /// Owning site name.
    pub site: String,
    /// Logical CPU count.
    pub ncpu: u32,
    /// CPU clock, MHz.
    pub clock_mhz: u32,
    /// CPU model string.
    pub cpu_model: String,
    /// CPU vendor string.
    pub cpu_vendor: String,
    /// Physical memory, MB.
    pub mem_mb: u64,
    /// Swap, MB.
    pub swap_mb: u64,
    /// Operating system.
    pub os: OsSpec,
    /// Disk devices `(device, size_mb)`.
    pub disks: Vec<(String, u64)>,
    /// Mounted filesystems `(mount, device, size_mb)`.
    pub filesystems: Vec<(String, String, u64)>,
    /// Network interfaces `(name, ip, mtu)`.
    pub nics: Vec<(String, String, u32)>,
}

/// Snapshot of one disk device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskSnapshot {
    /// Device name.
    pub device: String,
    /// Capacity, MB.
    pub size_mb: u64,
    /// Cumulative read operations.
    pub read_count: u64,
    /// Cumulative write operations.
    pub write_count: u64,
}

/// Snapshot of one filesystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsSnapshot {
    /// Mount point.
    pub name: String,
    /// Backing device.
    pub root: String,
    /// Capacity, MB.
    pub size_mb: u64,
    /// Free space, MB.
    pub available_mb: u64,
    /// Mounted read-only?
    pub read_only: bool,
}

/// Snapshot of one network interface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicSnapshot {
    /// Interface name.
    pub name: String,
    /// IPv4 address.
    pub ip: String,
    /// MTU, bytes.
    pub mtu: u32,
    /// Cumulative bytes received.
    pub rx_bytes: u64,
    /// Cumulative bytes sent.
    pub tx_bytes: u64,
    /// Operational state.
    pub up: bool,
}

/// Full point-in-time view of a host — what agents serialise natively.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSnapshot {
    /// Static identity.
    pub spec: HostSpec,
    /// Virtual time of the snapshot, ms.
    pub at_ms: u64,
    /// Seconds since (virtual) boot.
    pub uptime_sec: u64,
    /// Boot time, epoch millis.
    pub boot_time_ms: i64,
    /// 1-minute load average.
    pub load1: f64,
    /// 5-minute load average.
    pub load5: f64,
    /// 15-minute load average.
    pub load15: f64,
    /// User CPU share, percent.
    pub cpu_user: f64,
    /// System CPU share, percent.
    pub cpu_system: f64,
    /// Idle CPU share, percent.
    pub cpu_idle: f64,
    /// Free physical memory, MB.
    pub mem_available_mb: u64,
    /// Free swap, MB.
    pub swap_available_mb: u64,
    /// Disks.
    pub disks: Vec<DiskSnapshot>,
    /// Filesystems.
    pub filesystems: Vec<FsSnapshot>,
    /// Interfaces.
    pub nics: Vec<NicSnapshot>,
}

/// A live simulated host. Call [`Host::advance_to`] to evolve its metrics
/// to a virtual time, then [`Host::snapshot`] to read them.
#[derive(Debug, Clone)]
pub struct Host {
    spec: HostSpec,
    last_ms: u64,
    load: Signal,
    cpu_user: Signal,
    mem_avail: Signal,
    swap_avail: Signal,
    fs_avail: Vec<Signal>,
    disk_reads: Vec<Counter>,
    disk_writes: Vec<Counter>,
    nic_rx: Vec<Counter>,
    nic_tx: Vec<Counter>,
    /// Smoothed load histories for load5/load15.
    load5: f64,
    load15: f64,
    load1_now: f64,
}

impl Host {
    /// Build a host from a spec, seeding all signals deterministically.
    pub fn new(seed: u64, spec: HostSpec) -> Host {
        let mut rng = Rng::new(seed ^ fnv(&spec.hostname));
        let max_load = spec.ncpu as f64 * 2.0;
        let base_load = 0.2 + rng.next_f64() * 0.6;
        let load = Signal::new(rng.fork("load").next_u64(), base_load, 0.08, 0.0, max_load)
            .with_wave(base_load * 0.5, 3_600_000.0);
        let cpu_user = Signal::new(rng.fork("cpu").next_u64(), 30.0, 4.0, 0.0, 95.0);
        let mem_avail = Signal::new(
            rng.fork("mem").next_u64(),
            spec.mem_mb as f64 * 0.5,
            spec.mem_mb as f64 * 0.02,
            spec.mem_mb as f64 * 0.05,
            spec.mem_mb as f64,
        );
        let swap_avail = Signal::new(
            rng.fork("swap").next_u64(),
            spec.swap_mb as f64 * 0.9,
            spec.swap_mb as f64 * 0.01,
            0.0,
            spec.swap_mb as f64,
        );
        let fs_avail = spec
            .filesystems
            .iter()
            .map(|(name, _, size)| {
                Signal::new(
                    rng.fork(name).next_u64(),
                    *size as f64 * 0.4,
                    *size as f64 * 0.005,
                    0.0,
                    *size as f64,
                )
            })
            .collect();
        let disk_reads = spec
            .disks
            .iter()
            .map(|(d, _)| Counter::new(rng.fork(d).next_u64(), 50.0))
            .collect();
        let disk_writes = spec
            .disks
            .iter()
            .map(|(d, _)| Counter::new(rng.fork(d).next_u64() ^ 1, 30.0))
            .collect();
        let nic_rx = spec
            .nics
            .iter()
            .map(|(n, _, _)| Counter::new(rng.fork(n).next_u64(), 200_000.0))
            .collect();
        let nic_tx = spec
            .nics
            .iter()
            .map(|(n, _, _)| Counter::new(rng.fork(n).next_u64() ^ 2, 150_000.0))
            .collect();
        Host {
            spec,
            last_ms: 0,
            load,
            cpu_user,
            mem_avail,
            swap_avail,
            fs_avail,
            disk_reads,
            disk_writes,
            nic_rx,
            nic_tx,
            load5: base_load,
            load15: base_load,
            load1_now: base_load,
        }
    }

    /// The static identity.
    pub fn spec(&self) -> &HostSpec {
        &self.spec
    }

    /// Evolve metrics up to virtual time `t_ms`. Steps are quantised to
    /// 1-second ticks so advancing by large deltas stays cheap and the
    /// series is independent of how the advancement is chunked.
    pub fn advance_to(&mut self, t_ms: u64) {
        const TICK_MS: u64 = 1000;
        // Cap the number of catch-up ticks so a huge virtual jump costs a
        // bounded amount of work; the signals are mean-reverting, so the
        // distant past doesn't matter.
        let mut steps = (t_ms.saturating_sub(self.last_ms)) / TICK_MS;
        if steps > 600 {
            steps = 600;
        }
        for i in 0..steps {
            let t = self.last_ms + (i + 1) * TICK_MS;
            self.load1_now = self.load.step(t);
            self.load5 += (self.load1_now - self.load5) / 5.0;
            self.load15 += (self.load1_now - self.load15) / 15.0;
            self.cpu_user.step(t);
            self.mem_avail.step(t);
            self.swap_avail.step(t);
            for s in &mut self.fs_avail {
                s.step(t);
            }
            for c in self.disk_reads.iter_mut().chain(&mut self.disk_writes) {
                c.step(TICK_MS);
            }
            for c in self.nic_rx.iter_mut().chain(&mut self.nic_tx) {
                c.step(TICK_MS);
            }
        }
        if t_ms > self.last_ms {
            self.last_ms = t_ms;
        }
    }

    /// Provoke a load spike (decays over ~10 virtual seconds) — used to
    /// trigger threshold events.
    pub fn inject_load_spike(&mut self, magnitude: f64) {
        self.load.inject_spike(magnitude);
    }

    /// Read the current state.
    pub fn snapshot(&self) -> HostSnapshot {
        let spec = self.spec.clone();
        let cpu_user = self.cpu_user.value();
        let cpu_system = (cpu_user * 0.3).min(100.0 - cpu_user);
        let cpu_idle = (100.0 - cpu_user - cpu_system).max(0.0);
        HostSnapshot {
            at_ms: self.last_ms,
            uptime_sec: self.last_ms / 1000,
            boot_time_ms: 0,
            load1: self.load1_now,
            load5: self.load5,
            load15: self.load15,
            cpu_user,
            cpu_system,
            cpu_idle,
            mem_available_mb: self.mem_avail.value() as u64,
            swap_available_mb: self.swap_avail.value() as u64,
            disks: spec
                .disks
                .iter()
                .enumerate()
                .map(|(i, (device, size))| DiskSnapshot {
                    device: device.clone(),
                    size_mb: *size,
                    read_count: self.disk_reads[i].value(),
                    write_count: self.disk_writes[i].value(),
                })
                .collect(),
            filesystems: spec
                .filesystems
                .iter()
                .enumerate()
                .map(|(i, (name, root, size))| FsSnapshot {
                    name: name.clone(),
                    root: root.clone(),
                    size_mb: *size,
                    available_mb: self.fs_avail[i].value() as u64,
                    read_only: name == "/boot",
                })
                .collect(),
            nics: spec
                .nics
                .iter()
                .enumerate()
                .map(|(i, (name, ip, mtu))| NicSnapshot {
                    name: name.clone(),
                    ip: ip.clone(),
                    mtu: *mtu,
                    rx_bytes: self.nic_rx[i].value(),
                    tx_bytes: self.nic_tx[i].value(),
                    up: true,
                })
                .collect(),
            spec,
        }
    }
}

pub(crate) fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A plausible default host spec for tests and site generation.
pub fn default_spec(site: &str, hostname: &str, ncpu: u32) -> HostSpec {
    HostSpec {
        hostname: hostname.to_owned(),
        site: site.to_owned(),
        ncpu,
        clock_mhz: 2400,
        cpu_model: "Xeon".to_owned(),
        cpu_vendor: "GenuineIntel".to_owned(),
        mem_mb: 2048,
        swap_mb: 4096,
        os: OsSpec {
            name: "Linux".to_owned(),
            release: "2.4.20".to_owned(),
            version: "#1 SMP".to_owned(),
        },
        disks: vec![("sda".to_owned(), 80_000)],
        filesystems: vec![
            ("/".to_owned(), "sda1".to_owned(), 60_000),
            ("/boot".to_owned(), "sda2".to_owned(), 512),
        ],
        nics: vec![("eth0".to_owned(), derive_ip(hostname), 1500)],
    }
}

fn derive_ip(hostname: &str) -> String {
    let h = fnv(hostname);
    format!(
        "10.{}.{}.{}",
        (h >> 16) & 0xff,
        (h >> 8) & 0xff,
        (h & 0xfe) + 1
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> Host {
        Host::new(42, default_spec("site-a", "node01.site-a", 4))
    }

    #[test]
    fn snapshot_matches_spec_shape() {
        let mut h = host();
        h.advance_to(10_000);
        let s = h.snapshot();
        assert_eq!(s.spec.hostname, "node01.site-a");
        assert_eq!(s.disks.len(), 1);
        assert_eq!(s.filesystems.len(), 2);
        assert_eq!(s.nics.len(), 1);
        assert_eq!(s.uptime_sec, 10);
    }

    #[test]
    fn metrics_evolve_deterministically() {
        let series = |seed| {
            let mut h = Host::new(seed, default_spec("s", "n", 4));
            (1..=20)
                .map(|i| {
                    h.advance_to(i * 5000);
                    h.snapshot().load1
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(series(42), series(42));
        assert_ne!(series(42), series(43));
    }

    #[test]
    fn counters_are_monotone() {
        let mut h = host();
        let mut last_rx = 0;
        for i in 1..=10 {
            h.advance_to(i * 2000);
            let rx = h.snapshot().nics[0].rx_bytes;
            assert!(rx >= last_rx);
            last_rx = rx;
        }
        assert!(last_rx > 0);
    }

    #[test]
    fn cpu_shares_sum_to_100() {
        let mut h = host();
        h.advance_to(60_000);
        let s = h.snapshot();
        let sum = s.cpu_user + s.cpu_system + s.cpu_idle;
        assert!((sum - 100.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn load_spike_raises_then_decays() {
        let mut h = host();
        h.advance_to(30_000);
        let base = h.snapshot().load1;
        h.inject_load_spike(5.0);
        h.advance_to(31_000);
        assert!(h.snapshot().load1 > base + 2.0);
        h.advance_to(120_000);
        assert!(h.snapshot().load1 < base + 1.0);
    }

    #[test]
    fn advance_is_idempotent_for_same_time() {
        let mut h = host();
        h.advance_to(10_000);
        let a = h.snapshot();
        h.advance_to(10_000); // no time passed
        let b = h.snapshot();
        assert_eq!(a.load1, b.load1);
    }

    #[test]
    fn huge_jump_is_bounded() {
        let mut h = host();
        let t0 = std::time::Instant::now();
        h.advance_to(86_400_000 * 30); // 30 virtual days
        assert!(t0.elapsed().as_millis() < 500);
        assert!(h.snapshot().uptime_sec > 0);
    }

    #[test]
    fn derived_ips_valid_and_stable() {
        let a = derive_ip("node01");
        assert_eq!(a, derive_ip("node01"));
        assert_ne!(a, derive_ip("node02"));
        assert_eq!(a.split('.').count(), 4);
    }
}
