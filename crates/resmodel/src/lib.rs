#![warn(missing_docs)]

//! # gridrm-resmodel — deterministic simulated resources
//!
//! The paper monitors real machines through their local agents. This crate
//! is the substitution for those machines: seeded, deterministic models of
//! hosts, clusters and pairwise network performance whose metrics evolve
//! plausibly over virtual time. Every agent in `gridrm-agents` reads its
//! data from here, so:
//!
//! * the *same* underlying truth is visible through SNMP, Ganglia, NWS,
//!   NetLogger and SCMS — which is exactly what makes the GLUE
//!   normalisation experiment (E11) meaningful;
//! * experiments are reproducible: a seed fully determines every series;
//! * threshold events can be provoked on demand ([`SiteModel::inject_load_spike`])
//!   to exercise the Event Manager.

pub mod host;
pub mod netperf;
pub mod signal;
pub mod site;

pub use host::{DiskSnapshot, FsSnapshot, Host, HostSnapshot, HostSpec, NicSnapshot, OsSpec};
pub use netperf::{Measurement, PairPerf};
pub use signal::Signal;
pub use site::{SiteModel, SiteSpec};
