//! A whole simulated Grid site: a cluster of hosts plus pairwise network
//! performance, behind one thread-safe facade the agents read from.

use crate::host::{default_spec, Host, HostSnapshot, HostSpec};
use crate::netperf::{Measurement, PairPerf};
use crate::signal::Rng;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Parameters for generating a site.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Site name, e.g. `site-a`.
    pub name: String,
    /// Number of worker hosts.
    pub hosts: usize,
    /// CPUs per host.
    pub ncpu: u32,
    /// Measure network performance against these peer hosts (other sites'
    /// head nodes, for NWS-style monitoring).
    pub peers: Vec<String>,
}

impl SiteSpec {
    /// A site with `hosts` × `ncpu`-CPU nodes and no remote peers.
    pub fn new(name: &str, hosts: usize, ncpu: u32) -> SiteSpec {
        SiteSpec {
            name: name.to_owned(),
            hosts,
            ncpu,
            peers: Vec::new(),
        }
    }
}

struct Inner {
    hosts: Vec<Host>,
    pairs: Vec<PairPerf>,
    last_ms: u64,
}

/// Thread-safe simulated site shared by all of the site's agents.
pub struct SiteModel {
    name: String,
    inner: Mutex<Inner>,
    index: HashMap<String, usize>,
}

impl SiteModel {
    /// Generate a site deterministically from a seed.
    pub fn generate(seed: u64, spec: &SiteSpec) -> Arc<SiteModel> {
        let mut rng = Rng::new(seed ^ crate::host::fnv(&spec.name));
        let mut hosts = Vec::with_capacity(spec.hosts);
        let mut index = HashMap::new();
        for i in 0..spec.hosts {
            let hostname = format!("node{:02}.{}", i, spec.name);
            let host_spec = default_spec(&spec.name, &hostname, spec.ncpu);
            index.insert(hostname, hosts.len());
            hosts.push(Host::new(rng.next_u64(), host_spec));
        }
        // Pairwise perf: head node (node00) to each peer, both directions.
        let mut pairs = Vec::new();
        if !hosts.is_empty() {
            let head = hosts[0].spec().hostname.clone();
            for peer in &spec.peers {
                pairs.push(PairPerf::new(rng.next_u64(), &head, peer));
                pairs.push(PairPerf::new(rng.next_u64(), peer, &head));
            }
            // And between the first few local hosts (intra-site links).
            for other_host in hosts.iter().take(4).skip(1) {
                let other = other_host.spec().hostname.clone();
                pairs.push(PairPerf::new(rng.next_u64(), &head, &other));
            }
        }
        Arc::new(SiteModel {
            name: spec.name.clone(),
            inner: Mutex::new(Inner {
                hosts,
                pairs,
                last_ms: 0,
            }),
            index,
        })
    }

    /// The site's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Host names, in node order.
    pub fn hostnames(&self) -> Vec<String> {
        let inner = self.inner.lock();
        inner
            .hosts
            .iter()
            .map(|h| h.spec().hostname.clone())
            .collect()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.index.len()
    }

    /// Advance the whole site to virtual time `t_ms`, taking a network
    /// measurement per pair every 60 virtual seconds.
    pub fn advance_to(&self, t_ms: u64) {
        let mut inner = self.inner.lock();
        for h in &mut inner.hosts {
            h.advance_to(t_ms);
        }
        let last = inner.last_ms;
        if t_ms > last {
            // One measurement per started 60 s interval, capped.
            let intervals = (((t_ms - last) / 60_000) + 1).min(16);
            for k in 0..intervals {
                let t = last + (k + 1) * ((t_ms - last) / intervals.max(1)).max(1);
                for p in &mut inner.pairs {
                    // xlint: allow(lock-order) -- PairLink::measure is lock-free; the name-based call graph confuses it with the agents' NWS measure
                    p.measure(t.min(t_ms));
                }
            }
            inner.last_ms = t_ms;
        }
    }

    /// Snapshot one host by name.
    pub fn host_snapshot(&self, hostname: &str) -> Option<HostSnapshot> {
        let idx = *self.index.get(hostname)?;
        let inner = self.inner.lock();
        Some(inner.hosts[idx].snapshot())
    }

    /// Snapshot every host.
    pub fn all_snapshots(&self) -> Vec<HostSnapshot> {
        let inner = self.inner.lock();
        inner.hosts.iter().map(Host::snapshot).collect()
    }

    /// Static spec of one host.
    pub fn host_spec(&self, hostname: &str) -> Option<HostSpec> {
        let idx = *self.index.get(hostname)?;
        Some(self.inner.lock().hosts[idx].spec().clone())
    }

    /// Inject a load spike into one host (threshold-event fuel).
    pub fn inject_load_spike(&self, hostname: &str, magnitude: f64) -> bool {
        let Some(&idx) = self.index.get(hostname) else {
            return false;
        };
        self.inner.lock().hosts[idx].inject_load_spike(magnitude);
        true
    }

    /// Latest measurement for every monitored pair.
    pub fn pair_latest(&self) -> Vec<(String, String, Measurement)> {
        let inner = self.inner.lock();
        inner
            .pairs
            .iter()
            .filter_map(|p| p.latest().map(|m| (p.src.clone(), p.dst.clone(), m)))
            .collect()
    }

    /// Full history for one directed pair, oldest first.
    pub fn pair_history(&self, src: &str, dst: &str) -> Vec<Measurement> {
        let inner = self.inner.lock();
        inner
            .pairs
            .iter()
            .find(|p| p.src == src && p.dst == dst)
            .map(|p| p.history().copied().collect())
            .unwrap_or_default()
    }

    /// All monitored `(src, dst)` pairs.
    pub fn pair_names(&self) -> Vec<(String, String)> {
        let inner = self.inner.lock();
        inner
            .pairs
            .iter()
            .map(|p| (p.src.clone(), p.dst.clone()))
            .collect()
    }

    /// Site-level compute summary derived from host state: a host with
    /// `load1 < 0.75 * ncpu` contributes free CPUs.
    pub fn compute_summary(&self) -> (u32, u32, u32, u32) {
        let inner = self.inner.lock();
        let mut total = 0u32;
        let mut free = 0u32;
        let mut running = 0u32;
        for h in &inner.hosts {
            let s = h.snapshot();
            total += s.spec.ncpu;
            let busy = s.load1.round().min(s.spec.ncpu as f64) as u32;
            running += busy;
            free += s.spec.ncpu - busy;
        }
        let waiting = running / 4;
        (total, free, running, waiting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> Arc<SiteModel> {
        let mut spec = SiteSpec::new("site-a", 4, 4);
        spec.peers = vec!["node00.site-b".to_owned()];
        SiteModel::generate(42, &spec)
    }

    #[test]
    fn generation_shape() {
        let s = site();
        assert_eq!(s.host_count(), 4);
        let names = s.hostnames();
        assert_eq!(names[0], "node00.site-a");
        assert!(s.host_spec("node03.site-a").is_some());
        assert!(s.host_spec("node04.site-a").is_none());
    }

    #[test]
    fn advance_and_snapshot() {
        let s = site();
        s.advance_to(120_000);
        let snap = s.host_snapshot("node01.site-a").unwrap();
        assert_eq!(snap.uptime_sec, 120);
        assert!(snap.load1 >= 0.0);
        assert_eq!(s.all_snapshots().len(), 4);
    }

    #[test]
    fn pair_measurements_accumulate() {
        let s = site();
        s.advance_to(600_000); // 10 minutes
        let pairs = s.pair_latest();
        assert!(!pairs.is_empty());
        let (src, dst) = (&pairs[0].0, &pairs[0].1);
        let hist = s.pair_history(src, dst);
        assert!(hist.len() >= 2, "history {}", hist.len());
    }

    #[test]
    fn spike_injection_via_site() {
        let s = site();
        s.advance_to(60_000);
        let before = s.host_snapshot("node02.site-a").unwrap().load1;
        assert!(s.inject_load_spike("node02.site-a", 6.0));
        s.advance_to(61_000);
        let after = s.host_snapshot("node02.site-a").unwrap().load1;
        assert!(after > before + 2.0, "{before} -> {after}");
        assert!(!s.inject_load_spike("ghost", 1.0));
    }

    #[test]
    fn compute_summary_consistent() {
        let s = site();
        s.advance_to(60_000);
        let (total, free, running, _waiting) = s.compute_summary();
        assert_eq!(total, 16);
        assert_eq!(free + running, total);
    }

    #[test]
    fn deterministic_generation() {
        let a = site().all_snapshots();
        let b = site().all_snapshots();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].spec, b[0].spec);
    }

    #[test]
    fn concurrent_readers_and_advancer() {
        let s = site();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 1..=50 {
                    s.advance_to(i * 1000);
                }
            });
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let _ = s.host_snapshot("node00.site-a");
                        let _ = s.pair_latest();
                    }
                });
            }
        });
    }
}
