//! Property tests for gateway components: Event Manager ordering and
//! loss-freedom, cache laws, session laws, alert-rule consistency.

use gridrm_core::alerts::{AlertEngine, AlertRule, Comparison};
use gridrm_core::cache::CacheController;
use gridrm_core::events::{EventManager, GridRMEvent, ListenerFilter, Severity};
use gridrm_core::security::Identity;
use gridrm_core::session::SessionManager;
use gridrm_dbc::{ColumnMeta, ResultSetMetaData, RowSet};
use gridrm_sqlparse::{SqlType, SqlValue};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_severity() -> impl Strategy<Value = Severity> {
    prop::sample::select(vec![Severity::Info, Severity::Warning, Severity::Critical])
}

fn arb_event() -> impl Strategy<Value = GridRMEvent> {
    (
        "[a-z]{1,6}(\\.[a-z]{1,6}){0,2}",
        arb_severity(),
        prop::option::of(-1e6f64..1e6),
    )
        .prop_map(|(category, severity, value)| GridRMEvent {
            id: 0,
            at_ms: 0,
            source: "prop:snmp".into(),
            hostname: None,
            severity,
            category,
            message: String::new(),
            value,
        })
}

proptest! {
    /// Whatever the burst size and buffer capacity, dispatch returns every
    /// ingested event exactly once, in id order, and matching listeners
    /// receive exactly the matching subset.
    #[test]
    fn event_manager_loss_free_and_ordered(
        events in prop::collection::vec(arb_event(), 0..200),
        capacity in 1usize..64,
        min_sev in arb_severity(),
    ) {
        let manager = EventManager::new(capacity);
        let (_, all_rx) = manager.register_listener(ListenerFilter::default());
        let (_, sev_rx) = manager.register_listener(ListenerFilter {
            min_severity: Some(min_sev),
            ..Default::default()
        });
        for e in &events {
            manager.ingest(e.clone());
        }
        let dispatched = manager.dispatch();
        prop_assert_eq!(dispatched.len(), events.len());
        for (i, e) in dispatched.iter().enumerate() {
            prop_assert_eq!(e.id, i as u64 + 1);
            prop_assert_eq!(&e.category, &events[i].category);
        }
        prop_assert_eq!(all_rx.try_iter().count(), events.len());
        let expected_sev = events.iter().filter(|e| e.severity >= min_sev).count();
        prop_assert_eq!(sev_rx.try_iter().count(), expected_sev);
        prop_assert_eq!(manager.backlog(), 0);
    }

    /// Cache: an entry is served iff its age is within the requested
    /// bound; invalidation by source is exact.
    #[test]
    fn cache_age_law(
        stored_at in 0u64..100_000,
        now_delta in 0u64..100_000,
        max_age in 0u64..100_000,
    ) {
        let cache = CacheController::new(10_000);
        let rows = Arc::new(RowSet::empty(ResultSetMetaData::new(vec![ColumnMeta::new(
            "x",
            SqlType::Int,
        )])));
        cache.store("src", "q", rows, stored_at);
        let now = stored_at + now_delta;
        let hit = cache.lookup("src", "q", now, Some(max_age)).is_some();
        prop_assert_eq!(hit, now_delta <= max_age);
    }

    /// Sessions: resolvable strictly within TTL of the last touch, never
    /// after; close is final.
    #[test]
    fn session_ttl_law(ttl in 1u64..10_000, touches in prop::collection::vec(1u64..5_000, 0..6)) {
        let m = SessionManager::new(ttl);
        let t0 = 0u64;
        let token = m.open(Identity::anonymous(), t0);
        let mut now = t0;
        let mut alive = true;
        for gap in touches {
            now += gap;
            let got = m.resolve(token, now).is_some();
            let expected = alive && gap <= ttl;
            prop_assert_eq!(got, expected, "gap {} ttl {}", gap, ttl);
            alive = got;
        }
        if alive {
            prop_assert!(m.resolve(token, now + ttl + 1).is_none());
        }
        let _ = m.close(token); // close never panics
    }

    /// Alert rules fire on exactly the rows a manual scan selects,
    /// regardless of comparison operator.
    #[test]
    fn alert_rule_exactness(
        values in prop::collection::vec(prop::option::of(-100.0f64..100.0), 0..30),
        threshold in -100.0f64..100.0,
        cmp in prop::sample::select(vec![
            Comparison::Gt,
            Comparison::Ge,
            Comparison::Lt,
            Comparison::Le,
        ]),
    ) {
        let engine = AlertEngine::new();
        engine.add_rule(AlertRule {
            name: "r".into(),
            group: "G".into(),
            attr: "V".into(),
            cmp,
            threshold,
            severity: Severity::Warning,
            category: "c".into(),
        });
        let rows: Vec<Vec<SqlValue>> = values
            .iter()
            .map(|v| vec![SqlValue::from(*v)])
            .collect();
        let rs = RowSet::new(
            ResultSetMetaData::new(vec![ColumnMeta::new("V", SqlType::Float)]),
            rows,
        )
        .unwrap();
        let fired = engine.scan("s", "G", &rs, 0).len();
        let expected = values
            .iter()
            .flatten()
            .filter(|v| match cmp {
                Comparison::Gt => **v > threshold,
                Comparison::Ge => **v >= threshold,
                Comparison::Lt => **v < threshold,
                Comparison::Le => **v <= threshold,
                Comparison::Eq => (**v - threshold).abs() < f64::EPSILON,
            })
            .count();
        prop_assert_eq!(fired, expected);
    }
}
