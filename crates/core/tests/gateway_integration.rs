//! End-to-end Local-layer integration: simulated site, agents, gateway
//! and the standard drivers, exercising the paper's Fig 3 query path, the
//! Fig 4 event path, caching (§4), history (§3.1.1), failure policies (§4)
//! and the admin tree view (Fig 9).

use gridrm_agents::deploy_site;
use gridrm_core::{
    AlertRule, ClientRequest, Comparison, DataSourceConfig, Gateway, GatewayConfig, Identity,
    ListenerFilter, Severity, SourceStatus,
};
use gridrm_drivers::install_into_gateway;
use gridrm_resmodel::{SiteModel, SiteSpec};
use gridrm_simnet::{Network, SimClock};
use gridrm_sqlparse::SqlValue;
use std::sync::Arc;

struct World {
    net: Arc<Network>,
    site: Arc<SiteModel>,
    agents: gridrm_agents::SiteAgents,
    gateway: Arc<Gateway>,
}

fn world() -> World {
    let net = Network::new(SimClock::new(), 99);
    let mut spec = SiteSpec::new("alpha", 4, 4);
    spec.peers = vec!["node00.beta".to_owned()];
    let site = SiteModel::generate(1234, &spec);
    site.advance_to(120_000);
    let agents = deploy_site(&net, site.clone());
    let gateway = Gateway::new(GatewayConfig::new("gw-alpha", "alpha"), net.clone());
    install_into_gateway(&gateway);
    World {
        net,
        site,
        agents,
        gateway,
    }
}

#[test]
fn realtime_query_through_full_stack() {
    let w = world();
    let resp = w
        .gateway
        .query(&ClientRequest::realtime(
            "jdbc:snmp://node01.alpha/public",
            "SELECT Hostname, NCpu, Load1 FROM Processor",
        ))
        .unwrap();
    assert_eq!(resp.rows.len(), 1);
    assert_eq!(resp.sources_ok, 1);
    assert!(resp.warnings.is_empty());
    assert_eq!(resp.rows.rows()[0][0], SqlValue::Str("node01.alpha".into()));
}

#[test]
fn multi_source_consolidation() {
    let w = world();
    let sources: Vec<String> = (0..4)
        .map(|i| format!("jdbc:snmp://node{i:02}.alpha/public"))
        .collect();
    let src_refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let resp = w
        .gateway
        .query(
            &ClientRequest::builder("SELECT Hostname, Load1 FROM Processor")
                .sources(&src_refs)
                .build(),
        )
        .unwrap();
    // "The RequestManager coordinates queries across multiple data sources
    // and consolidates results" (§3.1.1): one row per host, one result.
    assert_eq!(resp.rows.len(), 4);
    assert_eq!(resp.sources_ok, 4);
}

#[test]
fn cached_mode_limits_intrusion() {
    let w = world();
    let source = "jdbc:ganglia://node00.alpha/alpha";
    let sql = "SELECT Hostname, Load1 FROM Processor";
    // Prime.
    w.gateway
        .query(&ClientRequest::realtime(source, sql))
        .unwrap();
    let served_before = w
        .net
        .endpoint_stats("node00.alpha:ganglia")
        .unwrap()
        .snapshot()
        .requests_served;
    // 50 cached reads: zero additional agent traffic (§4's scalability).
    for _ in 0..50 {
        let resp = w
            .gateway
            .query(&ClientRequest::cached(source, sql, None))
            .unwrap();
        assert_eq!(resp.served_from_cache, 1);
    }
    let served_after = w
        .net
        .endpoint_stats("node00.alpha:ganglia")
        .unwrap()
        .snapshot()
        .requests_served;
    assert_eq!(served_after, served_before);

    // Explicit real-time poll refreshes (Fig 9's "explicitly poll").
    let resp = w
        .gateway
        .query(&ClientRequest::realtime(source, sql))
        .unwrap();
    assert_eq!(resp.served_from_cache, 0);
}

#[test]
fn history_accumulates_and_is_queryable() {
    let w = world();
    let source = "jdbc:snmp://node02.alpha/public";
    for step in 1..=5u64 {
        w.site.advance_to(120_000 + step * 30_000);
        w.gateway
            .query(&ClientRequest::realtime(
                source,
                "SELECT Hostname, Load1 FROM Processor",
            ))
            .unwrap();
    }
    let resp = w
        .gateway
        .query(&ClientRequest::historical(
            "SELECT COUNT(*) AS n FROM history WHERE attr = 'Load1'",
        ))
        .unwrap();
    assert_eq!(resp.rows.rows()[0][0], SqlValue::Int(5));
    // Series helper (Fig 9's plotting hook).
    let series = w
        .gateway
        .history()
        .series(source, "Processor", "node02.alpha", "Load1")
        .unwrap();
    assert_eq!(series.len(), 5);
}

#[test]
fn trap_to_listener_pipeline() {
    let w = world();
    // Arm the SNMP agents to trap to this gateway.
    for agent in &w.agents.snmp {
        agent.set_trap_sink(w.net.clone(), "gw.alpha", 3.0);
    }
    let (_, rx) = w.gateway.events().register_listener(ListenerFilter {
        category_prefix: Some("cpu.".into()),
        ..Default::default()
    });
    // Provoke a spike on one host and pump.
    w.site.inject_load_spike("node03.alpha", 12.0);
    w.site.advance_to(121_000);
    let (traps, _) = w.agents.pump();
    assert_eq!(traps, 1);
    let dispatched = w.gateway.pump();
    assert!(dispatched >= 1);
    let event = rx.try_recv().expect("listener got the trap");
    assert_eq!(event.category, "cpu.load.high");
    assert_eq!(event.hostname.as_deref(), Some("node03.alpha"));
    assert_eq!(event.severity, Severity::Critical);
    // Recorded for historical analysis (§3.1.5).
    let resp = w
        .gateway
        .query(&ClientRequest::historical(
            "SELECT COUNT(*) FROM events WHERE category = 'cpu.load.high'",
        ))
        .unwrap();
    assert_eq!(resp.rows.rows()[0][0], SqlValue::Int(1));
}

#[test]
fn threshold_alerts_from_queries() {
    let w = world();
    w.gateway.alerts().add_rule(AlertRule {
        name: "mem-low".into(),
        group: "MainMemory".into(),
        attr: "RAMAvailableMB".into(),
        cmp: Comparison::Lt,
        threshold: 100_000.0, // generous: always fires
        severity: Severity::Warning,
        category: "mem.low".into(),
    });
    let (_, rx) = w
        .gateway
        .events()
        .register_listener(ListenerFilter::default());
    w.gateway
        .query(&ClientRequest::realtime(
            "jdbc:snmp://node00.alpha/public",
            "SELECT Hostname, RAMAvailableMB FROM MainMemory",
        ))
        .unwrap();
    w.gateway.pump();
    let event = rx.try_recv().expect("alert fired");
    assert_eq!(event.category, "mem.low");
}

#[test]
fn failover_to_another_driver_when_agent_dies() {
    let w = world();
    // A wildcard source on the head node: SNMP normally wins the scan.
    let source = "jdbc:://node00.alpha/public";
    let sql = "SELECT Hostname, Load1 FROM Processor WHERE Hostname = 'node00.alpha'";
    let resp = w
        .gateway
        .query(&ClientRequest::realtime(source, sql))
        .unwrap();
    assert_eq!(resp.rows.len(), 1);
    let url = gridrm_dbc::JdbcUrl::parse(source).unwrap();
    assert_eq!(
        w.gateway.driver_manager().cached_driver(&url).as_deref(),
        Some("jdbc-snmp")
    );
    // Kill the SNMP agent: TryNext reroutes (Ganglia can answer Processor
    // for the whole cluster; the WHERE keeps the same row).
    w.net.set_down("node00.alpha:snmp", true);
    let resp = w
        .gateway
        .query(&ClientRequest::realtime(source, sql))
        .unwrap();
    assert_eq!(resp.rows.len(), 1);
    assert_eq!(
        w.gateway.driver_manager().cached_driver(&url).as_deref(),
        Some("jdbc-ganglia")
    );
}

#[test]
fn security_layers_enforced() {
    let w = world();
    w.gateway
        .set_security_policy(gridrm_core::SecurityPolicy::strict().with_rule(
            gridrm_core::security::AclRule {
                role: "monitor".into(),
                url_prefix: "jdbc:snmp://".into(),
                group: "Processor".into(),
                allow: true,
            },
        ));
    let source = "jdbc:snmp://node00.alpha/public";
    let sql = "SELECT Hostname FROM Processor";
    // Anonymous: coarse denial.
    assert!(w
        .gateway
        .query(&ClientRequest::realtime(source, sql))
        .is_err());
    // Authorised role via a session.
    let token = w.gateway.login(Identity::new("alice", &["monitor"]));
    let resp = w
        .gateway
        .query(&ClientRequest::realtime(source, sql).with_token(token))
        .unwrap();
    assert_eq!(resp.rows.len(), 1);
    // Fine-grained: same identity, disallowed group.
    let err = w
        .gateway
        .query(
            &ClientRequest::realtime(source, "SELECT Hostname FROM MainMemory").with_token(token),
        )
        .err()
        .unwrap();
    assert!(matches!(err, gridrm_dbc::SqlError::Security(_)));
}

#[test]
fn admin_tree_view_reflects_health() {
    let w = world();
    let up = "jdbc:snmp://node00.alpha/public";
    let down = "jdbc:snmp://node01.alpha/public";
    w.gateway
        .admin()
        .add_source(DataSourceConfig::dynamic(up, "node00"))
        .unwrap();
    w.gateway
        .admin()
        .add_source(DataSourceConfig::dynamic(down, "node01"))
        .unwrap();
    w.gateway
        .query(&ClientRequest::realtime(
            up,
            "SELECT Hostname FROM Processor",
        ))
        .unwrap();
    w.net.set_down("node01.alpha:snmp", true);
    // With Report policy the failure surfaces and is recorded.
    let url = gridrm_dbc::JdbcUrl::parse(down).unwrap();
    w.gateway
        .driver_manager()
        .set_policy(&url, gridrm_core::FailurePolicy::Report);
    assert!(w
        .gateway
        .query(&ClientRequest::realtime(
            down,
            "SELECT Hostname FROM Processor"
        ))
        .is_err());

    let tree = w
        .gateway
        .admin()
        .tree_view(w.gateway.clock().now_millis(), 60_000);
    let status = |u: &str| tree.iter().find(|n| n.source == u).unwrap().status;
    assert_eq!(status(up), SourceStatus::Ok);
    assert_eq!(status(down), SourceStatus::PollFailed);
    // The healthy node's cached queries appear in its tree node.
    assert!(!tree
        .iter()
        .find(|n| n.source == up)
        .unwrap()
        .cached
        .is_empty());
}

#[test]
fn dml_rejected_at_the_acil() {
    let w = world();
    let err = w
        .gateway
        .query(&ClientRequest::realtime(
            "jdbc:gridrm://local/history",
            "DELETE FROM history",
        ))
        .err()
        .unwrap();
    assert!(matches!(err, gridrm_dbc::SqlError::Unsupported(_)));
}

#[test]
fn glue_homogeneity_across_all_five_agents() {
    // The headline claim (§1): one SQL query, five heterogeneous agents,
    // one homogeneous answer shape.
    let w = world();
    let sql = "SELECT Hostname, Load1 FROM Processor WHERE Hostname = 'node01.alpha'";
    for source in [
        "jdbc:snmp://node01.alpha/public",
        "jdbc:ganglia://node00.alpha/alpha",
        "jdbc:scms://node00.alpha/",
    ] {
        let resp = w
            .gateway
            .query(&ClientRequest::realtime(source, sql))
            .unwrap();
        assert_eq!(resp.rows.len(), 1, "via {source}");
        assert_eq!(resp.rows.meta().column_name(0).unwrap(), "Hostname");
        assert_eq!(resp.rows.meta().column_name(1).unwrap(), "Load1");
    }
    // NWS speaks NetworkElement, NetLogger speaks Event — same mechanism.
    w.agents.pump();
    let resp = w
        .gateway
        .query(&ClientRequest::realtime(
            "jdbc:nws://node00.alpha/perf",
            "SELECT SourceHost, DestHost, BandwidthMbps FROM NetworkElement",
        ))
        .unwrap();
    assert!(resp.rows.len() >= 2);
    let resp = w
        .gateway
        .query(&ClientRequest::realtime(
            "jdbc:netlogger://node00.alpha/log",
            "SELECT Hostname, Category, Value FROM Event WHERE Category = 'cpu.load'",
        ))
        .unwrap();
    assert_eq!(resp.rows.len(), 4); // one per host
}

#[test]
fn pump_housekeeping_sweeps_cache_sessions_and_history() {
    let w = world();
    let source = "jdbc:snmp://node00.alpha/public";
    let sql = "SELECT Hostname, Load1 FROM Processor";
    w.gateway
        .query(&ClientRequest::realtime(source, sql))
        .unwrap();
    assert_eq!(w.gateway.cache().len(), 1);
    let token = w.gateway.login(Identity::anonymous());

    // Far beyond cache sweep age (10× TTL), session TTL and the history
    // retention window.
    let jump = w.gateway.config().history_retention_ms + 1_000_000;
    w.gateway.clock().advance(jump);
    w.gateway.pump();

    assert_eq!(w.gateway.cache().len(), 0, "stale cache entry survived");
    assert!(
        w.gateway
            .sessions()
            .resolve(token, w.gateway.clock().now_millis())
            .is_none(),
        "expired session survived"
    );
    let resp = w
        .gateway
        .query(&ClientRequest::historical("SELECT COUNT(*) FROM history"))
        .unwrap();
    assert_eq!(
        resp.rows.rows()[0][0],
        SqlValue::Int(0),
        "history not trimmed"
    );
}
