//! Continuous queries and streaming subscriptions — the live
//! observability plane.
//!
//! R-GMA's split of monitoring into *latest-state*, *history* and
//! *continuous* queries names the gap the paper's Event Manager (§3.1.5)
//! points at: everything else in the gateway is pull/request-at-a-time.
//! This module adds the third leg. `SELECT … EVERY n` (or the
//! programmatic [`crate::acil::QueryBuilder::subscribe`]) registers a
//! **standing query** on the gateway; `Gateway::pump` re-evaluates it on
//! its cadence (or sooner when an agent update arrives for one of its
//! sources) and diffs the result against the previous emission with
//! [`gridrm_store::DeltaTracker`]. Only the *changed rows* — the delta —
//! fan out to subscribers, each behind a bounded buffer with a
//! configurable [`BackpressurePolicy`]. Identical standing queries are
//! deduplicated: 10 000 subscribers to one query cost one evaluation per
//! tick, not 10 000 re-polls.

use crate::acil::ClientRequest;
use gridrm_dbc::{DbcResult, RowSet, SqlError};
use gridrm_sqlparse::Statement;
use gridrm_store::DeltaTracker;
use gridrm_telemetry::{
    CostVector, Counter, GatewayTelemetry, Gauge, Histogram, IntrusionCause, JournalSeverity,
    Labels, Registry, DEFAULT_LATENCY_BUCKETS_MS, KIND_STREAM,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one subscriber on one gateway.
pub type SubscriptionId = u64;

/// What a full per-subscriber buffer does with the next delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BackpressurePolicy {
    /// Evict the oldest buffered delta to make room (lossy head —
    /// a catching-up subscriber sees the freshest data). The default.
    #[default]
    DropOldest,
    /// Refuse the incoming delta (lossy tail — the buffer preserves
    /// the oldest unread deltas).
    DropNewest,
    /// Merge the incoming delta into the newest buffered one: rows
    /// accumulate, `removed` adds up and `coalesced` counts the merges.
    /// Nothing is lost, but batch boundaries are.
    Coalesce,
}

impl BackpressurePolicy {
    /// Closed-set label used on `gridrm_sub_dropped_total`.
    pub fn name(self) -> &'static str {
        match self {
            BackpressurePolicy::DropOldest => "drop_oldest",
            BackpressurePolicy::DropNewest => "drop_newest",
            BackpressurePolicy::Coalesce => "coalesce",
        }
    }
}

/// A subscription request: the query to stand up plus per-subscriber
/// delivery knobs. Built by [`crate::acil::QueryBuilder::subscribe`] or
/// directly.
#[derive(Debug, Clone)]
pub struct SubscribeSpec {
    /// The underlying query (sources, SQL, identity, freshness mode).
    /// The SQL may carry its own `EVERY <n>` clause.
    pub request: ClientRequest,
    /// Re-evaluation cadence in virtual ms; falls back to the SQL's
    /// `EVERY` clause. One of the two must be present.
    pub every_ms: Option<u64>,
    /// Per-subscriber buffer capacity; `None` uses the gateway default.
    pub buffer: Option<usize>,
    /// Backpressure policy; `None` uses the gateway default.
    pub backpressure: Option<BackpressurePolicy>,
}

impl SubscribeSpec {
    /// Override the per-subscriber buffer capacity.
    pub fn buffer(mut self, capacity: usize) -> SubscribeSpec {
        self.buffer = Some(capacity);
        self
    }

    /// Override the backpressure policy.
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> SubscribeSpec {
        self.backpressure = Some(policy);
        self
    }
}

/// One batch of changed rows emitted by a standing query to one
/// subscriber.
#[derive(Debug, Clone)]
pub struct StreamDelta {
    /// The receiving subscription.
    pub subscription: SubscriptionId,
    /// Per-subscriber emission sequence number (1-based, gaps mean
    /// drops).
    pub seq: u64,
    /// Virtual time of the evaluation that produced (or last merged
    /// into) this delta.
    pub emitted_ms: u64,
    /// Scope label of the gateway that evaluated the query
    /// (`"local:gw-alpha"`), so grid-level merges stay attributable.
    pub origin: String,
    /// The new or modified rows since the previous emission.
    pub rows: RowSet,
    /// Rows from the previous emission that disappeared.
    pub removed: usize,
    /// How many later emissions were coalesced into this delta (0 for
    /// an unmerged one).
    pub coalesced: u32,
}

/// Point-in-time view of one subscriber, for `subscriptions_json` and
/// the `gridrm_subscriptions` virtual table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubscriptionSnapshot {
    /// Subscription id.
    pub id: SubscriptionId,
    /// Scope label of the owning gateway.
    pub origin: String,
    /// The standing query's SQL (EVERY clause stripped).
    pub sql: String,
    /// Number of data sources the query watches.
    pub sources: usize,
    /// Re-evaluation cadence, virtual ms.
    pub every_ms: u64,
    /// Backpressure policy label.
    pub policy: String,
    /// Buffer capacity.
    pub buffer_capacity: usize,
    /// Deltas currently buffered, waiting for a poll.
    pub pending: usize,
    /// Deltas emitted to this subscriber so far (drops included).
    pub emitted: u64,
    /// Deltas the subscriber has polled out.
    pub delivered: u64,
    /// Deltas lost (or merged away) to backpressure.
    pub dropped: u64,
    /// Virtual time of the last emission, if any.
    pub last_emit_ms: Option<u64>,
    /// Virtual time the subscription was registered.
    pub created_ms: u64,
}

/// Streaming-plane counters. Shared telemetry cells, exposable via
/// [`StreamStats::register_into`].
#[derive(Debug, Default)]
pub struct StreamStats {
    /// Deltas emitted into subscriber buffers (one per subscriber per
    /// changed evaluation).
    pub deltas: Counter,
    /// Deltas evicted under `DropOldest`.
    pub dropped_oldest: Counter,
    /// Deltas refused under `DropNewest`.
    pub dropped_newest: Counter,
    /// Deltas merged away under `Coalesce`.
    pub dropped_coalesced: Counter,
    /// Standing-query evaluations run by the pump (the delta-eval hot
    /// path; compare with what naive per-subscriber re-polling would
    /// cost).
    pub evaluations: Counter,
}

impl StreamStats {
    /// Expose the subscription counters in a metrics registry.
    pub fn register_into(&self, registry: &Registry) {
        registry.expose_counter(
            "gridrm_sub_deltas_total",
            "Continuous-query deltas emitted into subscriber buffers",
            Labels::none(),
            &self.deltas,
        );
        let series = [
            ("drop_oldest", &self.dropped_oldest),
            ("drop_newest", &self.dropped_newest),
            ("coalesce", &self.dropped_coalesced),
        ];
        for (policy, counter) in series {
            registry.expose_counter(
                "gridrm_sub_dropped_total",
                "Deltas lost or merged away by subscriber backpressure",
                Labels::from_pairs(&[("policy", policy)]),
                counter,
            );
        }
    }

    /// The drop counter for one policy.
    fn dropped_for(&self, policy: BackpressurePolicy) -> &Counter {
        match policy {
            BackpressurePolicy::DropOldest => &self.dropped_oldest,
            BackpressurePolicy::DropNewest => &self.dropped_newest,
            BackpressurePolicy::Coalesce => &self.dropped_coalesced,
        }
    }
}

/// Gateway-level streaming knobs, lifted from `GatewayConfig`.
#[derive(Debug, Clone)]
pub struct StreamSettings {
    /// Default per-subscriber buffer capacity.
    pub buffer_capacity: usize,
    /// Default backpressure policy.
    pub backpressure: BackpressurePolicy,
    /// Floor for `EVERY` intervals, virtual ms.
    pub min_every_ms: u64,
    /// Hard cap on registered subscribers (0 = uncapped).
    pub max_subscribers: usize,
}

/// One deduplicated standing query: many subscribers, one evaluation
/// per tick.
struct StandingQuery {
    /// Template request the pump executes (EVERY clause stripped).
    request: ClientRequest,
    every_ms: u64,
    next_eval_ms: u64,
    /// An agent update touched one of this query's sources since the
    /// last evaluation; evaluate on the next pump regardless of cadence.
    dirty: bool,
    tracker: DeltaTracker,
    /// The full result set of the most recent evaluation — the baseline
    /// a late joiner receives as its synthesized snapshot delta.
    last_rows: Option<RowSet>,
    subscribers: Vec<SubscriptionId>,
}

struct Subscriber {
    id: SubscriptionId,
    key: String,
    sql: String,
    sources: usize,
    every_ms: u64,
    policy: BackpressurePolicy,
    capacity: usize,
    buffer: VecDeque<StreamDelta>,
    emitted: u64,
    delivered: u64,
    dropped: u64,
    last_emit_ms: Option<u64>,
    created_ms: u64,
}

#[derive(Default)]
struct Inner {
    queries: BTreeMap<String, StandingQuery>,
    subs: BTreeMap<SubscriptionId, Subscriber>,
}

/// The subscription registry and delta pump: standing queries in,
/// bounded per-subscriber delta buffers out.
pub struct StreamManager {
    inner: Mutex<Inner>,
    next_id: AtomicU64,
    settings: StreamSettings,
    origin: String,
    stats: StreamStats,
    /// Delivery lag (poll time minus emit time), virtual ms.
    lag: Option<Histogram>,
    /// Live subscriber count.
    active: Option<Gauge>,
    telemetry: Option<GatewayTelemetry>,
}

impl StreamManager {
    /// Build the manager and (when telemetry is attached) register the
    /// streaming metric families eagerly, so they are visible before
    /// the first subscription.
    pub fn new(
        settings: StreamSettings,
        origin: String,
        telemetry: Option<GatewayTelemetry>,
    ) -> StreamManager {
        let stats = StreamStats::default();
        let (lag, active) = match &telemetry {
            Some(t) => {
                let registry = t.registry();
                stats.register_into(registry);
                (
                    Some(registry.histogram(
                        "gridrm_sub_lag_ms",
                        "Delta delivery lag: poll time minus emit time, virtual ms",
                        Labels::none(),
                        DEFAULT_LATENCY_BUCKETS_MS,
                    )),
                    Some(registry.gauge(
                        "gridrm_subscriptions_active",
                        "Registered continuous-query subscribers",
                        Labels::none(),
                    )),
                )
            }
            None => (None, None),
        };
        StreamManager {
            inner: Mutex::new(Inner::default()),
            next_id: AtomicU64::new(1),
            settings,
            origin,
            stats,
            lag,
            active,
            telemetry,
        }
    }

    /// Streaming counters.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Scope label deltas are stamped with.
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// Registered subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().subs.len()
    }

    /// Deduplicated standing queries currently evaluated by the pump.
    pub fn standing_query_count(&self) -> usize {
        self.inner.lock().queries.len()
    }

    /// Register a subscription. The standing query becomes due on the
    /// next pump; identical (sources, SQL, cadence, identity) queries
    /// share one evaluation.
    pub fn subscribe(&self, spec: &SubscribeSpec, now: u64) -> DbcResult<SubscriptionId> {
        let parsed = gridrm_sqlparse::parse(&spec.request.sql)?;
        let Statement::Select(sel) = parsed else {
            return Err(SqlError::Unsupported(
                "subscriptions take SELECT statements".into(),
            ));
        };
        let every = spec.every_ms.or(sel.every_ms).ok_or_else(|| {
            SqlError::Unsupported(
                "a subscription needs a cadence: `SELECT … EVERY <ms>` or \
                 QueryBuilder::every_ms"
                    .into(),
            )
        })?;
        let every = every.max(self.settings.min_every_ms);
        if spec.request.sources.is_empty() {
            return Err(SqlError::Unsupported(
                "a subscription needs at least one data source".into(),
            ));
        }
        let exec_sql = sel.without_every().to_string();
        let who = spec
            .request
            .identity
            .as_ref()
            .map(|i| i.name.as_str())
            .unwrap_or("anonymous");
        let key = format!(
            "{}\u{1}{}\u{1}{}\u{1}{}",
            spec.request.sources.join(","),
            exec_sql,
            every,
            who
        );
        let capacity = spec.buffer.unwrap_or(self.settings.buffer_capacity).max(1);
        let policy = spec.backpressure.unwrap_or(self.settings.backpressure);
        let id = {
            let mut inner = self.inner.lock();
            if self.settings.max_subscribers > 0
                && inner.subs.len() >= self.settings.max_subscribers
            {
                return Err(SqlError::Unsupported(format!(
                    "subscriber cap reached ({})",
                    self.settings.max_subscribers
                )));
            }
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let query = inner
                .queries
                .entry(key.clone())
                .or_insert_with(|| StandingQuery {
                    request: ClientRequest {
                        sql: exec_sql.clone(),
                        trace: None,
                        ..spec.request.clone()
                    },
                    every_ms: every,
                    next_eval_ms: now,
                    dirty: false,
                    tracker: DeltaTracker::new(),
                    last_rows: None,
                    subscribers: Vec::new(),
                });
            // A late joiner on an existing standing query starts from
            // the current materialization: synthesize its snapshot
            // delta rather than leaving it blind until the next change.
            let baseline = query.last_rows.clone();
            query.subscribers.push(id);
            let mut sub = Subscriber {
                id,
                key,
                sql: exec_sql,
                sources: spec.request.sources.len(),
                every_ms: every,
                policy,
                capacity,
                buffer: VecDeque::new(),
                emitted: 0,
                delivered: 0,
                dropped: 0,
                last_emit_ms: None,
                created_ms: now,
            };
            if let Some(rows) = baseline {
                sub.emitted = 1;
                sub.last_emit_ms = Some(now);
                sub.buffer.push_back(StreamDelta {
                    subscription: id,
                    seq: 1,
                    emitted_ms: now,
                    origin: self.origin.clone(),
                    rows,
                    removed: 0,
                    coalesced: 0,
                });
                self.stats.deltas.inc();
            }
            inner.subs.insert(id, sub);
            if let Some(g) = &self.active {
                g.set(inner.subs.len() as f64);
            }
            id
        };
        if let Some(t) = &self.telemetry {
            t.journal().record(
                now,
                JournalSeverity::Info,
                KIND_STREAM,
                &spec.request.sources.join(","),
                None,
                Some("subscribe"),
                &format!(
                    "subscription {id} registered (every {every} ms, {})",
                    policy.name()
                ),
            );
        }
        Ok(id)
    }

    /// Cancel a subscription; standing queries with no subscribers left
    /// are dropped. Returns whether the id existed.
    pub fn cancel(&self, id: SubscriptionId, now: u64) -> bool {
        let existed = {
            let mut inner = self.inner.lock();
            let Some(sub) = inner.subs.remove(&id) else {
                return false;
            };
            if let Some(q) = inner.queries.get_mut(&sub.key) {
                q.subscribers.retain(|s| *s != id);
                if q.subscribers.is_empty() {
                    inner.queries.remove(&sub.key);
                }
            }
            if let Some(g) = &self.active {
                g.set(inner.subs.len() as f64);
            }
            true
        };
        if let Some(t) = &self.telemetry {
            t.journal().record(
                now,
                JournalSeverity::Info,
                KIND_STREAM,
                "",
                None,
                Some("subscribe"),
                &format!("subscription {id} cancelled"),
            );
        }
        existed
    }

    /// An agent update (native push, event) touched `source`: standing
    /// queries watching it are evaluated on the next pump even if their
    /// cadence has not elapsed. Matching is by substring in either
    /// direction — agent addresses (`node00.alpha`) appear inside
    /// source URLs (`jdbc:snmp://node00.alpha/public`).
    pub fn mark_dirty(&self, source: &str) {
        if source.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        for q in inner.queries.values_mut() {
            if q.request
                .sources
                .iter()
                .any(|s| s.contains(source) || source.contains(s.as_str()))
            {
                q.dirty = true;
            }
        }
    }

    /// Evaluate every due standing query once, diff against the last
    /// emission, and fan the changed rows out to subscribers under
    /// their backpressure policies. `exec` runs one (EVERY-stripped)
    /// query to rows — the gateway passes its Request Manager.
    ///
    /// Returns the number of deltas emitted into buffers.
    pub fn pump<F>(&self, now: u64, exec: F) -> usize
    where
        F: Fn(&ClientRequest) -> DbcResult<RowSet>,
    {
        self.tick(now, exec, false)
    }

    /// Force one subscription's standing query to evaluate now (the
    /// initial-snapshot path at subscribe time). Uses the same exec
    /// seam as [`StreamManager::pump`]; only dirty queries run, so
    /// other standing queries keep their own cadence.
    pub fn evaluate_for<F>(&self, id: SubscriptionId, now: u64, exec: F) -> usize
    where
        F: Fn(&ClientRequest) -> DbcResult<RowSet>,
    {
        {
            let mut inner = self.inner.lock();
            let Some(key) = inner.subs.get(&id).map(|s| s.key.clone()) else {
                return 0;
            };
            let Some(q) = inner.queries.get_mut(&key) else {
                return 0;
            };
            q.dirty = true;
        }
        self.tick(now, exec, true)
    }

    /// One evaluation pass. Three phases to keep the registry lock out
    /// of `exec`: pick the due queries under the lock, execute them
    /// unlocked (an evaluation may itself read the
    /// `gridrm_subscriptions` virtual table, which re-enters this
    /// manager), then re-lock to diff and fan out.
    fn tick<F>(&self, now: u64, exec: F, only_dirty: bool) -> usize
    where
        F: Fn(&ClientRequest) -> DbcResult<RowSet>,
    {
        let due: Vec<(String, ClientRequest)> = {
            let inner = self.inner.lock();
            inner
                .queries
                .iter()
                .filter(|(_, q)| q.dirty || (!only_dirty && now >= q.next_eval_ms))
                .map(|(k, q)| (k.clone(), q.request.clone()))
                .collect()
        };
        let mut results: Vec<(String, DbcResult<RowSet>)> = Vec::with_capacity(due.len());
        for (key, request) in due {
            self.stats.evaluations.inc();
            results.push((key, exec(&request)));
        }
        let mut emitted = 0usize;
        let mut inner = self.inner.lock();
        for (key, outcome) in results {
            let Some(q) = inner.queries.get_mut(&key) else {
                continue; // cancelled mid-evaluation
            };
            q.next_eval_ms = now + q.every_ms;
            q.dirty = false;
            let rows = match outcome {
                Ok(rows) => rows,
                Err(e) => {
                    if let Some(t) = &self.telemetry {
                        t.journal().record(
                            now,
                            JournalSeverity::Warning,
                            KIND_STREAM,
                            &q.request.sources.join(","),
                            None,
                            Some("delta"),
                            &format!("standing query evaluation failed: {e}"),
                        );
                    }
                    continue;
                }
            };
            let delta = q.tracker.diff(&rows);
            q.last_rows = Some(rows);
            let Some(delta) = delta else {
                continue; // unchanged — the idle case costs nothing
            };
            let targets = q.subscribers.clone();
            for sub_id in targets {
                let origin = self.origin.clone();
                let Some(sub) = inner.subs.get_mut(&sub_id) else {
                    continue;
                };
                sub.emitted += 1;
                sub.last_emit_ms = Some(now);
                let next = StreamDelta {
                    subscription: sub_id,
                    seq: sub.emitted,
                    emitted_ms: now,
                    origin,
                    rows: delta.rows.clone(),
                    removed: delta.removed,
                    coalesced: 0,
                };
                self.stats.deltas.inc();
                emitted += 1;
                if sub.buffer.len() < sub.capacity {
                    sub.buffer.push_back(next);
                    continue;
                }
                sub.dropped += 1;
                self.stats.dropped_for(sub.policy).inc();
                match sub.policy {
                    BackpressurePolicy::DropOldest => {
                        sub.buffer.pop_front();
                        sub.buffer.push_back(next);
                    }
                    BackpressurePolicy::DropNewest => {}
                    BackpressurePolicy::Coalesce => {
                        if let Some(back) = sub.buffer.back_mut() {
                            // Same standing query, same column shape —
                            // an arity mismatch cannot happen here, and
                            // a defensive miss just skips the merge.
                            let _ = back.rows.append(next.rows);
                            back.removed += next.removed;
                            back.coalesced += 1;
                            back.emitted_ms = now;
                            back.seq = next.seq;
                        }
                    }
                }
            }
        }
        emitted
    }

    /// Deliver: drain up to `max` buffered deltas (0 = all) and record
    /// each one's delivery lag.
    pub fn poll(&self, id: SubscriptionId, max: usize, now: u64) -> DbcResult<Vec<StreamDelta>> {
        let mut inner = self.inner.lock();
        let Some(sub) = inner.subs.get_mut(&id) else {
            return Err(SqlError::Unsupported(format!("unknown subscription {id}")));
        };
        let take = if max == 0 {
            sub.buffer.len()
        } else {
            max.min(sub.buffer.len())
        };
        let mut out = Vec::with_capacity(take);
        let mut cost = CostVector::default();
        for _ in 0..take {
            if let Some(d) = sub.buffer.pop_front() {
                sub.delivered += 1;
                if let Some(h) = &self.lag {
                    h.observe(now.saturating_sub(d.emitted_ms) as f64);
                }
                // Each delivered delta is one message's worth of rows
                // shipped to a subscriber: subscription traffic the
                // local site endures.
                cost.msgs_out += 1;
                cost.rows_returned += d.rows.len() as u64;
                out.push(d);
            }
        }
        if let Some(t) = &self.telemetry {
            if !out.is_empty() {
                let costs = t.costs();
                costs.count(&cost);
                costs.intrude(&t.site(), IntrusionCause::Subscription, &cost);
            }
        }
        Ok(out)
    }

    /// Deltas waiting in one subscriber's buffer.
    pub fn pending(&self, id: SubscriptionId) -> usize {
        self.inner
            .lock()
            .subs
            .get(&id)
            .map(|s| s.buffer.len())
            .unwrap_or(0)
    }

    /// Snapshot every subscriber, ordered by id.
    pub fn snapshot(&self) -> Vec<SubscriptionSnapshot> {
        let inner = self.inner.lock();
        let mut out: Vec<SubscriptionSnapshot> = inner
            .subs
            .values()
            .map(|s| SubscriptionSnapshot {
                id: s.id,
                origin: self.origin.clone(),
                sql: s.sql.clone(),
                sources: s.sources,
                every_ms: s.every_ms,
                policy: s.policy.name().to_owned(),
                buffer_capacity: s.capacity,
                pending: s.buffer.len(),
                emitted: s.emitted,
                delivered: s.delivered,
                dropped: s.dropped,
                last_emit_ms: s.last_emit_ms,
                created_ms: s.created_ms,
            })
            .collect();
        out.sort_by_key(|s| s.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acil::ClientRequest;
    use gridrm_dbc::{ColumnMeta, ResultSetMetaData};
    use gridrm_sqlparse::{SqlType, SqlValue};
    use std::sync::Mutex as StdMutex;

    fn settings() -> StreamSettings {
        StreamSettings {
            buffer_capacity: 4,
            backpressure: BackpressurePolicy::DropOldest,
            min_every_ms: 10,
            max_subscribers: 0,
        }
    }

    fn manager() -> StreamManager {
        StreamManager::new(settings(), "local:test".into(), None)
    }

    fn spec(sql: &str) -> SubscribeSpec {
        SubscribeSpec {
            request: ClientRequest::realtime("jdbc:mem://n/t", sql),
            every_ms: None,
            buffer: None,
            backpressure: None,
        }
    }

    fn rows(pairs: &[(&str, i64)]) -> RowSet {
        RowSet::new(
            ResultSetMetaData::new(vec![
                ColumnMeta::new("Hostname", SqlType::Str),
                ColumnMeta::new("Load1", SqlType::Int),
            ]),
            pairs
                .iter()
                .map(|(h, l)| vec![SqlValue::Str((*h).to_owned()), SqlValue::Int(*l)])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn subscribe_requires_a_cadence_and_a_source() {
        let m = manager();
        let err = m.subscribe(&spec("SELECT * FROM Processor"), 0);
        assert!(err.is_err(), "no EVERY and no every_ms must be refused");
        let mut s = spec("SELECT * FROM Processor EVERY 100");
        s.request.sources.clear();
        assert!(m.subscribe(&s, 0).is_err());
    }

    #[test]
    fn identical_standing_queries_deduplicate() {
        let m = manager();
        for _ in 0..100 {
            m.subscribe(&spec("SELECT * FROM Processor EVERY 100"), 0)
                .unwrap();
        }
        assert_eq!(m.subscriber_count(), 100);
        assert_eq!(m.standing_query_count(), 1);
        // One pump = one evaluation, 100 deltas.
        let emitted = m.pump(0, |_req| Ok(rows(&[("n1", 1)])));
        assert_eq!(emitted, 100);
        assert_eq!(m.stats().evaluations.get(), 1);
    }

    #[test]
    fn unchanged_evaluations_emit_nothing() {
        let m = manager();
        let id = m
            .subscribe(&spec("SELECT * FROM Processor EVERY 100"), 0)
            .unwrap();
        assert_eq!(m.pump(0, |_| Ok(rows(&[("n1", 1)]))), 1);
        assert_eq!(m.pump(100, |_| Ok(rows(&[("n1", 1)]))), 0);
        assert_eq!(m.pump(200, |_| Ok(rows(&[("n1", 2)]))), 1);
        let deltas = m.poll(id, 0, 200).unwrap();
        assert_eq!(deltas.len(), 2, "snapshot + one change");
        assert_eq!(deltas[1].rows.rows()[0][1], SqlValue::Int(2));
    }

    #[test]
    fn cadence_is_respected_between_dirty_marks() {
        let m = manager();
        m.subscribe(&spec("SELECT * FROM Processor EVERY 100"), 0)
            .unwrap();
        assert_eq!(m.pump(0, |_| Ok(rows(&[("n1", 1)]))), 1);
        // 50 ms later: not due, not dirty → no evaluation at all.
        assert_eq!(m.pump(50, |_| Ok(rows(&[("n1", 2)]))), 0);
        assert_eq!(m.stats().evaluations.get(), 1);
        // An agent update marks it dirty → evaluated despite cadence.
        m.mark_dirty("jdbc:mem://n/t");
        assert_eq!(m.pump(60, |_| Ok(rows(&[("n1", 2)]))), 1);
    }

    #[test]
    fn drop_oldest_keeps_the_freshest_deltas() {
        let m = manager();
        let mut s = spec("SELECT * FROM Processor EVERY 10");
        s.buffer = Some(2);
        let id = m.subscribe(&s, 0).unwrap();
        for i in 0..5 {
            m.pump(i * 10, |_| Ok(rows(&[("n1", i as i64)])));
        }
        assert_eq!(m.pending(id), 2);
        let deltas = m.poll(id, 0, 50).unwrap();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].seq, 4);
        assert_eq!(deltas[1].seq, 5);
        assert_eq!(m.stats().dropped_oldest.get(), 3);
    }

    #[test]
    fn drop_newest_keeps_the_oldest_deltas() {
        let m = manager();
        let mut s = spec("SELECT * FROM Processor EVERY 10");
        s.buffer = Some(2);
        s.backpressure = Some(BackpressurePolicy::DropNewest);
        let id = m.subscribe(&s, 0).unwrap();
        for i in 0..5 {
            m.pump(i * 10, |_| Ok(rows(&[("n1", i as i64)])));
        }
        let deltas = m.poll(id, 0, 50).unwrap();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].seq, 1);
        assert_eq!(deltas[1].seq, 2);
        assert_eq!(m.stats().dropped_newest.get(), 3);
    }

    #[test]
    fn coalesce_merges_into_the_newest_buffered_delta() {
        let m = manager();
        let mut s = spec("SELECT * FROM Processor EVERY 10");
        s.buffer = Some(1);
        s.backpressure = Some(BackpressurePolicy::Coalesce);
        let id = m.subscribe(&s, 0).unwrap();
        for i in 0..4 {
            m.pump(i * 10, |_| Ok(rows(&[("n1", i as i64)])));
        }
        let deltas = m.poll(id, 0, 40).unwrap();
        assert_eq!(deltas.len(), 1, "capacity 1 + coalesce = one merged batch");
        let d = &deltas[0];
        assert_eq!(d.coalesced, 3);
        assert_eq!(d.seq, 4);
        assert_eq!(d.rows.len(), 4, "merged batch keeps every changed row");
        assert_eq!(m.stats().dropped_coalesced.get(), 3);
    }

    #[test]
    fn poll_honours_max_and_unknown_ids_error() {
        let m = manager();
        let id = m
            .subscribe(&spec("SELECT * FROM Processor EVERY 10"), 0)
            .unwrap();
        for i in 0..3 {
            m.pump(i * 10, |_| Ok(rows(&[("n1", i as i64)])));
        }
        assert_eq!(m.poll(id, 2, 30).unwrap().len(), 2);
        assert_eq!(m.poll(id, 2, 30).unwrap().len(), 1);
        assert!(m.poll(9_999, 0, 0).is_err());
    }

    #[test]
    fn cancel_drops_subscriber_and_orphaned_query() {
        let m = manager();
        let a = m
            .subscribe(&spec("SELECT * FROM Processor EVERY 10"), 0)
            .unwrap();
        let b = m
            .subscribe(&spec("SELECT * FROM Processor EVERY 10"), 0)
            .unwrap();
        assert_eq!(m.standing_query_count(), 1);
        assert!(m.cancel(a, 0));
        assert_eq!(m.standing_query_count(), 1, "b still holds the query");
        assert!(m.cancel(b, 0));
        assert_eq!(m.standing_query_count(), 0);
        assert!(!m.cancel(b, 0), "double-cancel reports absence");
    }

    #[test]
    fn subscriber_cap_is_enforced() {
        let mut st = settings();
        st.max_subscribers = 2;
        let m = StreamManager::new(st, "local:test".into(), None);
        m.subscribe(&spec("SELECT * FROM Processor EVERY 10"), 0)
            .unwrap();
        m.subscribe(&spec("SELECT * FROM Processor EVERY 10"), 0)
            .unwrap();
        assert!(m
            .subscribe(&spec("SELECT * FROM Processor EVERY 10"), 0)
            .is_err());
    }

    #[test]
    fn evaluation_failures_skip_without_poisoning_the_baseline() {
        let m = manager();
        let id = m
            .subscribe(&spec("SELECT * FROM Processor EVERY 10"), 0)
            .unwrap();
        m.pump(0, |_| Ok(rows(&[("n1", 1)])));
        m.pump(10, |_| Err(SqlError::Driver("source down".into())));
        // The failed tick changed nothing: the same rows still diff clean.
        assert_eq!(m.pump(20, |_| Ok(rows(&[("n1", 1)]))), 0);
        assert_eq!(m.poll(id, 0, 20).unwrap().len(), 1);
    }

    #[test]
    fn evaluation_runs_outside_the_registry_lock() {
        // The exec closure may re-enter the manager (a standing query
        // over the gridrm_subscriptions virtual table does); this must
        // not deadlock.
        let m = std::sync::Arc::new(manager());
        m.subscribe(&spec("SELECT * FROM gridrm_subscriptions EVERY 10"), 0)
            .unwrap();
        let snap_len = StdMutex::new(0usize);
        let m2 = m.clone();
        m.pump(0, |_| {
            *snap_len.lock().unwrap() = m2.snapshot().len();
            Ok(rows(&[("n1", 1)]))
        });
        assert_eq!(*snap_len.lock().unwrap(), 1);
    }
}
