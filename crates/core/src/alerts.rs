//! Resource alerts (Fig 2's "Resource Alerts", Fig 9's "Threshold
//! exceeded → Event transmitted"): declarative threshold rules evaluated
//! over harvested result sets, producing normalised [`GridRMEvent`]s.
//!
//! A rule *is* a query: [`AlertRule::to_select`] materialises it as
//! `SELECT * FROM <group> WHERE <attr> <cmp> <threshold>`, and
//! [`AlertEngine::scan`] evaluates that statement with the store's SQL
//! engine over the harvested rows — the same evaluator continuous
//! queries use. [`AlertRule::to_continuous_sql`] appends `EVERY <n>`,
//! turning the rule into a standing subscription whose deltas are the
//! alert firings (see `docs/streaming.md`).

use crate::events::{GridRMEvent, Severity};
use crate::health::{HealthState, HealthTransition};
use gridrm_dbc::RowSet;
use gridrm_sqlparse::{ColumnDef, SelectStatement, Statement};
use gridrm_store::{select_in_memory, Table};
use gridrm_telemetry::SloTransition;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Comparison operator for a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Comparison {
    Gt,
    Ge,
    Lt,
    Le,
    Eq,
}

impl Comparison {
    /// Whether `value <cmp> threshold` holds.
    pub fn holds(&self, value: f64, threshold: f64) -> bool {
        match self {
            Comparison::Gt => value > threshold,
            Comparison::Ge => value >= threshold,
            Comparison::Lt => value < threshold,
            Comparison::Le => value <= threshold,
            Comparison::Eq => (value - threshold).abs() < f64::EPSILON,
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            Comparison::Gt => ">",
            Comparison::Ge => ">=",
            Comparison::Lt => "<",
            Comparison::Le => "<=",
            Comparison::Eq => "=",
        }
    }
}

/// One threshold rule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlertRule {
    /// Rule name.
    pub name: String,
    /// GLUE group it applies to (case-insensitive).
    pub group: String,
    /// Attribute (result column) to test.
    pub attr: String,
    /// Comparison against the threshold.
    pub cmp: Comparison,
    /// Threshold value.
    pub threshold: f64,
    /// Severity of the generated event.
    pub severity: Severity,
    /// Category of the generated event (e.g. `cpu.load.high`).
    pub category: String,
}

impl AlertRule {
    /// The rule as SQL: `SELECT * FROM <group> WHERE <attr> <cmp> <n>`.
    /// Matching rows under this query are exactly the rows the rule
    /// fires on.
    pub fn to_sql(&self) -> String {
        format!(
            "SELECT * FROM {} WHERE {} {} {}",
            self.group,
            self.attr,
            self.cmp.symbol(),
            fmt_threshold(self.threshold)
        )
    }

    /// The rule materialised as a parsed `SELECT` statement, ready for
    /// the store's SQL evaluator.
    pub fn to_select(&self) -> Option<SelectStatement> {
        match gridrm_sqlparse::parse(&self.to_sql()) {
            Ok(Statement::Select(sel)) => Some(sel),
            _ => None, // a group/attr that is not a lexable identifier
        }
    }

    /// The rule as a standing continuous query: its deltas are the
    /// alert firings.
    pub fn to_continuous_sql(&self, every_ms: u64) -> String {
        format!("{} EVERY {}", self.to_sql(), every_ms)
    }
}

/// Render a threshold so it round-trips through the SQL lexer as a
/// float literal (a bare `3` would lex as an integer).
fn fmt_threshold(v: f64) -> String {
    if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// The alert engine: a rule set scanned over query results.
#[derive(Default)]
pub struct AlertEngine {
    rules: RwLock<Vec<AlertRule>>,
}

impl AlertEngine {
    /// Empty engine.
    pub fn new() -> AlertEngine {
        AlertEngine::default()
    }

    /// Install a rule (replacing any same-named one).
    pub fn add_rule(&self, rule: AlertRule) {
        let mut rules = self.rules.write();
        rules.retain(|r| r.name != rule.name);
        rules.push(rule);
    }

    /// Remove a rule by name.
    pub fn remove_rule(&self, name: &str) -> bool {
        let mut rules = self.rules.write();
        let before = rules.len();
        rules.retain(|r| r.name != name);
        rules.len() != before
    }

    /// Current rules.
    pub fn rules(&self) -> Vec<AlertRule> {
        self.rules.read().clone()
    }

    /// Scan a result set harvested from `source` for group `group`;
    /// returns one event per (rule, matching row).
    ///
    /// Each applicable rule is materialised as its `SELECT` statement
    /// ([`AlertRule::to_select`]) and evaluated by the store's SQL
    /// engine over the harvested rows — the rows that survive the
    /// `WHERE` clause are the firings. SQL three-valued logic gives the
    /// NULL handling (a NULL attribute never matches) for free.
    pub fn scan(&self, source: &str, group: &str, rows: &RowSet, now_ms: i64) -> Vec<GridRMEvent> {
        let rules = self.rules.read();
        let applicable: Vec<&AlertRule> = rules
            .iter()
            .filter(|r| r.group.eq_ignore_ascii_case(group))
            .collect();
        if applicable.is_empty() {
            return Vec::new();
        }
        // Mount the harvested result set as a transient table so rules
        // evaluate through the ordinary SQL path.
        let meta = rows.meta();
        let columns: Vec<ColumnDef> = meta
            .columns()
            .iter()
            .map(|c| ColumnDef {
                name: c.name.clone(),
                ty: c.ty,
                primary_key: false,
            })
            .collect();
        let mut table = Table::new(group, columns);
        table.rows = rows.rows().to_vec();
        let mut events = Vec::new();
        for rule in applicable {
            if meta.column_index(&rule.attr).is_err() {
                continue; // attribute not in this projection
            }
            let Some(sel) = rule.to_select() else {
                continue;
            };
            let Ok(matched) = select_in_memory(&table, &sel, now_ms) else {
                continue;
            };
            let matched_meta = matched.meta();
            let host_idx = matched_meta.column_index("Hostname").ok();
            let attr_idx = matched_meta.column_index(&rule.attr).ok();
            for row in matched.rows() {
                let Some(value) = attr_idx.and_then(|i| row.get(i)).and_then(|v| v.as_f64()) else {
                    continue;
                };
                let hostname = host_idx
                    .and_then(|i| row.get(i))
                    .and_then(|v| v.as_str().map(str::to_owned));
                events.push(GridRMEvent {
                    id: 0,
                    at_ms: now_ms,
                    source: source.to_owned(),
                    hostname: hostname.clone(),
                    severity: rule.severity,
                    category: rule.category.clone(),
                    message: format!(
                        "{}: {}.{} = {value:.3} {} {:.3}{}",
                        rule.name,
                        group,
                        rule.attr,
                        rule.cmp.symbol(),
                        rule.threshold,
                        hostname
                            .as_deref()
                            .map(|h| format!(" on {h}"))
                            .unwrap_or_default(),
                    ),
                    value: Some(value),
                });
            }
        }
        events
    }

    /// Map a health state-machine transition to an alert event (Fig 9's
    /// "Threshold exceeded → Event transmitted", applied to the
    /// gateway's own health): `Down` raises a Critical alert, `Degraded`
    /// a Warning, and recovery back to `Up` an Info notice. Transitions
    /// that carry no alerting value (e.g. `Unknown → Up` on the first
    /// ever success) return `None`.
    pub fn health_alert(&self, t: &HealthTransition) -> Option<GridRMEvent> {
        let (severity, category) = match t.to {
            HealthState::Down => (Severity::Critical, "health.state.down"),
            HealthState::Degraded => (Severity::Warning, "health.state.degraded"),
            HealthState::Up if matches!(t.from, HealthState::Down | HealthState::Degraded) => {
                (Severity::Info, "health.state.recovered")
            }
            _ => return None,
        };
        Some(GridRMEvent {
            id: 0,
            at_ms: t.at_ms as i64,
            source: t.source.clone(),
            hostname: None,
            severity,
            category: category.to_owned(),
            message: format!(
                "{}: {} -> {}{}",
                t.source,
                t.from.name(),
                t.to.name(),
                if t.via_probe { " (probe)" } else { "" }
            ),
            value: None,
        })
    }

    /// Map an SLO burn-rate transition to an alert event: a firing SLO
    /// raises a Critical alert, a recovery an Info notice. The event's
    /// value carries the slow-window burn rate (the confirming signal).
    pub fn slo_alert(&self, t: &SloTransition) -> GridRMEvent {
        let (severity, category) = if t.firing {
            (Severity::Critical, "slo.burn.firing")
        } else {
            (Severity::Info, "slo.burn.recovered")
        };
        GridRMEvent {
            id: 0,
            at_ms: t.at_ms as i64,
            source: format!("slo:{}", t.slo),
            hostname: None,
            severity,
            category: category.to_owned(),
            message: t.message.clone(),
            value: Some(t.burn_slow),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_dbc::{ColumnMeta, ResultSetMetaData};
    use gridrm_sqlparse::{SqlType, SqlValue};

    fn rows() -> RowSet {
        RowSet::new(
            ResultSetMetaData::new(vec![
                ColumnMeta::new("Hostname", SqlType::Str),
                ColumnMeta::new("Load1", SqlType::Float),
            ]),
            vec![
                vec![SqlValue::Str("calm".into()), SqlValue::Float(0.2)],
                vec![SqlValue::Str("busy".into()), SqlValue::Float(3.7)],
                vec![SqlValue::Str("unknown".into()), SqlValue::Null],
            ],
        )
        .unwrap()
    }

    fn load_rule(threshold: f64) -> AlertRule {
        AlertRule {
            name: "high-load".into(),
            group: "Processor".into(),
            attr: "Load1".into(),
            cmp: Comparison::Gt,
            threshold,
            severity: Severity::Warning,
            category: "cpu.load.high".into(),
        }
    }

    #[test]
    fn threshold_fires_per_matching_row() {
        let e = AlertEngine::new();
        e.add_rule(load_rule(1.0));
        let events = e.scan("src", "Processor", &rows(), 42);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].hostname.as_deref(), Some("busy"));
        assert_eq!(events[0].value, Some(3.7));
        assert_eq!(events[0].at_ms, 42);
        assert!(events[0].message.contains("high-load"));
    }

    #[test]
    fn health_transitions_map_to_alert_events() {
        let e = AlertEngine::new();
        let t = |from, to| HealthTransition {
            source: "jdbc:snmp://n/p".into(),
            from,
            to,
            at_ms: 9,
            via_probe: true,
        };
        let down = e
            .health_alert(&t(HealthState::Degraded, HealthState::Down))
            .unwrap();
        assert_eq!(down.severity, Severity::Critical);
        assert_eq!(down.category, "health.state.down");
        assert_eq!(down.at_ms, 9);
        assert!(down.message.contains("(probe)"));
        let degraded = e
            .health_alert(&t(HealthState::Up, HealthState::Degraded))
            .unwrap();
        assert_eq!(degraded.severity, Severity::Warning);
        let recovered = e
            .health_alert(&t(HealthState::Down, HealthState::Up))
            .unwrap();
        assert_eq!(recovered.severity, Severity::Info);
        assert_eq!(recovered.category, "health.state.recovered");
        // First-ever success is not alert-worthy.
        assert!(e
            .health_alert(&t(HealthState::Unknown, HealthState::Up))
            .is_none());
    }

    #[test]
    fn group_mismatch_no_events() {
        let e = AlertEngine::new();
        e.add_rule(load_rule(1.0));
        assert!(e.scan("src", "MainMemory", &rows(), 0).is_empty());
        // Case-insensitive group match.
        assert_eq!(e.scan("src", "processor", &rows(), 0).len(), 1);
    }

    #[test]
    fn null_values_never_match() {
        let e = AlertEngine::new();
        e.add_rule(load_rule(-100.0)); // everything numeric matches
        let events = e.scan("src", "Processor", &rows(), 0);
        assert_eq!(events.len(), 2); // NULL row skipped
    }

    #[test]
    fn rule_replacement_and_removal() {
        let e = AlertEngine::new();
        e.add_rule(load_rule(1.0));
        e.add_rule(load_rule(10.0)); // replaces by name
        assert_eq!(e.rules().len(), 1);
        assert!(e.scan("s", "Processor", &rows(), 0).is_empty());
        assert!(e.remove_rule("high-load"));
        assert!(!e.remove_rule("high-load"));
    }

    #[test]
    fn comparisons() {
        assert!(Comparison::Ge.holds(1.0, 1.0));
        assert!(!Comparison::Gt.holds(1.0, 1.0));
        assert!(Comparison::Le.holds(1.0, 1.0));
        assert!(Comparison::Lt.holds(0.5, 1.0));
        assert!(Comparison::Eq.holds(2.0, 2.0));
    }

    #[test]
    fn rule_materialises_as_a_select_statement() {
        let rule = load_rule(1.0);
        assert_eq!(rule.to_sql(), "SELECT * FROM Processor WHERE Load1 > 1.0");
        let sel = rule.to_select().unwrap();
        assert_eq!(sel.table, "Processor");
        assert!(sel.where_clause.is_some());
        assert_eq!(sel.every_ms, None);
        // Fractional and negative thresholds survive the round-trip.
        assert!(load_rule(0.75).to_select().is_some());
        assert!(load_rule(-100.0).to_select().is_some());
    }

    #[test]
    fn rule_materialises_as_a_continuous_query() {
        let sql = load_rule(1.0).to_continuous_sql(500);
        assert_eq!(sql, "SELECT * FROM Processor WHERE Load1 > 1.0 EVERY 500");
        let Ok(gridrm_sqlparse::Statement::Select(sel)) = gridrm_sqlparse::parse(&sql) else {
            panic!("continuous rule SQL must parse as SELECT");
        };
        assert_eq!(sel.every_ms, Some(500));
    }

    #[test]
    fn missing_attribute_is_ignored() {
        let e = AlertEngine::new();
        let mut rule = load_rule(0.0);
        rule.attr = "NotProjected".into();
        e.add_rule(rule);
        assert!(e.scan("s", "Processor", &rows(), 0).is_empty());
    }
}
