//! Rendering a trace's span tree as a result set (the `EXPLAIN` /
//! `EXPLAIN ANALYZE` verbs) and as indented text (for dashboards).
//!
//! The rows come back in depth-first pre-order with an explicit `depth`
//! column, so a client can rebuild the tree without re-deriving parent
//! links — but the `trace_id`/`span_id`/`parent_span_id` columns are
//! all present for joining against `gridrm_spans`, `gridrm_journal`
//! and `gridrm_slow_queries`.

use gridrm_dbc::{ColumnMeta, DbcResult, ResultSetMetaData, RowSet};
use gridrm_sqlparse::{SqlType, SqlValue};
use gridrm_telemetry::TraceRecord;

fn opt_str(v: &Option<String>) -> SqlValue {
    match v {
        Some(s) => SqlValue::Str(s.clone()),
        None => SqlValue::Null,
    }
}

fn render_stages(span: &TraceRecord, analyze: bool) -> String {
    span.stages
        .iter()
        .map(|s| {
            let mut out = if analyze {
                format!("{}@{}", s.stage, s.at_ms.saturating_sub(span.started_ms))
            } else {
                s.stage.clone()
            };
            if let Some(d) = &s.detail {
                out.push('=');
                out.push_str(d);
            }
            out
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// The spans of one trace ordered depth-first: roots (spans whose
/// parent is absent from the set) first by start time, children under
/// their parent by start time. Returns `(depth, span)` pairs.
pub fn span_tree(spans: &[TraceRecord]) -> Vec<(usize, &TraceRecord)> {
    let ids: Vec<&str> = spans.iter().map(|s| s.span_id.as_str()).collect();
    let is_root = |s: &TraceRecord| match &s.parent_span_id {
        None => true,
        Some(p) => !ids.contains(&p.as_str()),
    };
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| {
        (spans[a].started_ms, &spans[a].span_id).cmp(&(spans[b].started_ms, &spans[b].span_id))
    });

    let mut out: Vec<(usize, &TraceRecord)> = Vec::with_capacity(spans.len());
    fn visit<'a>(
        parent: &str,
        depth: usize,
        order: &[usize],
        spans: &'a [TraceRecord],
        out: &mut Vec<(usize, &'a TraceRecord)>,
    ) {
        for &i in order {
            if spans[i].parent_span_id.as_deref() == Some(parent) {
                out.push((depth, &spans[i]));
                visit(&spans[i].span_id, depth + 1, order, spans, out);
            }
        }
    }
    for &i in &order {
        if is_root(&spans[i]) {
            out.push((0, &spans[i]));
            visit(&spans[i].span_id, 1, &order, spans, &mut out);
        }
    }
    out
}

/// Render a span set as the `EXPLAIN` result set. With `analyze` the
/// virtual timings are real; without, timing columns are NULL and
/// stage lists drop their offsets (plan shape only).
pub fn explain_rowset(spans: &[TraceRecord], analyze: bool) -> DbcResult<RowSet> {
    let meta = ResultSetMetaData::new(vec![
        ColumnMeta::new("trace_id", SqlType::Str),
        ColumnMeta::new("span_id", SqlType::Str),
        ColumnMeta::new("parent_span_id", SqlType::Str),
        ColumnMeta::new("site", SqlType::Str),
        ColumnMeta::new("depth", SqlType::Int),
        ColumnMeta::new("request", SqlType::Str),
        ColumnMeta::new("source", SqlType::Str),
        ColumnMeta::new("started_ms", SqlType::Int),
        ColumnMeta::new("finished_ms", SqlType::Int),
        ColumnMeta::new("duration_ms", SqlType::Int),
        ColumnMeta::new("outcome", SqlType::Str),
        ColumnMeta::new("stages", SqlType::Str),
        ColumnMeta::new("rows", SqlType::Int),
        ColumnMeta::new("bytes", SqlType::Int),
        ColumnMeta::new("msgs", SqlType::Int),
    ]);
    let rows = span_tree(spans)
        .into_iter()
        .map(|(depth, s)| {
            let timing = |v: u64| {
                if analyze {
                    SqlValue::Int(v as i64)
                } else {
                    SqlValue::Null
                }
            };
            vec![
                SqlValue::Str(s.trace_id.clone()),
                SqlValue::Str(s.span_id.clone()),
                opt_str(&s.parent_span_id),
                SqlValue::Str(s.site.clone()),
                SqlValue::Int(depth as i64),
                SqlValue::Str(s.request.clone()),
                opt_str(&s.source),
                timing(s.started_ms),
                timing(s.finished_ms),
                timing(s.duration_ms()),
                SqlValue::Str(s.outcome.clone()),
                SqlValue::Str(render_stages(s, analyze)),
                // Cost columns are measurements, so like the timings
                // they are NULL under plain EXPLAIN.
                timing(s.cost.rows_returned),
                timing(s.cost.total_bytes()),
                timing(s.cost.total_msgs()),
            ]
        })
        .collect();
    RowSet::new(meta, rows)
}

/// Pretty-print a span set as an indented tree (one line per span),
/// for terminals and examples.
pub fn render_span_tree(spans: &[TraceRecord]) -> String {
    let mut out = String::new();
    for (depth, s) in span_tree(spans) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{} [{}] {}ms {} — {}\n",
            s.span_id,
            s.site,
            s.duration_ms(),
            s.outcome,
            s.request,
        ));
        for st in &s.stages {
            let detail = st
                .detail
                .as_deref()
                .map(|d| format!(" = {d}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "{indent}  · {}@{}{detail}\n",
                st.stage,
                st.at_ms.saturating_sub(s.started_ms)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_telemetry::{CostVector, SpanStage};

    fn span(span_id: &str, parent: Option<&str>, started: u64, finished: u64) -> TraceRecord {
        TraceRecord {
            trace_id: "gw:1".into(),
            span_id: span_id.into(),
            parent_span_id: parent.map(str::to_owned),
            site: "alpha".into(),
            request: format!("req {span_id}"),
            started_ms: started,
            finished_ms: finished,
            outcome: "ok".into(),
            stages: vec![SpanStage {
                stage: "resolve".into(),
                at_ms: started + 1,
                detail: Some("jdbc-snmp".into()),
            }],
            ..TraceRecord::default()
        }
    }

    #[test]
    fn tree_orders_depth_first_by_start_time() {
        // Shuffled input: root, two children (second started first),
        // a grandchild under the late child.
        let spans = vec![
            span("gw:4", Some("gw:2"), 30, 35),
            span("gw:1", None, 0, 100),
            span("gw:3", Some("gw:1"), 10, 20),
            span("gw:2", Some("gw:1"), 25, 40),
        ];
        let order: Vec<(usize, &str)> = span_tree(&spans)
            .iter()
            .map(|(d, s)| (*d, s.span_id.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![(0, "gw:1"), (1, "gw:3"), (1, "gw:2"), (2, "gw:4")]
        );
    }

    #[test]
    fn orphan_parent_becomes_a_root() {
        let spans = vec![span("gw:9", Some("gone:1"), 5, 6)];
        let order = span_tree(&spans);
        assert_eq!(order.len(), 1);
        assert_eq!(order[0].0, 0);
    }

    #[test]
    fn analyze_controls_timing_columns() {
        let spans = vec![span("gw:1", None, 10, 30)];
        let analyzed = explain_rowset(&spans, true).unwrap();
        let row = &analyzed.rows()[0];
        assert_eq!(row[9], SqlValue::Int(20)); // duration_ms
        assert_eq!(row[11], SqlValue::Str("resolve@1=jdbc-snmp".into()));

        let planned = explain_rowset(&spans, false).unwrap();
        let row = &planned.rows()[0];
        assert_eq!(row[7], SqlValue::Null);
        assert_eq!(row[9], SqlValue::Null);
        assert_eq!(row[11], SqlValue::Str("resolve=jdbc-snmp".into()));
    }

    #[test]
    fn cost_columns_follow_the_timing_rule() {
        let mut s = span("gw:1", None, 10, 30);
        s.cost = CostVector {
            msgs_out: 2,
            msgs_in: 2,
            bytes_out: 100,
            bytes_in: 300,
            rows_returned: 7,
            ..CostVector::default()
        };
        let analyzed = explain_rowset(&[s.clone()], true).unwrap();
        let row = &analyzed.rows()[0];
        assert_eq!(row[12], SqlValue::Int(7)); // rows
        assert_eq!(row[13], SqlValue::Int(400)); // bytes
        assert_eq!(row[14], SqlValue::Int(4)); // msgs

        let planned = explain_rowset(&[s], false).unwrap();
        let row = &planned.rows()[0];
        assert_eq!(row[12], SqlValue::Null);
        assert_eq!(row[13], SqlValue::Null);
        assert_eq!(row[14], SqlValue::Null);
    }

    #[test]
    fn text_tree_indents_children() {
        let spans = vec![span("gw:1", None, 0, 10), span("gw:2", Some("gw:1"), 2, 6)];
        let text = render_span_tree(&spans);
        assert!(text.contains("gw:1 [alpha] 10ms ok"));
        assert!(text.contains("\n  gw:2 [alpha] 4ms ok"));
        assert!(text.contains("· resolve@1 = jdbc-snmp"));
    }
}
