//! The Event Manager (paper §3.1.5, Fig 4): "a bridge between the native
//! events issued by data sources and GridRM".
//!
//! Native events arrive as opaque push payloads; pluggable **event
//! formatters** translate them into the standard [`GridRMEvent`] form.
//! Incoming events land in a bounded, lock-free **fast buffer** ("ensures
//! events are not lost in a busy system") with overflow spilling to a
//! **disk buffer**; a dispatch pump drains both, records events for
//! historical analysis and fans them out to registered listeners. The
//! reverse path — **transmitters** — converts GridRM events back into a
//! data source's native format (Fig 4's Transmitter API), which is how
//! events propagate between gateways and diverse sources.

use crossbeam::channel::{unbounded, Receiver, Sender};
use crossbeam::queue::ArrayQueue;
use gridrm_simnet::SimClock;
use gridrm_telemetry::{
    Counter, Journal, JournalSeverity, Labels, Registry, KIND_EVENT, KIND_EVENT_OVERFLOW,
    KIND_EVENT_UNFORMATTED,
};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Event severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational.
    Info,
    /// Needs attention.
    Warning,
    /// Needs attention now.
    Critical,
}

impl Severity {
    /// Parse from common level strings.
    pub fn parse(s: &str) -> Severity {
        match s.to_ascii_lowercase().as_str() {
            "critical" | "crit" | "error" | "fatal" => Severity::Critical,
            "warning" | "warn" => Severity::Warning,
            _ => Severity::Info,
        }
    }

    /// Lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    /// The equivalent journal severity.
    pub fn as_journal(&self) -> JournalSeverity {
        match self {
            Severity::Info => JournalSeverity::Info,
            Severity::Warning => JournalSeverity::Warning,
            Severity::Critical => JournalSeverity::Critical,
        }
    }
}

/// The gateway's normalised event format (the GLUE `Event` group in
/// struct form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridRMEvent {
    /// Gateway-assigned sequence number.
    pub id: u64,
    /// When it happened (virtual epoch ms).
    pub at_ms: i64,
    /// The data source that produced it (URL or simnet address).
    pub source: String,
    /// Host concerned, if known.
    pub hostname: Option<String>,
    /// Severity.
    pub severity: Severity,
    /// Dotted category, e.g. `cpu.load`.
    pub category: String,
    /// Human-readable message.
    pub message: String,
    /// Associated numeric value.
    pub value: Option<f64>,
}

/// A pluggable native → GridRM event translator ("Custom Formatter plugged
/// into each Driver", Fig 4).
pub trait EventFormatter: Send + Sync {
    /// Can this formatter decode pushes from `source`?
    fn accepts(&self, source: &str) -> bool;
    /// Decode a native payload into zero or more events (without ids —
    /// the manager assigns them).
    fn format(&self, source: &str, payload: &[u8], now_ms: i64) -> Vec<GridRMEvent>;
}

/// A pluggable GridRM → native translator (Fig 4's Transmitter API).
pub trait EventTransmitter: Send + Sync {
    /// Name for administration.
    fn name(&self) -> &str;
    /// Encode and deliver `event` to the native destination. Returns
    /// whether delivery happened.
    fn transmit(&self, event: &GridRMEvent) -> bool;
}

/// Listener filter: all fields are conjunctive; `None` matches anything.
#[derive(Debug, Clone, Default)]
pub struct ListenerFilter {
    /// Only events whose category starts with this prefix.
    pub category_prefix: Option<String>,
    /// Only events at or above this severity.
    pub min_severity: Option<Severity>,
    /// Only events from this source.
    pub source: Option<String>,
}

impl ListenerFilter {
    /// Does `event` pass the filter?
    pub fn matches(&self, event: &GridRMEvent) -> bool {
        if let Some(p) = &self.category_prefix {
            if !event.category.starts_with(p.as_str()) {
                return false;
            }
        }
        if let Some(min) = self.min_severity {
            if event.severity < min {
                return false;
            }
        }
        if let Some(s) = &self.source {
            if &event.source != s {
                return false;
            }
        }
        true
    }
}

struct Listener {
    id: u64,
    filter: ListenerFilter,
    tx: Sender<GridRMEvent>,
}

/// Counters for the event path (experiment E4). Shared telemetry cells:
/// also exposable in a gateway-wide [`Registry`] via
/// [`EventStats::register_into`].
#[derive(Debug, Default)]
pub struct EventStats {
    /// Events accepted into the manager.
    pub ingested: Counter,
    /// Events that took the overflow (disk) path.
    pub overflowed: Counter,
    /// Events delivered to listeners (sum over listeners).
    pub delivered: Counter,
    /// Events transmitted back out natively.
    pub transmitted: Counter,
    /// Payloads no formatter accepted.
    pub unformatted: Counter,
}

/// Named point-in-time copy of [`EventStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventSnapshot {
    /// Events accepted into the manager.
    pub ingested: u64,
    /// Events that took the overflow (disk) path.
    pub overflowed: u64,
    /// Events delivered to listeners (sum over listeners).
    pub delivered: u64,
    /// Events transmitted back out natively.
    pub transmitted: u64,
    /// Payloads no formatter accepted.
    pub unformatted: u64,
}

impl EventStats {
    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> EventSnapshot {
        EventSnapshot {
            ingested: self.ingested.get(),
            overflowed: self.overflowed.get(),
            delivered: self.delivered.get(),
            transmitted: self.transmitted.get(),
            unformatted: self.unformatted.get(),
        }
    }

    /// Expose these counters in a metrics registry (shared cells: the
    /// struct and the registry observe the same values).
    pub fn register_into(&self, registry: &Registry) {
        let series = [
            ("ingested", &self.ingested),
            ("overflowed", &self.overflowed),
            ("delivered", &self.delivered),
            ("transmitted", &self.transmitted),
            ("unformatted", &self.unformatted),
        ];
        for (stage, counter) in series {
            registry.expose_counter(
                "gridrm_events_total",
                "Event-manager pipeline events by stage",
                Labels::from_pairs(&[("stage", stage)]),
                counter,
            );
        }
    }
}

/// The Event Manager.
pub struct EventManager {
    formatters: RwLock<Vec<Arc<dyn EventFormatter>>>,
    transmitters: RwLock<Vec<Arc<dyn EventTransmitter>>>,
    listeners: RwLock<Vec<Listener>>,
    /// Bounded lock-free fast path.
    fast: ArrayQueue<GridRMEvent>,
    /// Unbounded overflow ("disk buffer") so bursts never lose events.
    disk: Mutex<VecDeque<GridRMEvent>>,
    next_event_id: AtomicU64,
    next_listener_id: AtomicU64,
    stats: EventStats,
    /// Optional structured journal; when attached, every emission path
    /// (ingest, overflow, unformatted) writes its counter *and* a journal
    /// entry through one helper, so the two counts cannot drift.
    journal: RwLock<Option<(Arc<Journal>, Arc<SimClock>)>>,
}

impl EventManager {
    /// Manager with a fast buffer of `fast_capacity` events.
    pub fn new(fast_capacity: usize) -> Arc<EventManager> {
        Arc::new(EventManager {
            formatters: RwLock::new(Vec::new()),
            transmitters: RwLock::new(Vec::new()),
            listeners: RwLock::new(Vec::new()),
            fast: ArrayQueue::new(fast_capacity.max(1)),
            disk: Mutex::new(VecDeque::new()),
            next_event_id: AtomicU64::new(1),
            next_listener_id: AtomicU64::new(1),
            stats: EventStats::default(),
            journal: RwLock::new(None),
        })
    }

    /// Attach the structured journal (and the clock stamping entries).
    pub fn set_journal(&self, journal: Arc<Journal>, clock: Arc<SimClock>) {
        *self.journal.write() = Some((journal, clock));
    }

    /// The single emission path: increment the stage counter and mirror
    /// the fact into the journal (when attached) in one place.
    fn note(
        &self,
        counter: &Counter,
        severity: JournalSeverity,
        kind: &str,
        source: &str,
        message: &str,
    ) {
        counter.inc();
        if let Some((journal, clock)) = self.journal.read().as_ref() {
            journal.record(
                clock.now_millis(),
                severity,
                kind,
                source,
                None,
                None,
                message,
            );
        }
    }

    /// Install an event formatter (driver-supplied, Fig 4).
    pub fn register_formatter(&self, f: Arc<dyn EventFormatter>) {
        self.formatters.write().push(f);
    }

    /// Install a transmitter for the outbound path.
    pub fn register_transmitter(&self, t: Arc<dyn EventTransmitter>) {
        self.transmitters.write().push(t);
    }

    /// Remove a transmitter by name.
    pub fn unregister_transmitter(&self, name: &str) -> bool {
        let mut ts = self.transmitters.write();
        let before = ts.len();
        ts.retain(|t| t.name() != name);
        ts.len() != before
    }

    /// Register a listener; events matching `filter` arrive on the
    /// returned channel after each [`EventManager::dispatch`].
    pub fn register_listener(&self, filter: ListenerFilter) -> (u64, Receiver<GridRMEvent>) {
        let (tx, rx) = unbounded();
        let id = self.next_listener_id.fetch_add(1, Ordering::Relaxed);
        self.listeners.write().push(Listener { id, filter, tx });
        (id, rx)
    }

    /// Remove a listener.
    pub fn unregister_listener(&self, id: u64) -> bool {
        let mut ls = self.listeners.write();
        let before = ls.len();
        ls.retain(|l| l.id != id);
        ls.len() != before
    }

    /// Ingest a *native* payload pushed by `source`: run the formatters,
    /// buffer the resulting events. Returns how many events were buffered.
    pub fn ingest_native(&self, source: &str, payload: &[u8], now_ms: i64) -> usize {
        let formatter = {
            let fs = self.formatters.read();
            fs.iter().find(|f| f.accepts(source)).cloned()
        };
        let Some(formatter) = formatter else {
            self.note(
                &self.stats.unformatted,
                JournalSeverity::Warning,
                KIND_EVENT_UNFORMATTED,
                source,
                "no formatter accepted native payload",
            );
            return 0;
        };
        let events = formatter.format(source, payload, now_ms);
        let n = events.len();
        for e in events {
            self.ingest(e);
        }
        n
    }

    /// Ingest an already-normalised event (assigns the sequence id).
    pub fn ingest(&self, mut event: GridRMEvent) {
        event.id = self.next_event_id.fetch_add(1, Ordering::Relaxed);
        self.note(
            &self.stats.ingested,
            event.severity.as_journal(),
            KIND_EVENT,
            &event.source,
            &event.category,
        );
        if let Err(e) = self.fast.push(event) {
            // Fast buffer full: spill, never drop.
            self.note(
                &self.stats.overflowed,
                JournalSeverity::Warning,
                KIND_EVENT_OVERFLOW,
                &e.source,
                "fast buffer full; spilled to disk buffer",
            );
            self.disk.lock().push_back(e);
        }
    }

    /// Drain buffered events: deliver to listeners and transmitters, and
    /// return them (the gateway records them into history). Order is
    /// fast-buffer first, then overflow.
    pub fn dispatch(&self) -> Vec<GridRMEvent> {
        let mut drained = Vec::new();
        while let Some(e) = self.fast.pop() {
            drained.push(e);
        }
        {
            let mut disk = self.disk.lock();
            drained.extend(disk.drain(..));
        }
        if drained.is_empty() {
            return drained;
        }
        // Events within one dispatch are globally ordered by id (pushes
        // may have raced between the two buffers).
        drained.sort_by_key(|e| e.id);
        {
            let mut listeners = self.listeners.write();
            listeners.retain(|l| {
                for e in &drained {
                    if l.filter.matches(e) {
                        if l.tx.send(e.clone()).is_err() {
                            return false; // receiver gone
                        }
                        self.stats.delivered.inc();
                    }
                }
                true
            });
        }
        {
            let transmitters = self.transmitters.read();
            for t in transmitters.iter() {
                for e in &drained {
                    if t.transmit(e) {
                        self.stats.transmitted.inc();
                    }
                }
            }
        }
        drained
    }

    /// Number of events currently buffered.
    pub fn backlog(&self) -> usize {
        self.fast.len() + self.disk.lock().len()
    }

    /// Activity counters.
    pub fn stats(&self) -> &EventStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(category: &str, sev: Severity) -> GridRMEvent {
        GridRMEvent {
            id: 0,
            at_ms: 100,
            source: "jdbc:snmp://node00/public".into(),
            hostname: Some("node00".into()),
            severity: sev,
            category: category.into(),
            message: "m".into(),
            value: Some(1.0),
        }
    }

    #[test]
    fn ids_are_assigned_sequentially() {
        let m = EventManager::new(16);
        m.ingest(ev("a", Severity::Info));
        m.ingest(ev("b", Severity::Info));
        let out = m.dispatch();
        assert_eq!(out[0].id, 1);
        assert_eq!(out[1].id, 2);
    }

    #[test]
    fn listener_filtering() {
        let m = EventManager::new(16);
        let (_, all) = m.register_listener(ListenerFilter::default());
        let (_, crit) = m.register_listener(ListenerFilter {
            min_severity: Some(Severity::Critical),
            ..Default::default()
        });
        let (_, cpu) = m.register_listener(ListenerFilter {
            category_prefix: Some("cpu.".into()),
            ..Default::default()
        });
        m.ingest(ev("cpu.load", Severity::Warning));
        m.ingest(ev("mem.free", Severity::Critical));
        m.dispatch();
        assert_eq!(all.try_iter().count(), 2);
        let crit_events: Vec<_> = crit.try_iter().collect();
        assert_eq!(crit_events.len(), 1);
        assert_eq!(crit_events[0].category, "mem.free");
        assert_eq!(cpu.try_iter().count(), 1);
    }

    #[test]
    fn burst_larger_than_fast_buffer_is_loss_free() {
        // The Fig 4 claim: the fast buffer "ensures events are not lost in
        // a busy system". Overflow goes to the disk buffer, not the floor.
        let m = EventManager::new(64);
        let (_, rx) = m.register_listener(ListenerFilter::default());
        for i in 0..10_000 {
            m.ingest(ev(&format!("burst.{i}"), Severity::Info));
        }
        assert_eq!(m.backlog(), 10_000);
        assert!(m.stats().overflowed.get() > 0);
        let drained = m.dispatch();
        assert_eq!(drained.len(), 10_000);
        assert_eq!(rx.try_iter().count(), 10_000);
        assert_eq!(m.backlog(), 0);
        // And order is preserved.
        for (i, e) in drained.iter().enumerate() {
            assert_eq!(e.id, i as u64 + 1);
        }
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let m = EventManager::new(32);
        std::thread::scope(|s| {
            for t in 0..8 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..500 {
                        m.ingest(ev(&format!("p{t}.{i}"), Severity::Info));
                    }
                });
            }
        });
        assert_eq!(m.dispatch().len(), 4000);
        assert_eq!(m.stats().ingested.get(), 4000);
    }

    #[test]
    fn dead_listener_is_pruned() {
        let m = EventManager::new(8);
        let (id, rx) = m.register_listener(ListenerFilter::default());
        drop(rx);
        m.ingest(ev("x", Severity::Info));
        m.dispatch();
        // Listener removed; unregistering again reports false.
        assert!(!m.unregister_listener(id));
    }

    #[test]
    fn unregister_listener_stops_delivery() {
        let m = EventManager::new(8);
        let (id, rx) = m.register_listener(ListenerFilter::default());
        assert!(m.unregister_listener(id));
        m.ingest(ev("x", Severity::Info));
        m.dispatch();
        assert_eq!(rx.try_iter().count(), 0);
    }

    #[test]
    fn formatter_dispatching() {
        struct F;
        impl EventFormatter for F {
            fn accepts(&self, source: &str) -> bool {
                source.ends_with(":test")
            }
            fn format(&self, source: &str, payload: &[u8], now_ms: i64) -> Vec<GridRMEvent> {
                vec![GridRMEvent {
                    id: 0,
                    at_ms: now_ms,
                    source: source.to_owned(),
                    hostname: None,
                    severity: Severity::Info,
                    category: String::from_utf8_lossy(payload).into_owned(),
                    message: String::new(),
                    value: None,
                }]
            }
        }
        let m = EventManager::new(8);
        m.register_formatter(Arc::new(F));
        assert_eq!(m.ingest_native("node0:test", b"cat", 5), 1);
        assert_eq!(m.ingest_native("node0:other", b"cat", 5), 0);
        assert_eq!(m.stats().unformatted.get(), 1);
        let out = m.dispatch();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].category, "cat");
    }

    #[test]
    fn transmitter_sees_all_events() {
        struct T(Arc<AtomicU64>);
        impl EventTransmitter for T {
            fn name(&self) -> &str {
                "t"
            }
            fn transmit(&self, _e: &GridRMEvent) -> bool {
                self.0.fetch_add(1, Ordering::Relaxed);
                true
            }
        }
        let m = EventManager::new(8);
        let count = Arc::new(AtomicU64::new(0));
        m.register_transmitter(Arc::new(T(count.clone())));
        for _ in 0..3 {
            m.ingest(ev("x", Severity::Info));
        }
        m.dispatch();
        assert_eq!(count.load(Ordering::Relaxed), 3);
        assert_eq!(m.stats().transmitted.get(), 3);
        assert!(m.unregister_transmitter("t"));
        assert!(!m.unregister_transmitter("t"));
    }

    #[test]
    fn journal_mirrors_emission_counters() {
        let m = EventManager::new(2);
        let journal = Arc::new(Journal::new(64));
        m.set_journal(journal.clone(), SimClock::new());
        for i in 0..4 {
            m.ingest(ev(&format!("c{i}"), Severity::Warning)); // 2 overflow
        }
        m.ingest_native("nobody:unknown", b"p", 0); // unformatted
        assert_eq!(
            journal.recent_of_kind(KIND_EVENT).len() as u64,
            m.stats().ingested.get()
        );
        assert_eq!(
            journal.recent_of_kind(KIND_EVENT_OVERFLOW).len() as u64,
            m.stats().overflowed.get()
        );
        assert_eq!(
            journal.recent_of_kind(KIND_EVENT_UNFORMATTED).len() as u64,
            m.stats().unformatted.get()
        );
        // Journal severity mirrors the event severity.
        assert!(journal
            .recent_of_kind(KIND_EVENT)
            .iter()
            .all(|e| e.severity == JournalSeverity::Warning));
    }

    #[test]
    fn severity_parse_and_order() {
        assert_eq!(Severity::parse("WARN"), Severity::Warning);
        assert_eq!(Severity::parse("error"), Severity::Critical);
        assert_eq!(Severity::parse("anything"), Severity::Info);
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Critical);
    }
}
