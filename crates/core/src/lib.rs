#![warn(missing_docs)]

//! # gridrm-core — the GridRM Gateway Local layer
//!
//! This crate is the paper's primary contribution (§2–§4): a gateway that
//! gives clients a homogeneous SQL view over heterogeneous local data
//! sources through pluggable drivers, with caching, history, events,
//! security and runtime administration. The module map follows Figs 2–4:
//!
//! | Paper component | Module |
//! |---|---|
//! | Abstract Client Interface Layer | [`acil`] |
//! | Coarse/Fine Grained Security Layers | [`security`] |
//! | Request Manager | [`request`] |
//! | Connection Manager + pool | [`connection`] |
//! | GridRM Driver Manager | [`driver_manager`] |
//! | Cache Controller | [`cache`] |
//! | Event Manager (Fig 4) | [`events`] |
//! | Historical data | [`history`] |
//! | Session Management | [`session`] |
//! | Resource alerts (Fig 9 thresholds) | [`alerts`] |
//! | Driver/data-source administration (Figs 6–8) | [`admin`] |
//! | Gateway policy | [`config`] |
//! | Data-source health state machine + probes | [`health`] |
//! | Continuous queries & streaming subscriptions | [`stream`] |
//!
//! The [`gateway::Gateway`] facade wires everything together; the Global
//! layer (`gridrm-global`) stacks GMA routing on top of it.

pub mod acil;
pub mod admin;
pub mod alerts;
pub mod cache;
pub mod config;
pub mod connection;
pub mod driver_manager;
pub mod events;
pub mod explain;
pub mod gateway;
pub mod health;
pub mod history;
pub mod request;
pub mod security;
pub mod session;
pub mod singleflight;
pub mod stream;

pub use acil::{
    ClientInterface, ClientRequest, ClientResponse, OutcomeStatus, QueryBuilder, QueryExecutor,
    QueryMode, ResultPolicy, SourceOutcome,
};
pub use admin::{
    render_tree_text, AdminInterface, AdminResponse, AdminStatus, DataSourceConfig, SourceStatus,
    TreeNode,
};
pub use alerts::{AlertEngine, AlertRule, Comparison};
pub use cache::{CacheController, CacheSnapshot};
pub use config::GatewayConfig;
pub use connection::{ConnectionManager, PoolSnapshot};
pub use driver_manager::{FailurePolicy, GridRMDriverManager, ResolutionSnapshot};
pub use events::{EventManager, EventSnapshot, GridRMEvent, ListenerFilter, Severity};
pub use gateway::Gateway;
pub use health::{
    HealthConfig, HealthMonitor, HealthState, HealthTransition, SourceHealthSnapshot,
};
pub use history::HistoryManager;
pub use request::{RequestManager, RequestSnapshot};
pub use security::{CoarseOperation, Decision, Identity, SecurityPolicy};
pub use session::{SessionManager, SessionToken};
pub use singleflight::SingleFlight;
pub use stream::{
    BackpressurePolicy, StreamDelta, StreamManager, SubscribeSpec, SubscriptionId,
    SubscriptionSnapshot,
};
