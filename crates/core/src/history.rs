//! Historical data (paper §3.1.1): "the RequestManager uses the
//! ConnectionManager to execute real-time queries, while historical data
//! is retrieved from the Gateway's internal database". Harvested rows are
//! recorded in narrow form (one row per attribute value) so that clients
//! can ask arbitrary SQL questions about any attribute's history, and
//! events are recorded "for historical analysis" (§3.1.5).

use crate::events::GridRMEvent;
use gridrm_dbc::{DbcResult, ResultSet, RowSet, SqlError};
use gridrm_sqlparse::ast::ColumnDef;
use gridrm_sqlparse::{SqlType, SqlValue};
use gridrm_store::{Store, StoreError, Table};

/// Table holding harvested metric samples.
pub const HISTORY_TABLE: &str = "history";
/// Table holding dispatched events.
pub const EVENTS_TABLE: &str = "events";

/// The gateway's historical store facade.
#[derive(Clone)]
pub struct HistoryManager {
    store: Store,
}

impl HistoryManager {
    /// Create the manager and its schema inside `store`.
    pub fn new(store: Store) -> Result<HistoryManager, StoreError> {
        let mk = |name: &str, cols: &[(&str, SqlType)]| {
            Table::new(
                name,
                cols.iter()
                    .map(|(n, t)| ColumnDef {
                        name: (*n).to_owned(),
                        ty: *t,
                        primary_key: false,
                    })
                    .collect(),
            )
        };
        store.with(|db| {
            if !db.has_table(HISTORY_TABLE) {
                db.create_table(mk(
                    HISTORY_TABLE,
                    &[
                        ("at", SqlType::Timestamp),
                        ("source", SqlType::Str),
                        ("grp", SqlType::Str),
                        ("hostname", SqlType::Str),
                        ("attr", SqlType::Str),
                        ("num", SqlType::Float),
                        ("text", SqlType::Str),
                    ],
                ));
            }
            if !db.has_table(EVENTS_TABLE) {
                db.create_table(mk(
                    EVENTS_TABLE,
                    &[
                        ("at", SqlType::Timestamp),
                        ("id", SqlType::Int),
                        ("source", SqlType::Str),
                        ("hostname", SqlType::Str),
                        ("severity", SqlType::Str),
                        ("category", SqlType::Str),
                        ("message", SqlType::Str),
                        ("value", SqlType::Float),
                    ],
                ));
            }
        });
        Ok(HistoryManager { store })
    }

    /// The underlying store (mounted for the JDBC-GridRM driver).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Record a harvested result set: one narrow row per (row, column)
    /// pair, keyed by the row's `Hostname`/`SourceHost` when present.
    /// Returns the number of samples recorded.
    pub fn record_rows(
        &self,
        source: &str,
        group: &str,
        rows: &RowSet,
        at_ms: i64,
    ) -> Result<usize, StoreError> {
        let meta = rows.meta().clone();
        let host_idx = meta
            .column_index("Hostname")
            .or_else(|_| meta.column_index("SourceHost"))
            .ok();
        let mut inserted = 0usize;
        self.store.with(|db| -> Result<(), StoreError> {
            let table = db.table_mut(HISTORY_TABLE)?;
            for row in rows.rows() {
                let hostname = host_idx
                    .and_then(|i| row.get(i))
                    .map(|v| v.to_string())
                    .unwrap_or_default();
                for (i, value) in row.iter().enumerate() {
                    if value.is_null() {
                        continue;
                    }
                    let attr = meta.column_name(i).unwrap_or("?").to_owned();
                    let (num, text) = match value.as_f64() {
                        Some(x) => (SqlValue::Float(x), SqlValue::Null),
                        None => (SqlValue::Null, SqlValue::Str(value.to_string())),
                    };
                    table.insert(
                        &[],
                        vec![
                            SqlValue::Timestamp(at_ms),
                            SqlValue::Str(source.to_owned()),
                            SqlValue::Str(group.to_owned()),
                            SqlValue::Str(hostname.clone()),
                            SqlValue::Str(attr),
                            num,
                            text,
                        ],
                    )?;
                    inserted += 1;
                }
            }
            Ok(())
        })?;
        Ok(inserted)
    }

    /// Record a dispatched event.
    pub fn record_event(&self, e: &GridRMEvent) -> Result<(), StoreError> {
        self.store.with(|db| {
            db.table_mut(EVENTS_TABLE)?.insert(
                &[],
                vec![
                    SqlValue::Timestamp(e.at_ms),
                    SqlValue::Int(e.id as i64),
                    SqlValue::Str(e.source.clone()),
                    SqlValue::from(e.hostname.clone()),
                    SqlValue::Str(e.severity.name().to_owned()),
                    SqlValue::Str(e.category.clone()),
                    SqlValue::Str(e.message.clone()),
                    SqlValue::from(e.value),
                ],
            )
        })
    }

    /// Run a historical SQL query (the §3.1.1 path).
    pub fn query(&self, sql: &str, now_ms: i64) -> DbcResult<RowSet> {
        self.store
            .query(sql, now_ms)
            .map_err(|e| SqlError::Driver(e.to_string()))
    }

    /// Apply retention: drop samples and events older than `cutoff_ms`.
    /// Returns `(samples_dropped, events_dropped)`.
    pub fn retain_since(&self, cutoff_ms: i64) -> Result<(usize, usize), StoreError> {
        let a = self.store.retain_since(HISTORY_TABLE, "at", cutoff_ms)?;
        let b = self.store.retain_since(EVENTS_TABLE, "at", cutoff_ms)?;
        Ok((a, b))
    }

    /// Convenience: the time series of one numeric attribute for one host,
    /// oldest first, as `(at_ms, value)` pairs. Feeds the admin tree
    /// view's "click icon to plot historical/current values" (Fig 9).
    pub fn series(
        &self,
        source: &str,
        group: &str,
        hostname: &str,
        attr: &str,
    ) -> DbcResult<Vec<(i64, f64)>> {
        let sql = format!(
            "SELECT at, num FROM {HISTORY_TABLE} WHERE source = '{}' AND grp = '{}' \
             AND hostname = '{}' AND attr = '{}' AND num IS NOT NULL ORDER BY at",
            source.replace('\'', "''"),
            group.replace('\'', "''"),
            hostname.replace('\'', "''"),
            attr.replace('\'', "''"),
        );
        let mut rs = self.query(&sql, 0)?;
        let mut out = Vec::with_capacity(rs.len());
        while rs.advance()? {
            out.push((rs.get_timestamp(0)?, rs.get_f64(1)?));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Severity;
    use gridrm_dbc::{ColumnMeta, ResultSetMetaData};

    fn history() -> HistoryManager {
        HistoryManager::new(Store::new()).unwrap()
    }

    fn sample_rows() -> RowSet {
        RowSet::new(
            ResultSetMetaData::new(vec![
                ColumnMeta::new("Hostname", SqlType::Str),
                ColumnMeta::new("Load1", SqlType::Float),
                ColumnMeta::new("Model", SqlType::Str),
                ColumnMeta::new("Missing", SqlType::Float),
            ]),
            vec![
                vec![
                    SqlValue::Str("node01".into()),
                    SqlValue::Float(0.5),
                    SqlValue::Str("Xeon".into()),
                    SqlValue::Null,
                ],
                vec![
                    SqlValue::Str("node02".into()),
                    SqlValue::Float(1.5),
                    SqlValue::Str("Xeon".into()),
                    SqlValue::Null,
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn record_and_query_rows() {
        let h = history();
        let n = h
            .record_rows(
                "jdbc:snmp://node01/public",
                "Processor",
                &sample_rows(),
                1000,
            )
            .unwrap();
        // 3 non-null values per row × 2 rows.
        assert_eq!(n, 6);
        let rs = h
            .query(
                "SELECT COUNT(*) FROM history WHERE attr = 'Load1' AND num > 1.0",
                0,
            )
            .unwrap();
        assert_eq!(rs.rows()[0][0], SqlValue::Int(1));
    }

    #[test]
    fn series_extraction() {
        let h = history();
        for t in 0..5 {
            h.record_rows("src", "Processor", &sample_rows(), t * 1000)
                .unwrap();
        }
        let series = h.series("src", "Processor", "node02", "Load1").unwrap();
        assert_eq!(series.len(), 5);
        assert_eq!(series[0].0, 0);
        assert_eq!(series[4], (4000, 1.5));
        assert!(h
            .series("src", "Processor", "ghost", "Load1")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn record_and_query_events() {
        let h = history();
        h.record_event(&GridRMEvent {
            id: 7,
            at_ms: 500,
            source: "node0:snmp".into(),
            hostname: Some("node0".into()),
            severity: Severity::Critical,
            category: "cpu.load".into(),
            message: "load high".into(),
            value: Some(7.5),
        })
        .unwrap();
        let rs = h
            .query(
                "SELECT severity, value FROM events WHERE category = 'cpu.load'",
                0,
            )
            .unwrap();
        assert_eq!(rs.rows()[0][0], SqlValue::Str("critical".into()));
        assert_eq!(rs.rows()[0][1], SqlValue::Float(7.5));
    }

    #[test]
    fn retention() {
        let h = history();
        for t in [0i64, 10_000, 20_000] {
            h.record_rows("s", "g", &sample_rows(), t).unwrap();
        }
        let (dropped, _) = h.retain_since(10_000).unwrap();
        assert_eq!(dropped, 6);
        let rs = h.query("SELECT COUNT(*) FROM history", 0).unwrap();
        assert_eq!(rs.rows()[0][0], SqlValue::Int(12));
    }

    #[test]
    fn text_values_stored_in_text_column() {
        let h = history();
        h.record_rows("s", "Processor", &sample_rows(), 0).unwrap();
        let rs = h
            .query("SELECT text FROM history WHERE attr = 'Model' LIMIT 1", 0)
            .unwrap();
        assert_eq!(rs.rows()[0][0], SqlValue::Str("Xeon".into()));
    }

    #[test]
    fn idempotent_schema_creation() {
        let store = Store::new();
        let _a = HistoryManager::new(store.clone()).unwrap();
        let _b = HistoryManager::new(store).unwrap(); // must not fail
    }
}
