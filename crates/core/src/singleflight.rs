//! Single-flight request coalescing: identical concurrent queries
//! against the same source share one driver execution and one cache
//! fill, instead of stampeding the data source N times for the same
//! answer (the ROADMAP's "heavy traffic from millions of users" knob).
//!
//! The first caller to arrive for a key becomes the **leader** and runs
//! the closure; callers that arrive while the leader is in flight
//! become **followers**, block on a condvar, and receive a clone of the
//! leader's result. Once the leader publishes, the key is retired so
//! the *next* identical query starts a fresh flight (coalescing is
//! about concurrency, not caching — freshness is the cache
//! controller's job).
//!
//! In the single-threaded simulation harness every caller is a leader
//! and this module is a no-op, which is exactly why it cannot disturb
//! `determinism.rs`: coalescing only changes behaviour when real OS
//! threads overlap, and then only by *removing* duplicate work.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

enum SlotState<V> {
    Pending,
    Done(V),
}

struct Slot<V> {
    state: Mutex<SlotState<V>>,
    ready: Condvar,
    waiters: Mutex<usize>,
}

impl<V> Slot<V> {
    fn new() -> Slot<V> {
        Slot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
            waiters: Mutex::new(0),
        }
    }
}

/// A map of in-flight computations keyed by `K`, deduplicating
/// concurrent identical work.
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Slot<V>>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlight<K, V> {
    /// An empty flight map.
    pub fn new() -> SingleFlight<K, V> {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Run `f` under single-flight semantics for `key`.
    ///
    /// Returns `(value, coalesced)`: `coalesced` is `false` for the
    /// leader that actually executed `f` and `true` for followers that
    /// shared the leader's published result.
    pub fn execute(&self, key: K, f: impl FnOnce() -> V) -> (V, bool) {
        let (slot, leader) = {
            let mut map = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
            match map.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot::new());
                    map.insert(key.clone(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };

        if leader {
            let value = f();
            {
                let mut state = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
                *state = SlotState::Done(value.clone());
            }
            // Retire the key before waking followers: queries arriving
            // from here on start a fresh flight.
            self.inflight
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&key);
            slot.ready.notify_all();
            (value, false)
        } else {
            *slot.waiters.lock().unwrap_or_else(PoisonError::into_inner) += 1;
            let mut state = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
            let value = loop {
                if let SlotState::Done(v) = &*state {
                    break v.clone();
                }
                state = slot
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            };
            drop(state);
            *slot.waiters.lock().unwrap_or_else(PoisonError::into_inner) -= 1;
            (value, true)
        }
    }

    /// Number of followers currently blocked on `key`'s flight
    /// (0 when nothing is in flight). Lets tests synchronise on "the
    /// follower has actually joined" without timing races.
    pub fn waiters(&self, key: &K) -> usize {
        let slot = {
            self.inflight
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .get(key)
                .map(Arc::clone)
        };
        slot.map(|s| *s.waiters.lock().unwrap_or_else(PoisonError::into_inner))
            .unwrap_or(0)
    }

    /// True when a flight for `key` is currently executing.
    pub fn in_flight(&self, key: &K) -> bool {
        self.inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(key)
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> SingleFlight<K, V> {
        SingleFlight::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::thread;

    #[test]
    fn sequential_calls_each_execute() {
        let sf: SingleFlight<&'static str, u32> = SingleFlight::new();
        let calls = AtomicUsize::new(0);
        let run = || {
            sf.execute("k", || {
                calls.fetch_add(1, Ordering::SeqCst);
                7
            })
        };
        assert_eq!(run(), (7, false));
        assert_eq!(run(), (7, false));
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert!(!sf.in_flight(&"k"));
    }

    #[test]
    fn concurrent_identical_calls_share_one_execution() {
        let sf: Arc<SingleFlight<String, u32>> = Arc::new(SingleFlight::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();

        let leader = {
            let sf = Arc::clone(&sf);
            let calls = Arc::clone(&calls);
            thread::spawn(move || {
                sf.execute("q".to_owned(), move || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap(); // hold the flight open
                    42
                })
            })
        };
        entered_rx.recv().unwrap(); // leader is inside the closure

        let follower = {
            let sf = Arc::clone(&sf);
            let calls = Arc::clone(&calls);
            thread::spawn(move || {
                sf.execute("q".to_owned(), move || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    99 // must never run
                })
            })
        };
        // Wait until the follower is parked on the flight, then let the
        // leader publish.
        while sf.waiters(&"q".to_owned()) == 0 {
            thread::yield_now();
        }
        release_tx.send(()).unwrap();

        assert_eq!(leader.join().unwrap(), (42, false));
        assert_eq!(follower.join().unwrap(), (42, true));
        assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one execution");
        assert!(!sf.in_flight(&"q".to_owned()));
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let sf: SingleFlight<u32, u32> = SingleFlight::new();
        assert_eq!(sf.execute(1, || 10), (10, false));
        assert_eq!(sf.execute(2, || 20), (20, false));
    }
}
