//! The Gateway facade: wires every Local-layer component together
//! (Fig 2/Fig 3) and exposes the ACIL entry point.

use crate::acil::{ClientRequest, ClientResponse, QueryExecutor};
use crate::admin::AdminInterface;
use crate::alerts::AlertEngine;
use crate::cache::CacheController;
use crate::config::GatewayConfig;
use crate::connection::ConnectionManager;
use crate::driver_manager::GridRMDriverManager;
use crate::events::EventManager;
use crate::health::{HealthConfig, HealthMonitor, HealthState};
use crate::history::HistoryManager;
use crate::request::RequestManager;
use crate::security::{Identity, SecurityPolicy};
use crate::session::{SessionManager, SessionToken};
use crate::stream::{StreamDelta, StreamManager, StreamSettings, SubscribeSpec, SubscriptionId};
use crossbeam::channel::Receiver;
use gridrm_dbc::{ColumnMeta, DbcResult, JdbcUrl, ResultSetMetaData, RowSet};
use gridrm_glue::SchemaManager;
use gridrm_simnet::{Network, Push, SimClock};
use gridrm_sqlparse::{SqlType, SqlValue, Statement};
use gridrm_store::Store;
use gridrm_telemetry::{
    CostVector, GatewayTelemetry, IntrusionCause, Labels, TelemetryCapacities,
    DEFAULT_TRACE_CAPACITY,
};
use parking_lot::RwLock;
use std::sync::Arc;

/// A GridRM gateway: "an access point to local resource data within its
/// local control" (§1.1).
pub struct Gateway {
    config: GatewayConfig,
    clock: Arc<SimClock>,
    network: Arc<Network>,
    schema: Arc<SchemaManager>,
    driver_manager: Arc<GridRMDriverManager>,
    connections: Arc<ConnectionManager>,
    cache: Arc<CacheController>,
    history: HistoryManager,
    events: Arc<EventManager>,
    sessions: Arc<SessionManager>,
    security: Arc<RwLock<SecurityPolicy>>,
    alerts: Arc<AlertEngine>,
    admin: Arc<AdminInterface>,
    request: Arc<RequestManager>,
    telemetry: GatewayTelemetry,
    health: Arc<HealthMonitor>,
    streams: Arc<StreamManager>,
    /// Native pushes (traps, streamed events) addressed to this gateway.
    push_rx: Receiver<Push>,
}

impl Gateway {
    /// Build and wire a gateway. Registers the gateway's address on the
    /// network (so agents can push traps to it) and mounts the history
    /// store for the JDBC-GridRM driver under the name `history`.
    pub fn new(config: GatewayConfig, network: Arc<Network>) -> Arc<Gateway> {
        let clock = network.clock().clone();
        let telemetry = GatewayTelemetry::with_capacities(
            clock.clone(),
            TelemetryCapacities {
                traces: DEFAULT_TRACE_CAPACITY,
                journal: config.journal_capacity,
                slow_queries: config.slow_query_log_capacity,
                slow_query_threshold_ms: config.slow_query_threshold_ms,
            },
        );
        // Spans are stamped with the gateway's Grid identity so a
        // multi-site trace reassembles unambiguously.
        telemetry.set_identity(&config.site, &config.name);
        telemetry
            .timeseries()
            .configure(config.timeseries_interval_ms, config.timeseries_capacity);
        telemetry.slo().configure(&config.slos);
        telemetry
            .costs()
            .set_budget(config.cost_budget_bytes, config.cost_budget_rows);
        let schema = Arc::new(SchemaManager::new());
        let driver_manager = Arc::new(GridRMDriverManager::new());
        let connections = Arc::new(ConnectionManager::new(
            driver_manager.clone(),
            config.pool_max_idle,
        ));
        let cache = Arc::new(CacheController::new(config.cache_ttl_ms));
        let store = Store::new();
        // xlint: allow(hot-path-panic) -- startup-only: runs once in new(), before any request is served
        let history = HistoryManager::new(store).expect("fresh store accepts schema");
        let events = EventManager::new(config.event_fast_capacity);
        let sessions = Arc::new(SessionManager::new(config.session_ttl_ms));
        let security = Arc::new(RwLock::new(SecurityPolicy::permissive()));
        let alerts = Arc::new(AlertEngine::new());
        let admin = Arc::new(AdminInterface::new(driver_manager.clone(), cache.clone()));
        admin.attach_telemetry(telemetry.clone());
        connections.set_telemetry(telemetry.clone());
        // Data-source health: the state machine is fed passively by the
        // ConnectionManager's execute/checkout outcomes and actively by
        // the probe scheduler in `pump()`.
        let health = Arc::new(HealthMonitor::new(
            HealthConfig {
                probe_interval_ms: config.probe_interval_ms,
                probe_timeout_ms: config.probe_timeout_ms,
                down_after: config.health_down_after,
                up_after: config.health_up_after,
            },
            telemetry.journal().clone(),
        ));
        connections.set_health(health.clone());
        events.set_journal(telemetry.journal().clone(), clock.clone());
        admin.attach_health(health.clone());
        let request = Arc::new(RequestManager::new(
            connections.clone(),
            cache.clone(),
            history.clone(),
            events.clone(),
            alerts.clone(),
            sessions.clone(),
            security.clone(),
            clock.clone(),
            config.record_history,
            Some(telemetry.clone()),
        ));
        request.set_coalesce_identical(config.coalesce_identical);
        request.set_default_deadline_ms(config.default_deadline_ms);
        // Retrofit every subsystem's counters onto the shared registry:
        // the stats structs keep their handles, the registry sees the
        // same cells.
        {
            let registry = telemetry.registry();
            request.stats().register_into(registry);
            driver_manager.stats().register_into(registry);
            connections.stats().register_into(registry);
            cache.stats().register_into(registry);
            events.stats().register_into(registry);
            health.stats().register_into(registry);
            telemetry.journal().stats().register_into(registry);
            telemetry.slow_queries().register_into(registry);
        }
        // The live observability plane: standing queries registered by
        // `subscribe` / `SELECT … EVERY n`, evaluated incrementally in
        // `pump`. Construction registers the streaming metric families.
        let streams = Arc::new(StreamManager::new(
            StreamSettings {
                buffer_capacity: config.stream_buffer_capacity,
                backpressure: config.stream_backpressure,
                min_every_ms: config.stream_min_every_ms,
                max_subscribers: config.stream_max_subscribers,
            },
            format!("local:{}", config.name),
            Some(telemetry.clone()),
        ));
        admin.attach_streams(streams.clone());
        // Become reachable: agents push traps to `config.address`.
        network.register(
            &config.address,
            Arc::new(|_from: &str, _req: &[u8]| {
                // The Local layer speaks to clients in-process; RPC to the
                // gateway goes through the Global layer's `:gma` endpoint.
                b"gridrm-gateway: use the :gma endpoint for RPC".to_vec()
            }),
        );
        let push_rx = network
            .subscribe(&config.address)
            .expect("gateway endpoint just registered"); // xlint: allow(hot-path-panic) -- startup-only: register() on this address is two statements up
        Arc::new(Gateway {
            config,
            clock,
            network,
            schema,
            driver_manager,
            connections,
            cache,
            history,
            events,
            sessions,
            security,
            alerts,
            admin,
            request,
            telemetry,
            health,
            streams,
            push_rx,
        })
    }

    /// The gateway's configuration.
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The network the gateway lives on.
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// The Naming Schema Manager (§3.1.4).
    pub fn schema(&self) -> &Arc<SchemaManager> {
        &self.schema
    }

    /// The GridRM Driver Manager (§3.1.3).
    pub fn driver_manager(&self) -> &Arc<GridRMDriverManager> {
        &self.driver_manager
    }

    /// The Connection Manager (§3.1.2).
    pub fn connections(&self) -> &Arc<ConnectionManager> {
        &self.connections
    }

    /// The Cache Controller (§4).
    pub fn cache(&self) -> &Arc<CacheController> {
        &self.cache
    }

    /// Historical data (§3.1.1).
    pub fn history(&self) -> &HistoryManager {
        &self.history
    }

    /// The Event Manager (§3.1.5).
    pub fn events(&self) -> &Arc<EventManager> {
        &self.events
    }

    /// Session management.
    pub fn sessions(&self) -> &Arc<SessionManager> {
        &self.sessions
    }

    /// The security policy (shared, hot-swappable).
    pub fn security(&self) -> &Arc<RwLock<SecurityPolicy>> {
        &self.security
    }

    /// Replace the security policy.
    pub fn set_security_policy(&self, policy: SecurityPolicy) {
        *self.security.write() = policy;
    }

    /// Threshold alerting.
    pub fn alerts(&self) -> &Arc<AlertEngine> {
        &self.alerts
    }

    /// Administration (Figs 6–9).
    pub fn admin(&self) -> &Arc<AdminInterface> {
        &self.admin
    }

    /// The Request Manager (§3.1.1).
    pub fn request_manager(&self) -> &Arc<RequestManager> {
        &self.request
    }

    /// The gateway-wide telemetry hub: metric registry, trace ring
    /// buffer, and the clock that stamps trace stages.
    pub fn telemetry(&self) -> &GatewayTelemetry {
        &self.telemetry
    }

    /// The data-source health monitor (state machine + probe scheduler).
    pub fn health(&self) -> &Arc<HealthMonitor> {
        &self.health
    }

    /// The continuous-query subscription manager.
    pub fn streams(&self) -> &Arc<StreamManager> {
        &self.streams
    }

    /// Authenticate and open a session.
    pub fn login(&self, identity: Identity) -> SessionToken {
        self.sessions.open(identity, self.clock.now_millis())
    }

    /// Register a continuous-query subscription and run its initial
    /// evaluation, so the first [`Gateway::poll_deltas`] returns the
    /// current state as delta #1. Traced with `subscribe` and `delta`
    /// stages.
    pub fn subscribe(&self, spec: &SubscribeSpec) -> DbcResult<SubscriptionId> {
        let now = self.clock.now_millis();
        let mut span = match &spec.request.trace {
            Some(ctx) => self.telemetry.span_in(ctx, &spec.request.sql),
            None => self.telemetry.span(&spec.request.sql),
        };
        span.stage("subscribe");
        match self.streams.subscribe(spec, now) {
            Ok(id) => {
                // A joiner on an already-materialized standing query got
                // its snapshot synthesized at registration — evaluating
                // again would bill every such subscriber one execution,
                // which is exactly the cost sharing exists to avoid.
                if self.streams.pending(id) == 0 {
                    let ctx = span.context();
                    span.stage("delta");
                    self.streams.evaluate_for(id, now, |req| {
                        let traced = ClientRequest {
                            trace: Some(ctx.clone()),
                            ..req.clone()
                        };
                        self.request.handle(&traced).map(|r| r.rows)
                    });
                }
                span.finish("ok");
                Ok(id)
            }
            Err(e) => {
                span.finish("error");
                Err(e)
            }
        }
    }

    /// Drain up to `max` pending deltas (0 = all) from one
    /// subscription's buffer. Untraced: this is the per-subscriber hot
    /// path, and 10k pollers must not flood the trace ring.
    pub fn poll_deltas(&self, id: SubscriptionId, max: usize) -> DbcResult<Vec<StreamDelta>> {
        self.streams.poll(id, max, self.clock.now_millis())
    }

    /// Cancel a subscription. Returns whether it existed.
    pub fn cancel_subscription(&self, id: SubscriptionId) -> bool {
        self.streams.cancel(id, self.clock.now_millis())
    }

    /// The one-row acknowledgement a `SELECT … EVERY n` query answers
    /// with: the subscription id plus its effective delivery knobs.
    fn subscription_ack(&self, id: SubscriptionId) -> DbcResult<ClientResponse> {
        let snap = self
            .streams
            .snapshot()
            .into_iter()
            .find(|s| s.id == id)
            .ok_or_else(|| gridrm_dbc::SqlError::Internal("subscription vanished".into()))?;
        let meta = ResultSetMetaData::new(vec![
            ColumnMeta::new("Subscription", SqlType::Int),
            ColumnMeta::new("EveryMs", SqlType::Int),
            ColumnMeta::new("Policy", SqlType::Str),
            ColumnMeta::new("Buffer", SqlType::Int),
        ]);
        let rows = RowSet::new(
            meta,
            vec![vec![
                SqlValue::Int(snap.id as i64),
                SqlValue::Int(snap.every_ms as i64),
                SqlValue::Str(snap.policy),
                SqlValue::Int(snap.buffer_capacity as i64),
            ]],
        )?;
        Ok(ClientResponse {
            rows,
            warnings: Vec::new(),
            served_from_cache: 0,
            sources_ok: 0,
            outcomes: Vec::new(),
        })
    }

    /// `EXPLAIN [ANALYZE] SELECT … EVERY n`: run the full subscription
    /// lifecycle — register, initial delta evaluation, one delivery —
    /// under a single trace, cancel the temporary subscription, and
    /// answer with the span tree so the `subscribe`/`delta`/`deliver`
    /// stages are visible.
    fn explain_subscription(
        &self,
        request: &ClientRequest,
        analyze: bool,
        inner_sql: &str,
    ) -> DbcResult<ClientResponse> {
        let mut span = match &request.trace {
            Some(ctx) => self.telemetry.span_in(ctx, &request.sql),
            None => self.telemetry.span(&request.sql),
        };
        span.stage_with("explain", if analyze { "analyze" } else { "plan" });
        let trace_id = span.trace_id().to_owned();
        let ctx = span.context();
        let spec = SubscribeSpec {
            request: ClientRequest {
                sql: inner_sql.to_owned(),
                trace: Some(ctx.clone()),
                ..request.clone()
            },
            every_ms: None,
            buffer: None,
            backpressure: None,
        };
        match self.subscribe(&spec) {
            Ok(id) => {
                let now = self.clock.now_millis();
                let mut deliver = self.telemetry.span_in(&ctx, "deliver");
                let delivered = self.streams.poll(id, 0, now).map(|d| d.len()).unwrap_or(0);
                deliver.stage_with("deliver", &format!("{delivered} deltas"));
                deliver.finish("ok");
                self.streams.cancel(id, now);
                span.finish("ok");
            }
            Err(e) => {
                span.finish("error");
                return Err(e);
            }
        }
        let spans = self.telemetry.traces().for_trace(&trace_id);
        Ok(ClientResponse {
            rows: crate::explain::explain_rowset(&spans, analyze)?,
            warnings: Vec::new(),
            served_from_cache: 0,
            sources_ok: 0,
            outcomes: Vec::new(),
        })
    }

    /// Submit a client request (ACIL shortcut).
    ///
    /// A `SELECT … EVERY n` registers a subscription instead of
    /// answering rows: the response is a one-row acknowledgement
    /// carrying the subscription id (poll it with
    /// [`Gateway::poll_deltas`]). `EXPLAIN [ANALYZE]` over such a query
    /// traces the subscription lifecycle.
    pub fn query(&self, request: &ClientRequest) -> DbcResult<ClientResponse> {
        match gridrm_sqlparse::parse(&request.sql) {
            Ok(Statement::Select(sel)) if sel.every_ms.is_some() => {
                let spec = SubscribeSpec {
                    request: request.clone(),
                    every_ms: None,
                    buffer: None,
                    backpressure: None,
                };
                let id = self.subscribe(&spec)?;
                return self.subscription_ack(id);
            }
            Ok(Statement::Explain { analyze, inner }) => {
                if let Statement::Select(sel) = inner.as_ref() {
                    if sel.every_ms.is_some() {
                        return self.explain_subscription(request, analyze, &sel.to_string());
                    }
                }
            }
            _ => {}
        }
        let result = self.request.handle(request);
        // Feed the admin tree-view health model (Fig 9 icons) from the
        // structured per-source outcomes.
        let now = self.clock.now_millis();
        match &result {
            Ok(resp) => {
                for o in &resp.outcomes {
                    if o.status.is_success() {
                        self.admin.record_poll_ok(&o.source, now);
                    } else if let Some(w) = o.warning() {
                        self.admin.record_poll_error(&o.source, now, &w);
                    }
                }
            }
            Err(e) => {
                for s in &request.sources {
                    self.admin.record_poll_error(s, now, &e.to_string());
                }
            }
        }
        result
    }

    /// Run the gateway's periodic work: ingest pending native pushes
    /// through the Event Manager's formatters, dispatch buffered events
    /// (recording them into history and the admin health model), sweep
    /// expired cache entries and sessions, and apply history retention.
    /// Returns the number of events dispatched.
    pub fn pump(&self) -> usize {
        let now = self.clock.now_millis();
        // 0. Active health probes: every admin-registered source whose
        // probe interval has elapsed gets a lightweight ping through its
        // resolved driver. Probe transitions can re-promote a recovered
        // source (invalidating a cached fallback driver) and raise
        // alert events, which then dispatch in the same pump.
        for source in self.admin.list_sources() {
            if !self.health.probe_due(&source.url, now) {
                continue;
            }
            // Every probe costs the local site one request/response pair
            // against the data source: intrusion the monitoring system
            // itself imposes just by being on.
            let probe_cost = CostVector {
                msgs_out: 1,
                msgs_in: 1,
                ..CostVector::default()
            };
            self.telemetry.costs().count(&probe_cost);
            self.telemetry
                .costs()
                .intrude(&self.config.site, IntrusionCause::Probe, &probe_cost);
            match JdbcUrl::parse(&source.url) {
                Ok(url) => {
                    let started = self.clock.now_millis();
                    match self.connections.probe(&url) {
                        Ok(driver) => {
                            let elapsed = self.clock.now_millis().saturating_sub(started);
                            self.health
                                .record_probe_success(&source.url, &driver, now, elapsed);
                        }
                        Err(e) => {
                            self.health.record_probe_failure(
                                &source.url,
                                None,
                                &e.to_string(),
                                now,
                            );
                        }
                    }
                }
                Err(e) => {
                    self.health
                        .record_probe_failure(&source.url, None, &e.to_string(), now);
                }
            }
        }
        // Drain state transitions (from probes above and from passive
        // observation of query traffic since the last pump): re-promote
        // probe-verified recoveries and raise health alerts.
        for t in self.health.take_transitions() {
            if t.via_probe
                && t.to == HealthState::Up
                && matches!(t.from, HealthState::Down | HealthState::Degraded)
            {
                // A probe proved the source healthy again: unpin any
                // cached fallback driver so the preferred one can win
                // the next resolution.
                if let Ok(url) = JdbcUrl::parse(&t.source) {
                    self.driver_manager.invalidate_cached_driver(&url);
                }
            }
            if let Some(event) = self.alerts.health_alert(&t) {
                self.events.ingest(event);
            }
        }
        // 1. Native pushes → formatters → fast buffer. An agent update
        // also marks standing queries over that agent dirty, so the
        // continuous-query pass below re-evaluates them immediately
        // instead of waiting out their cadence.
        while let Ok(push) = self.push_rx.try_recv() {
            self.streams.mark_dirty(&push.from);
            self.events
                .ingest_native(&push.from, &push.payload, push.sent_at as i64);
        }
        // 2. Dispatch to listeners/transmitters; record history + health.
        let dispatched = self.events.dispatch();
        for event in &dispatched {
            let _ = self.history.record_event(event);
            self.admin.record_event(&event.source, now);
            self.streams.mark_dirty(&event.source);
        }
        // 3. Housekeeping.
        let registry = self.telemetry.registry();
        registry
            .gauge(
                "gridrm_cache_entries",
                "Live query-result cache entries",
                Labels::none(),
            )
            .set(self.cache.len() as f64);
        registry
            .gauge(
                "gridrm_pool_idle",
                "Idle pooled driver connections",
                Labels::none(),
            )
            .set(self.connections.idle_connections() as f64);
        for (state, count) in self.health.state_counts() {
            registry
                .gauge(
                    "gridrm_health_sources",
                    "Tracked data sources by health state",
                    Labels::from_pairs(&[("state", state.name())]),
                )
                .set(count as f64);
        }
        // 4. Time series & SLOs, after the gauge refresh above so the
        // recorder and the burn-rate engine both read current levels.
        // SLO alert events ingest now and dispatch on the next pump;
        // the journal entry and the gauges carry the exact fire time.
        self.telemetry.timeseries().maybe_sample(registry, now);
        let slo = self.telemetry.slo();
        slo.evaluate(now);
        for t in slo.take_transitions() {
            self.events.ingest(self.alerts.slo_alert(&t));
        }
        // 5. Continuous queries: due (or dirtied) standing queries
        // re-evaluate once each, and only the changed rows fan out to
        // subscriber buffers. 10k subscribers to one query cost one
        // evaluation here, not 10k re-polls.
        self.streams
            .pump(now, |req| self.request.handle(req).map(|r| r.rows));
        self.sessions.sweep(now);
        self.cache
            .sweep(now, self.config.cache_ttl_ms.saturating_mul(10));
        let cutoff = now.saturating_sub(self.config.history_retention_ms);
        if cutoff > 0 {
            let _ = self.history.retain_since(cutoff as i64);
        }
        dispatched.len()
    }
}

/// Local-only execution: every source is answered by this gateway's own
/// drivers. (The blanket impl in [`crate::acil`] makes this a
/// [`crate::acil::ClientInterface`] too.)
impl QueryExecutor for Gateway {
    fn execute(&self, request: &ClientRequest) -> DbcResult<ClientResponse> {
        self.query(request)
    }

    fn scope(&self) -> String {
        format!("local:{}", self.config.name)
    }
}
