//! The GridRM Driver Manager (paper §3.1.3): registers/unregisters
//! drivers, performs driver-to-resource allocation either **statically**
//! ("using driver preferences registered in advance by the user") or
//! **dynamically** ("selects a compatible driver at runtime"), keeps a
//! cache of "the driver last successfully used for a data source", and
//! applies configurable failure policies ("retry the driver, try another,
//! report the error", §3.1.3/§4).

use gridrm_dbc::{DbcResult, Driver, DriverManager, JdbcUrl, SqlError};
use gridrm_telemetry::{Counter, Labels, Registry, SpanBuilder};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// What to do when the selected driver fails a request (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FailurePolicy {
    /// "Provide notification of a connection failure": surface the error.
    Report,
    /// "Retry the specified drivers for n iterations".
    Retry(u32),
    /// "Dynamically select a new driver from the set of registered
    /// drivers", excluding those that already failed.
    #[default]
    TryNext,
}

/// Selection-path counters (experiment E5). The counters are shared
/// telemetry cells, so they can simultaneously live in a gateway-wide
/// [`Registry`] via [`ResolutionStats::register_into`].
#[derive(Debug, Default)]
pub struct ResolutionStats {
    /// Total resolutions requested.
    pub resolutions: Counter,
    /// Served from the last-success cache.
    pub cache_hits: Counter,
    /// Served from static preferences.
    pub static_hits: Counter,
    /// Fell through to a dynamic `accepts_url` scan.
    pub dynamic_scans: Counter,
    /// Cache invalidations after failures.
    pub invalidations: Counter,
}

/// Named point-in-time copy of [`ResolutionStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolutionSnapshot {
    /// Total resolutions requested.
    pub resolutions: u64,
    /// Served from the last-success cache.
    pub cache_hits: u64,
    /// Served from static preferences.
    pub static_hits: u64,
    /// Fell through to a dynamic `accepts_url` scan.
    pub dynamic_scans: u64,
    /// Cache invalidations after failures.
    pub invalidations: u64,
}

impl ResolutionStats {
    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> ResolutionSnapshot {
        ResolutionSnapshot {
            resolutions: self.resolutions.get(),
            cache_hits: self.cache_hits.get(),
            static_hits: self.static_hits.get(),
            dynamic_scans: self.dynamic_scans.get(),
            invalidations: self.invalidations.get(),
        }
    }

    /// Expose these counters in a metrics registry (shared cells: the
    /// struct and the registry observe the same values).
    pub fn register_into(&self, registry: &Registry) {
        let series = [
            ("resolutions", &self.resolutions),
            ("cache_hits", &self.cache_hits),
            ("static_hits", &self.static_hits),
            ("dynamic_scans", &self.dynamic_scans),
            ("invalidations", &self.invalidations),
        ];
        for (path, counter) in series {
            registry.expose_counter(
                "gridrm_driver_resolutions_total",
                "Driver-manager resolution outcomes by path",
                Labels::from_pairs(&[("path", path)]),
                counter,
            );
        }
    }
}

/// The GridRM Driver Manager wrapping the base registry.
pub struct GridRMDriverManager {
    base: DriverManager,
    /// Per-source prioritised driver-name preferences (Fig 8's "register a
    /// number of drivers to be used in prioritised order").
    preferences: RwLock<HashMap<String, Vec<String>>>,
    /// Per-source last successfully used driver.
    last_success: RwLock<HashMap<String, String>>,
    /// Per-source failure policy, with a gateway-wide default.
    policies: RwLock<HashMap<String, FailurePolicy>>,
    default_policy: RwLock<FailurePolicy>,
    stats: ResolutionStats,
}

impl GridRMDriverManager {
    /// Empty manager with the default failure policy.
    pub fn new() -> GridRMDriverManager {
        GridRMDriverManager {
            base: DriverManager::new(),
            preferences: RwLock::new(HashMap::new()),
            last_success: RwLock::new(HashMap::new()),
            policies: RwLock::new(HashMap::new()),
            default_policy: RwLock::new(FailurePolicy::default()),
            stats: ResolutionStats::default(),
        }
    }

    /// The wrapped base registry (registration API, Table 1).
    pub fn base(&self) -> &DriverManager {
        &self.base
    }

    /// Register a driver plug-in (runtime-safe, §3.2).
    pub fn register(&self, driver: Arc<dyn Driver>) {
        self.base.register(driver);
    }

    /// Unregister a driver and purge it from caches/preferences so future
    /// resolutions cannot hand it out.
    pub fn unregister(&self, name: &str) -> bool {
        let removed = self.base.unregister(name);
        if removed {
            self.last_success.write().retain(|_, d| d != name);
        }
        removed
    }

    /// Set (replace) the user's prioritised driver preference for a source.
    pub fn set_preferences(&self, url: &JdbcUrl, drivers: Vec<String>) {
        self.preferences.write().insert(url.to_string(), drivers);
    }

    /// Clear a source's preferences.
    pub fn clear_preferences(&self, url: &JdbcUrl) -> bool {
        self.preferences.write().remove(&url.to_string()).is_some()
    }

    /// Configure the failure policy for one source.
    pub fn set_policy(&self, url: &JdbcUrl, policy: FailurePolicy) {
        self.policies.write().insert(url.to_string(), policy);
    }

    /// Configure the gateway-wide default failure policy.
    pub fn set_default_policy(&self, policy: FailurePolicy) {
        *self.default_policy.write() = policy;
    }

    /// The failure policy in force for a source.
    pub fn policy_for(&self, url: &JdbcUrl) -> FailurePolicy {
        self.policies
            .read()
            .get(&url.to_string())
            .copied()
            .unwrap_or(*self.default_policy.read())
    }

    /// Resolve the driver for `url`, excluding drivers named in `exclude`
    /// (used by the TryNext policy). Order: last-success cache → static
    /// preferences → dynamic scan (Table 2).
    pub fn resolve_excluding(
        &self,
        url: &JdbcUrl,
        exclude: &[String],
    ) -> DbcResult<Arc<dyn Driver>> {
        self.resolve_excluding_traced(url, exclude, None)
    }

    /// [`GridRMDriverManager::resolve_excluding`] with an optional span:
    /// the resolution records which cache/preference/`accepts_url`
    /// candidates it weighed (`resolve_cache`, `resolve_candidate`), the
    /// failure policy in force (`resolve_policy`) and the final pick
    /// (`resolve_chosen`) — the raw material for `EXPLAIN`'s "why this
    /// driver" answer.
    pub fn resolve_excluding_traced(
        &self,
        url: &JdbcUrl,
        exclude: &[String],
        mut span: Option<&mut SpanBuilder>,
    ) -> DbcResult<Arc<dyn Driver>> {
        self.stats.resolutions.inc();
        let key = url.to_string();
        let traced = span.is_some();
        let mut note = |stage: &str, detail: &str| {
            if let Some(s) = span.as_deref_mut() {
                s.stage_with(stage, detail);
            }
        };
        if traced {
            note("resolve_policy", &format!("{:?}", self.policy_for(url)));
        }

        // 1. Last-success cache ("for performance, the GridRMDriverManager
        //    maintains a cache containing details of the driver last
        //    successfully used for a data source").
        let cached = self.last_success.read().get(&key).cloned();
        match cached {
            Some(name) if exclude.contains(&name) => {
                note("resolve_cache", &format!("{name} excluded"));
            }
            Some(name) => {
                if let Some(d) = self.base.get_by_name(&name) {
                    self.stats.cache_hits.inc();
                    note("resolve_cache", &format!("hit {name}"));
                    note("resolve_chosen", &format!("{name} via cache"));
                    return Ok(d);
                }
                note("resolve_cache", &format!("stale {name}"));
            }
            None => note("resolve_cache", "miss"),
        }

        // 2. Static preferences, in priority order.
        let prefs = self.preferences.read().get(&key).cloned();
        if let Some(prefs) = prefs {
            for name in &prefs {
                if exclude.contains(name) {
                    note("resolve_candidate", &format!("{name} static excluded"));
                    continue;
                }
                if let Some(d) = self.base.get_by_name(name) {
                    self.stats.static_hits.inc();
                    note("resolve_candidate", &format!("{name} static accepted"));
                    note("resolve_chosen", &format!("{name} via static preference"));
                    return Ok(d);
                }
                note("resolve_candidate", &format!("{name} static unregistered"));
            }
            // Explicit preferences exist but none are usable: that is a
            // configuration-level failure the user asked to control; fall
            // through to dynamic selection only under TryNext.
            if self.policy_for(url) != FailurePolicy::TryNext {
                return Err(SqlError::NoSuitableDriver(format!(
                    "{key} (preferred drivers unavailable)"
                )));
            }
        }

        // 3. Dynamic selection (Table 2's accepts_url scan).
        self.stats.dynamic_scans.inc();
        if !traced && exclude.is_empty() {
            // Untraced fast path through the base registry's own scan.
            return self.base.locate(url);
        }
        let drivers = self.base.drivers();
        for d in drivers {
            let name = d.name();
            if exclude.contains(&name) {
                note("resolve_candidate", &format!("{name} accepts_url excluded"));
                continue;
            }
            if d.accepts_url(url) {
                note("resolve_candidate", &format!("{name} accepts_url accepted"));
                note("resolve_chosen", &format!("{name} via accepts_url scan"));
                return Ok(d);
            }
            note("resolve_candidate", &format!("{name} accepts_url rejected"));
        }
        Err(SqlError::NoSuitableDriver(key))
    }

    /// Resolve with no exclusions.
    pub fn resolve(&self, url: &JdbcUrl) -> DbcResult<Arc<dyn Driver>> {
        self.resolve_excluding(url, &[])
    }

    /// Record a successful use of `driver` for `url` (feeds the cache).
    pub fn record_success(&self, url: &JdbcUrl, driver: &str) {
        self.last_success
            .write()
            .insert(url.to_string(), driver.to_owned());
    }

    /// Record a failed use: "configuration rules determine the actions that
    /// should occur if a cached driver reference is no longer valid" — at
    /// minimum the stale cache entry is dropped.
    pub fn record_failure(&self, url: &JdbcUrl, driver: &str) {
        let mut cache = self.last_success.write();
        if cache.get(&url.to_string()).map(String::as_str) == Some(driver) {
            cache.remove(&url.to_string());
            self.stats.invalidations.inc();
        }
    }

    /// Drop the cached last-success driver for `url` regardless of which
    /// driver is cached. Used on probe-driven health recovery: the cache
    /// may be pinned to a fallback driver, and clearing it lets the next
    /// resolution re-promote the preferred (now recovered) driver via
    /// static preferences or a dynamic scan.
    pub fn invalidate_cached_driver(&self, url: &JdbcUrl) -> bool {
        let removed = self.last_success.write().remove(&url.to_string()).is_some();
        if removed {
            self.stats.invalidations.inc();
        }
        removed
    }

    /// The cached last-success driver for a source, if any.
    pub fn cached_driver(&self, url: &JdbcUrl) -> Option<String> {
        self.last_success.read().get(&url.to_string()).cloned()
    }

    /// Selection counters.
    pub fn stats(&self) -> &ResolutionStats {
        &self.stats
    }
}

impl Default for GridRMDriverManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_dbc::{Connection, DriverMetaData, Properties};

    struct FakeDriver {
        name: &'static str,
        proto: &'static str,
        accept_wildcard: bool,
    }
    impl Driver for FakeDriver {
        fn meta(&self) -> DriverMetaData {
            DriverMetaData {
                name: self.name.to_owned(),
                subprotocol: self.proto.to_owned(),
                version: (1, 0),
                description: String::new(),
            }
        }
        fn accepts_url(&self, url: &JdbcUrl) -> bool {
            url.subprotocol == self.proto || (url.is_wildcard() && self.accept_wildcard)
        }
        fn connect(&self, _url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
            Err(SqlError::Connection("fake".into()))
        }
    }

    fn manager() -> GridRMDriverManager {
        let m = GridRMDriverManager::new();
        m.register(Arc::new(FakeDriver {
            name: "d-snmp",
            proto: "snmp",
            accept_wildcard: false,
        }));
        m.register(Arc::new(FakeDriver {
            name: "d-ganglia",
            proto: "ganglia",
            accept_wildcard: true,
        }));
        m.register(Arc::new(FakeDriver {
            name: "d-nws",
            proto: "nws",
            accept_wildcard: true,
        }));
        m
    }

    fn url(s: &str) -> JdbcUrl {
        JdbcUrl::parse(s).unwrap()
    }

    #[test]
    fn dynamic_then_cached() {
        let m = manager();
        let u = url("jdbc:://host/x");
        let d = m.resolve(&u).unwrap();
        assert_eq!(d.name(), "d-ganglia"); // first wildcard-acceptor
        m.record_success(&u, &d.name());
        let d2 = m.resolve(&u).unwrap();
        assert_eq!(d2.name(), "d-ganglia");
        let snap = m.stats().snapshot();
        assert_eq!(snap.resolutions, 2);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.dynamic_scans, 1);
    }

    #[test]
    fn static_preferences_take_priority() {
        let m = manager();
        let u = url("jdbc:://host/x");
        m.set_preferences(&u, vec!["d-nws".into(), "d-ganglia".into()]);
        assert_eq!(m.resolve(&u).unwrap().name(), "d-nws");
        let snap = m.stats().snapshot();
        assert_eq!(snap.static_hits, 1);
        assert_eq!(snap.dynamic_scans, 0);
        // Cache beats preferences on subsequent resolutions.
        m.record_success(&u, "d-ganglia");
        assert_eq!(m.resolve(&u).unwrap().name(), "d-ganglia");
    }

    #[test]
    fn preferences_fall_through_only_with_trynext() {
        let m = manager();
        let u = url("jdbc:snmp://host/x");
        m.set_preferences(&u, vec!["missing-driver".into()]);
        m.set_policy(&u, FailurePolicy::Report);
        assert!(m.resolve(&u).is_err());
        m.set_policy(&u, FailurePolicy::TryNext);
        assert_eq!(m.resolve(&u).unwrap().name(), "d-snmp");
    }

    #[test]
    fn failure_invalidates_cache() {
        let m = manager();
        let u = url("jdbc:snmp://host/x");
        m.record_success(&u, "d-snmp");
        assert_eq!(m.cached_driver(&u).as_deref(), Some("d-snmp"));
        m.record_failure(&u, "d-snmp");
        assert!(m.cached_driver(&u).is_none());
        // Failures of a *different* driver leave the cache alone.
        m.record_success(&u, "d-snmp");
        m.record_failure(&u, "d-other");
        assert!(m.cached_driver(&u).is_some());
    }

    #[test]
    fn invalidate_clears_any_cached_driver() {
        let m = manager();
        let u = url("jdbc:snmp://host/x");
        // Unlike record_failure, invalidation is unconditional: it clears
        // the cache even when a *different* driver is pinned (the
        // re-promotion path after a probe-driven recovery).
        m.record_success(&u, "d-ganglia");
        assert!(m.invalidate_cached_driver(&u));
        assert!(m.cached_driver(&u).is_none());
        assert!(!m.invalidate_cached_driver(&u), "already clear");
        assert_eq!(m.stats().snapshot().invalidations, 1);
        // Next resolution falls back to the static/dynamic order.
        assert_eq!(m.resolve(&u).unwrap().name(), "d-snmp");
    }

    #[test]
    fn exclusion_skips_failed_drivers() {
        let m = manager();
        let u = url("jdbc:://host/x");
        let d = m.resolve_excluding(&u, &["d-ganglia".to_owned()]).unwrap();
        assert_eq!(d.name(), "d-nws");
        assert!(m
            .resolve_excluding(&u, &["d-ganglia".to_owned(), "d-nws".to_owned()])
            .is_err());
    }

    #[test]
    fn traced_resolution_records_candidates() {
        use gridrm_telemetry::GatewayTelemetry;
        let m = manager();
        let t = GatewayTelemetry::new(gridrm_simnet::SimClock::new());
        let u = url("jdbc:://host/x");
        let mut span = t.span("resolve jdbc:://host/x");
        let d = m
            .resolve_excluding_traced(&u, &["d-ganglia".to_owned()], Some(&mut span))
            .unwrap();
        assert_eq!(d.name(), "d-nws");
        span.finish("ok");
        let rec = &t.traces().recent()[0];
        let stages: Vec<(&str, &str)> = rec
            .stages
            .iter()
            .map(|s| (s.stage.as_str(), s.detail.as_deref().unwrap_or("")))
            .collect();
        assert!(stages.contains(&("resolve_cache", "miss")));
        assert!(stages.contains(&("resolve_candidate", "d-snmp accepts_url rejected")));
        assert!(stages.contains(&("resolve_candidate", "d-ganglia accepts_url excluded")));
        assert!(stages.contains(&("resolve_candidate", "d-nws accepts_url accepted")));
        assert!(stages.contains(&("resolve_chosen", "d-nws via accepts_url scan")));
    }

    #[test]
    fn unregister_purges_cache() {
        let m = manager();
        let u = url("jdbc:ganglia://host/x");
        m.record_success(&u, "d-ganglia");
        assert!(m.unregister("d-ganglia"));
        assert!(m.cached_driver(&u).is_none());
        // Dynamic resolution no longer offers it.
        assert!(m.resolve(&u).is_err());
    }

    #[test]
    fn per_source_policy_overrides_default() {
        let m = manager();
        let u = url("jdbc:snmp://a/x");
        assert_eq!(m.policy_for(&u), FailurePolicy::TryNext);
        m.set_policy(&u, FailurePolicy::Retry(3));
        assert_eq!(m.policy_for(&u), FailurePolicy::Retry(3));
        m.set_default_policy(FailurePolicy::Report);
        assert_eq!(m.policy_for(&url("jdbc:snmp://b/x")), FailurePolicy::Report);
        assert_eq!(m.policy_for(&u), FailurePolicy::Retry(3));
    }

    #[test]
    fn stale_cached_name_falls_through() {
        let m = manager();
        let u = url("jdbc:nws://host/x");
        m.record_success(&u, "gone-driver");
        // Cache points at an unregistered driver: resolution must still
        // succeed dynamically.
        assert_eq!(m.resolve(&u).unwrap().name(), "d-nws");
    }
}
