//! Per-data-source health: a debounced state machine fed passively by
//! query outcomes (Connection/Driver managers) and actively by the probe
//! scheduler in [`crate::gateway::Gateway::pump`]. Every transition is
//! journalled and queued for the alert engine; snapshots feed the Admin
//! JSON exposition and the `gridrm_health` virtual SQL table.
//!
//! The state machine (see `docs/observability.md` for the diagram):
//!
//! ```text
//!  Unknown --success--> Up --failure--> Degraded --down_after failures--> Down
//!     |                  ^                 |  ^                             |
//!     +----failure-------+--up_after-------+  +-------up_after successes---+
//!          (-> Degraded)      successes
//! ```

use gridrm_telemetry::{
    Counter, Journal, JournalSeverity, Labels, Registry, KIND_PROBE, KIND_STATE_TRANSITION,
};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Health of one data source as seen by the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum HealthState {
    /// Recent interactions succeed.
    Up,
    /// Failures observed, but fewer than the down threshold.
    Degraded,
    /// Consecutive failures reached the down threshold.
    Down,
    /// Never interacted with.
    #[default]
    Unknown,
}

impl HealthState {
    /// Lower-case name (`up`, `degraded`, `down`, `unknown`).
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Up => "up",
            HealthState::Degraded => "degraded",
            HealthState::Down => "down",
            HealthState::Unknown => "unknown",
        }
    }
}

/// Debounce and probe parameters (subset of `GatewayConfig`).
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Virtual ms between active probes of one source.
    pub probe_interval_ms: u64,
    /// A probe slower than this (virtual ms) counts as failed.
    pub probe_timeout_ms: u64,
    /// Consecutive failures before `Degraded` becomes `Down`.
    pub down_after: u32,
    /// Consecutive successes before `Degraded`/`Down` becomes `Up`.
    pub up_after: u32,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            probe_interval_ms: 30_000,
            probe_timeout_ms: 5_000,
            down_after: 3,
            up_after: 2,
        }
    }
}

/// One state-machine transition, queued for alerting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthTransition {
    /// The data-source URL.
    pub source: String,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// Virtual time of the transition.
    pub at_ms: u64,
    /// True when an active probe (not a client query) drove it.
    pub via_probe: bool,
}

/// Point-in-time health of one source (JSON + SQL exposition row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceHealthSnapshot {
    /// The data-source URL.
    pub source: String,
    /// Current state.
    pub state: HealthState,
    /// Failures since the last success.
    pub consecutive_failures: u32,
    /// Successes since the last failure.
    pub consecutive_successes: u32,
    /// Last successful interaction.
    pub last_ok_ms: Option<u64>,
    /// Last error observed.
    pub last_error: Option<String>,
    /// Last active probe.
    pub last_probe_ms: Option<u64>,
    /// Driver involved in the last failure.
    pub last_failed_driver: Option<String>,
    /// State transitions so far.
    pub transitions: u64,
    /// When the state last changed.
    pub last_transition_ms: Option<u64>,
}

/// Health counters. Shared telemetry cells, exposable in a gateway-wide
/// [`Registry`] via [`HealthStats::register_into`].
#[derive(Debug, Default)]
pub struct HealthStats {
    /// Transitions into `Up`.
    pub to_up: Counter,
    /// Transitions into `Degraded`.
    pub to_degraded: Counter,
    /// Transitions into `Down`.
    pub to_down: Counter,
    /// Probes that succeeded.
    pub probes_ok: Counter,
    /// Probes that failed (error or timeout).
    pub probes_failed: Counter,
}

impl HealthStats {
    /// Expose these counters in a metrics registry (shared cells: the
    /// struct and the registry observe the same values).
    pub fn register_into(&self, registry: &Registry) {
        let transitions = [
            ("up", &self.to_up),
            ("degraded", &self.to_degraded),
            ("down", &self.to_down),
        ];
        for (state, counter) in transitions {
            registry.expose_counter(
                "gridrm_health_transitions_total",
                "Health state-machine transitions by target state",
                Labels::from_pairs(&[("state", state)]),
                counter,
            );
        }
        let probes = [("ok", &self.probes_ok), ("failed", &self.probes_failed)];
        for (outcome, counter) in probes {
            registry.expose_counter(
                "gridrm_health_probes_total",
                "Active health probes by outcome",
                Labels::from_pairs(&[("outcome", outcome)]),
                counter,
            );
        }
    }
}

#[derive(Debug, Default)]
struct SourceRecord {
    state: HealthState,
    consecutive_failures: u32,
    consecutive_successes: u32,
    last_ok_ms: Option<u64>,
    last_error: Option<String>,
    last_probe_ms: Option<u64>,
    last_failed_driver: Option<String>,
    transitions: u64,
    last_transition_ms: Option<u64>,
}

/// The per-gateway health monitor.
pub struct HealthMonitor {
    config: HealthConfig,
    records: RwLock<BTreeMap<String, SourceRecord>>,
    journal: Arc<Journal>,
    /// Transitions not yet drained by the gateway pump (for alerting).
    pending: Mutex<Vec<HealthTransition>>,
    stats: HealthStats,
}

impl HealthMonitor {
    /// Monitor journalling into `journal` with the given thresholds.
    pub fn new(config: HealthConfig, journal: Arc<Journal>) -> HealthMonitor {
        HealthMonitor {
            config: HealthConfig {
                down_after: config.down_after.max(1),
                up_after: config.up_after.max(1),
                probe_interval_ms: config.probe_interval_ms.max(1),
                ..config
            },
            records: RwLock::new(BTreeMap::new()),
            journal,
            pending: Mutex::new(Vec::new()),
            stats: HealthStats::default(),
        }
    }

    /// The thresholds in force.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// The journal transitions are recorded into.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// Counters.
    pub fn stats(&self) -> &HealthStats {
        &self.stats
    }

    /// Start tracking `source` (state `Unknown`) if not tracked yet.
    pub fn track(&self, source: &str) {
        self.records.write().entry(source.to_owned()).or_default();
    }

    /// Stop tracking `source` (e.g. removed from administration).
    pub fn untrack(&self, source: &str) -> bool {
        self.records.write().remove(source).is_some()
    }

    /// Is an active probe of `source` due at `now_ms`? Auto-tracks the
    /// source; a never-probed source is always due.
    pub fn probe_due(&self, source: &str, now_ms: u64) -> bool {
        let mut records = self.records.write();
        let rec = records.entry(source.to_owned()).or_default();
        match rec.last_probe_ms {
            None => true,
            Some(t) => now_ms.saturating_sub(t) >= self.config.probe_interval_ms,
        }
    }

    /// A successful interaction observed on the query path.
    pub fn record_success(&self, source: &str, driver: &str, now_ms: u64) {
        self.apply_success(source, driver, now_ms, false);
    }

    /// A failed interaction observed on the query path. `driver` names
    /// the driver that failed, when one was resolved.
    pub fn record_failure(&self, source: &str, driver: Option<&str>, error: &str, now_ms: u64) {
        self.apply_failure(source, driver, error, now_ms, false);
    }

    /// An active probe succeeded through `driver` in `elapsed_ms`.
    /// Probes slower than the configured timeout count as failures.
    pub fn record_probe_success(&self, source: &str, driver: &str, now_ms: u64, elapsed_ms: u64) {
        if elapsed_ms > self.config.probe_timeout_ms {
            self.record_probe_failure(
                source,
                Some(driver),
                &format!("probe timed out after {elapsed_ms}ms"),
                now_ms,
            );
            return;
        }
        self.stats.probes_ok.inc();
        self.records
            .write()
            .entry(source.to_owned())
            .or_default()
            .last_probe_ms = Some(now_ms);
        self.journal.record(
            now_ms,
            JournalSeverity::Info,
            KIND_PROBE,
            source,
            Some(driver),
            None,
            &format!("probe ok in {elapsed_ms}ms"),
        );
        self.apply_success(source, driver, now_ms, true);
    }

    /// An active probe failed (connect/ping error or timeout).
    pub fn record_probe_failure(
        &self,
        source: &str,
        driver: Option<&str>,
        error: &str,
        now_ms: u64,
    ) {
        self.stats.probes_failed.inc();
        self.records
            .write()
            .entry(source.to_owned())
            .or_default()
            .last_probe_ms = Some(now_ms);
        self.journal.record(
            now_ms,
            JournalSeverity::Warning,
            KIND_PROBE,
            source,
            driver,
            None,
            &format!("probe failed: {error}"),
        );
        self.apply_failure(source, driver, error, now_ms, true);
    }

    /// Transitions recorded since the last drain (oldest first). The
    /// gateway pump turns these into alert events.
    pub fn take_transitions(&self) -> Vec<HealthTransition> {
        std::mem::take(&mut *self.pending.lock())
    }

    /// The current state of `source`, if tracked.
    pub fn state_of(&self, source: &str) -> Option<HealthState> {
        self.records.read().get(source).map(|r| r.state)
    }

    /// Snapshot of every tracked source, sorted by URL.
    pub fn snapshot(&self) -> Vec<SourceHealthSnapshot> {
        let records = self.records.read();
        let mut out: Vec<SourceHealthSnapshot> = records
            .iter()
            .map(|(source, r)| SourceHealthSnapshot {
                source: source.clone(),
                state: r.state,
                consecutive_failures: r.consecutive_failures,
                consecutive_successes: r.consecutive_successes,
                last_ok_ms: r.last_ok_ms,
                last_error: r.last_error.clone(),
                last_probe_ms: r.last_probe_ms,
                last_failed_driver: r.last_failed_driver.clone(),
                transitions: r.transitions,
                last_transition_ms: r.last_transition_ms,
            })
            .collect();
        out.sort_by(|a, b| a.source.cmp(&b.source));
        out
    }

    /// Snapshot of one source, if tracked.
    pub fn snapshot_of(&self, source: &str) -> Option<SourceHealthSnapshot> {
        self.snapshot().into_iter().find(|s| s.source == source)
    }

    /// How many tracked sources sit in each state, in a fixed order
    /// suitable for gauge exposition.
    pub fn state_counts(&self) -> [(HealthState, usize); 4] {
        let records = self.records.read();
        let mut counts = [
            (HealthState::Up, 0),
            (HealthState::Degraded, 0),
            (HealthState::Down, 0),
            (HealthState::Unknown, 0),
        ];
        for r in records.values() {
            for slot in counts.iter_mut() {
                if slot.0 == r.state {
                    slot.1 += 1;
                }
            }
        }
        counts
    }

    fn apply_success(&self, source: &str, driver: &str, now_ms: u64, via_probe: bool) {
        let mut records = self.records.write();
        let rec = records.entry(source.to_owned()).or_default();
        rec.consecutive_failures = 0;
        rec.consecutive_successes = rec.consecutive_successes.saturating_add(1);
        rec.last_ok_ms = Some(now_ms);
        let next = match rec.state {
            HealthState::Unknown => HealthState::Up,
            HealthState::Up => HealthState::Up,
            HealthState::Degraded | HealthState::Down => {
                if rec.consecutive_successes >= self.config.up_after {
                    HealthState::Up
                } else {
                    rec.state
                }
            }
        };
        self.transition(source, rec, next, Some(driver), now_ms, via_probe);
    }

    fn apply_failure(
        &self,
        source: &str,
        driver: Option<&str>,
        error: &str,
        now_ms: u64,
        via_probe: bool,
    ) {
        let mut records = self.records.write();
        let rec = records.entry(source.to_owned()).or_default();
        rec.consecutive_successes = 0;
        rec.consecutive_failures = rec.consecutive_failures.saturating_add(1);
        rec.last_error = Some(error.to_owned());
        if let Some(d) = driver {
            rec.last_failed_driver = Some(d.to_owned());
        }
        let next = if rec.consecutive_failures >= self.config.down_after {
            HealthState::Down
        } else {
            match rec.state {
                HealthState::Down => HealthState::Down,
                _ => HealthState::Degraded,
            }
        };
        self.transition(source, rec, next, driver, now_ms, via_probe);
    }

    /// Move `rec` to `next` if different: one journal entry, one counter
    /// increment, one pending transition — the same code path, so the
    /// three counts can never drift apart.
    fn transition(
        &self,
        source: &str,
        rec: &mut SourceRecord,
        next: HealthState,
        driver: Option<&str>,
        now_ms: u64,
        via_probe: bool,
    ) {
        if rec.state == next {
            return;
        }
        let from = rec.state;
        rec.state = next;
        rec.transitions += 1;
        rec.last_transition_ms = Some(now_ms);
        let (severity, counter) = match next {
            HealthState::Down => (JournalSeverity::Critical, Some(&self.stats.to_down)),
            HealthState::Degraded => (JournalSeverity::Warning, Some(&self.stats.to_degraded)),
            HealthState::Up => (JournalSeverity::Info, Some(&self.stats.to_up)),
            HealthState::Unknown => (JournalSeverity::Info, None),
        };
        if let Some(c) = counter {
            c.inc();
        }
        self.journal.record(
            now_ms,
            severity,
            KIND_STATE_TRANSITION,
            source,
            driver,
            Some(next.name()),
            &format!("{} -> {}", from.name(), next.name()),
        );
        self.pending.lock().push(HealthTransition {
            source: source.to_owned(),
            from,
            to: next,
            at_ms: now_ms,
            via_probe,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_telemetry::KIND_STATE_TRANSITION;

    const SRC: &str = "jdbc:snmp://node00/public";

    fn monitor(down_after: u32, up_after: u32) -> HealthMonitor {
        HealthMonitor::new(
            HealthConfig {
                probe_interval_ms: 10_000,
                probe_timeout_ms: 1_000,
                down_after,
                up_after,
            },
            Arc::new(Journal::new(64)),
        )
    }

    #[test]
    fn unknown_until_first_interaction() {
        let m = monitor(3, 2);
        m.track(SRC);
        assert_eq!(m.state_of(SRC), Some(HealthState::Unknown));
        m.record_success(SRC, "jdbc-snmp", 100);
        assert_eq!(m.state_of(SRC), Some(HealthState::Up));
    }

    #[test]
    fn debounced_descent_to_down() {
        let m = monitor(3, 2);
        m.record_success(SRC, "jdbc-snmp", 0);
        m.record_failure(SRC, Some("jdbc-snmp"), "boom", 10);
        assert_eq!(m.state_of(SRC), Some(HealthState::Degraded));
        m.record_failure(SRC, Some("jdbc-snmp"), "boom", 20);
        assert_eq!(m.state_of(SRC), Some(HealthState::Degraded));
        m.record_failure(SRC, Some("jdbc-snmp"), "boom", 30);
        assert_eq!(m.state_of(SRC), Some(HealthState::Down));
        let snap = m.snapshot_of(SRC).unwrap();
        assert_eq!(snap.consecutive_failures, 3);
        assert_eq!(snap.last_failed_driver.as_deref(), Some("jdbc-snmp"));
        assert_eq!(snap.last_error.as_deref(), Some("boom"));
    }

    #[test]
    fn debounced_recovery_to_up() {
        let m = monitor(1, 2);
        m.record_failure(SRC, None, "down", 0);
        assert_eq!(m.state_of(SRC), Some(HealthState::Down));
        m.record_success(SRC, "jdbc-snmp", 10);
        assert_eq!(m.state_of(SRC), Some(HealthState::Down), "debounce holds");
        m.record_success(SRC, "jdbc-snmp", 20);
        assert_eq!(m.state_of(SRC), Some(HealthState::Up));
    }

    #[test]
    fn transitions_journalled_and_counted_identically() {
        let m = monitor(2, 1);
        m.record_success(SRC, "d", 0); // unknown -> up
        m.record_failure(SRC, Some("d"), "e", 1); // up -> degraded
        m.record_failure(SRC, Some("d"), "e", 2); // degraded -> down
        m.record_success(SRC, "d", 3); // down -> up
        let journalled = m.journal().recent_of_kind(KIND_STATE_TRANSITION);
        assert_eq!(journalled.len(), 4);
        let counted = m.stats().to_up.get() + m.stats().to_degraded.get() + m.stats().to_down.get();
        assert_eq!(counted, 4);
        let drained = m.take_transitions();
        assert_eq!(drained.len(), 4);
        assert_eq!(drained[3].from, HealthState::Down);
        assert_eq!(drained[3].to, HealthState::Up);
        assert!(m.take_transitions().is_empty(), "drain empties the queue");
        // Journal ordering matches transition ordering.
        let stages: Vec<&str> = journalled
            .iter()
            .map(|e| e.stage.as_deref().unwrap())
            .collect();
        assert_eq!(stages, vec!["up", "degraded", "down", "up"]);
    }

    #[test]
    fn probe_scheduling_and_timeout() {
        let m = monitor(3, 1);
        assert!(m.probe_due(SRC, 0), "never probed -> due");
        m.record_probe_success(SRC, "d", 0, 5);
        assert!(!m.probe_due(SRC, 9_999));
        assert!(m.probe_due(SRC, 10_000));
        assert_eq!(m.stats().probes_ok.get(), 1);
        // A slow probe counts as a failure despite connecting.
        m.record_probe_success(SRC, "d", 10_000, 2_000);
        assert_eq!(m.stats().probes_failed.get(), 1);
        assert_eq!(m.state_of(SRC), Some(HealthState::Degraded));
        let t = m.take_transitions();
        assert!(t.iter().all(|t| t.via_probe));
    }

    #[test]
    fn state_counts_cover_all_sources() {
        let m = monitor(1, 1);
        m.track("a");
        m.record_success("b", "d", 0);
        m.record_failure("c", None, "e", 0);
        let counts: BTreeMap<&str, usize> = m
            .state_counts()
            .iter()
            .map(|(s, n)| (s.name(), *n))
            .collect();
        assert_eq!(counts["unknown"], 1);
        assert_eq!(counts["up"], 1);
        assert_eq!(counts["down"], 1);
        assert_eq!(counts["degraded"], 0);
    }

    #[test]
    fn untrack_removes_source() {
        let m = monitor(1, 1);
        m.record_success(SRC, "d", 0);
        assert!(m.untrack(SRC));
        assert!(m.state_of(SRC).is_none());
        assert!(!m.untrack(SRC));
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let m = monitor(3, 2);
        m.record_failure(SRC, Some("jdbc-snmp"), "boom", 7);
        let snap = m.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: Vec<SourceHealthSnapshot> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back[0].state, HealthState::Degraded);
    }
}
