//! The Connection Manager (paper §3.1.2): executes queries through pooled
//! driver connections. "Driver connections typically incur an overhead
//! when a data source is first connected, especially if drivers are
//! dynamically mapped to the data source. Therefore the ConnectionManager
//! provides pooling of driver connections to reduce the overhead effects."
//!
//! This is also where failure policies play out (§4): a failed query
//! invalidates the driver cache and, depending on policy, is retried,
//! rerouted to the next compatible driver, or reported.

use crate::driver_manager::{FailurePolicy, GridRMDriverManager};
use crate::health::HealthMonitor;
use gridrm_dbc::{Connection, DbcResult, JdbcUrl, Properties, RowSet, SqlError};
use gridrm_telemetry::{
    CostVector, Counter, GatewayTelemetry, JournalSeverity, Labels, Registry, SpanBuilder,
    DEFAULT_LATENCY_BUCKETS_MS, KIND_DRIVER_FALLBACK, KIND_POLICY_DECISION,
};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Pool counters (experiment E9). Shared telemetry cells: also
/// exposable in a gateway-wide [`Registry`] via
/// [`PoolStats::register_into`].
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Connection requests.
    pub checkouts: Counter,
    /// Served from the pool.
    pub pool_hits: Counter,
    /// Fresh connections created.
    pub creates: Counter,
    /// Pooled connections discarded (failed ping / over capacity).
    pub discards: Counter,
    /// Query attempts that failed.
    pub failures: Counter,
}

/// Named point-in-time copy of [`PoolStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolSnapshot {
    /// Connection requests.
    pub checkouts: u64,
    /// Served from the pool.
    pub pool_hits: u64,
    /// Fresh connections created.
    pub creates: u64,
    /// Pooled connections discarded (failed ping / over capacity).
    pub discards: u64,
    /// Query attempts that failed.
    pub failures: u64,
}

impl PoolStats {
    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            checkouts: self.checkouts.get(),
            pool_hits: self.pool_hits.get(),
            creates: self.creates.get(),
            discards: self.discards.get(),
            failures: self.failures.get(),
        }
    }

    /// Expose these counters in a metrics registry (shared cells: the
    /// struct and the registry observe the same values).
    pub fn register_into(&self, registry: &Registry) {
        let series = [
            ("checkout", &self.checkouts),
            ("pool_hit", &self.pool_hits),
            ("create", &self.creates),
            ("discard", &self.discards),
            ("failure", &self.failures),
        ];
        for (event, counter) in series {
            registry.expose_counter(
                "gridrm_pool_events_total",
                "Connection-pool lifecycle events by kind",
                Labels::from_pairs(&[("event", event)]),
                counter,
            );
        }
    }
}

type PoolKey = (String, String); // (url, driver name)

/// The Connection Manager.
pub struct ConnectionManager {
    driver_manager: Arc<GridRMDriverManager>,
    pool: Mutex<HashMap<PoolKey, Vec<Box<dyn Connection>>>>,
    max_idle_per_key: usize,
    /// Pooling can be disabled to measure its benefit (E9).
    pooling_enabled: std::sync::atomic::AtomicBool,
    stats: PoolStats,
    /// Optional gateway telemetry hub: per-driver latency histograms and
    /// query-path trace stages.
    telemetry: RwLock<Option<GatewayTelemetry>>,
    /// Optional health monitor fed by query outcomes (passive signal).
    health: RwLock<Option<Arc<HealthMonitor>>>,
}

impl ConnectionManager {
    /// Manager over a driver manager, keeping up to `max_idle_per_key`
    /// idle connections per (source, driver) pair.
    pub fn new(driver_manager: Arc<GridRMDriverManager>, max_idle_per_key: usize) -> Self {
        ConnectionManager {
            driver_manager,
            pool: Mutex::new(HashMap::new()),
            max_idle_per_key: max_idle_per_key.max(1),
            pooling_enabled: std::sync::atomic::AtomicBool::new(true),
            stats: PoolStats::default(),
            telemetry: RwLock::new(None),
            health: RwLock::new(None),
        }
    }

    /// Attach the gateway telemetry hub: driver executions start feeding
    /// the per-driver latency histogram, and traced executions record
    /// their query-path stages.
    pub fn set_telemetry(&self, telemetry: GatewayTelemetry) {
        *self.telemetry.write() = Some(telemetry);
    }

    /// Attach the health monitor: every query outcome becomes a passive
    /// health signal for its source.
    pub fn set_health(&self, health: Arc<HealthMonitor>) {
        *self.health.write() = Some(health);
    }

    /// Enable/disable pooling (ablation switch).
    pub fn set_pooling(&self, enabled: bool) {
        self.pooling_enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            self.pool.lock().clear();
        }
    }

    /// The underlying GridRM driver manager.
    pub fn driver_manager(&self) -> &Arc<GridRMDriverManager> {
        &self.driver_manager
    }

    /// Check a connection out; the boolean is true when it came from
    /// the pool (vs. freshly created), so callers can trace the
    /// decision.
    fn checkout(&self, url: &JdbcUrl, driver_name: &str) -> DbcResult<(Box<dyn Connection>, bool)> {
        self.stats.checkouts.inc();
        let key: PoolKey = (url.to_string(), driver_name.to_owned());
        if self.pooling_enabled.load(Ordering::Relaxed) {
            loop {
                let candidate = self.pool.lock().get_mut(&key).and_then(Vec::pop);
                let Some(mut conn) = candidate else { break };
                // "All new connections are registered with the connection
                // pool before use" — and pooled ones are validated before
                // being handed out.
                if conn.ping().is_ok() {
                    self.stats.pool_hits.inc();
                    return Ok((conn, true));
                }
                self.stats.discards.inc();
                let _ = conn.close();
            }
        }
        // "The ConnectionManager calls the GridRMDriverManager to return a
        // new connection if a suitable pooled instance does not exist."
        let driver = self
            .driver_manager
            .base()
            .get_by_name(driver_name)
            .ok_or_else(|| SqlError::NoSuitableDriver(format!("{driver_name} unregistered")))?;
        self.stats.creates.inc();
        Ok((driver.connect(url, &Properties::new())?, false))
    }

    fn checkin(&self, url: &JdbcUrl, driver_name: &str, mut conn: Box<dyn Connection>) {
        if !self.pooling_enabled.load(Ordering::Relaxed) || conn.is_closed() {
            let _ = conn.close();
            return;
        }
        let key: PoolKey = (url.to_string(), driver_name.to_owned());
        let mut pool = self.pool.lock();
        let slot = pool.entry(key).or_default();
        if slot.len() >= self.max_idle_per_key {
            self.stats.discards.inc();
            let _ = conn.close();
        } else {
            slot.push(conn);
        }
    }

    /// Number of idle pooled connections (across all keys).
    pub fn idle_connections(&self) -> usize {
        self.pool.lock().values().map(Vec::len).sum()
    }

    /// Drop every pooled connection (e.g. on shutdown).
    pub fn drain(&self) {
        self.pool.lock().clear();
    }

    /// One query attempt against one specific driver. Records the
    /// `checkout`/`connect`/`execute`/`translate` stages on the span,
    /// when given.
    fn attempt(
        &self,
        url: &JdbcUrl,
        driver_name: &str,
        sql: &str,
        mut span: Option<&mut SpanBuilder>,
    ) -> DbcResult<RowSet> {
        let (mut conn, pooled) = self.checkout(url, driver_name)?;
        if let Some(s) = span.as_deref_mut() {
            s.stage_with("checkout", if pooled { "pool_hit" } else { "create" });
            s.stage_with("connect", driver_name);
        }
        let result = (|| {
            let mut stmt = conn.create_statement()?;
            let mut rs = stmt.execute_query(sql)?;
            if let Some(s) = span.as_deref_mut() {
                s.stage("execute");
            }
            let rows = RowSet::materialize(rs.as_mut());
            if rows.is_ok() {
                if let Some(s) = span.as_deref_mut() {
                    s.stage_with("translate", "glue rowset");
                }
            }
            rows
        })();
        match &result {
            Ok(_) => self.checkin(url, driver_name, conn),
            Err(_) => {
                // A failed connection is not returned to the pool.
                self.stats.discards.inc();
                let _ = conn.close();
            }
        }
        result
    }

    /// Execute a real-time query against a data source, applying the
    /// source's failure policy. This is the Fig 3/Fig 5 query path.
    pub fn execute(&self, url: &JdbcUrl, sql: &str) -> DbcResult<RowSet> {
        self.execute_traced(url, sql, None)
    }

    /// [`ConnectionManager::execute`] with an optional in-flight trace
    /// span. Each resolution runs under a `resolve` child span (which
    /// candidates were weighed, and why the winner won) and each driver
    /// attempt under a `driver_execute` child span (`checkout` →
    /// `connect` → `execute` → `translate`); the attempt's span is also
    /// entered as the thread's ambient active span, so GLUE translation
    /// inside the driver hangs its own child off it. The per-driver
    /// latency histogram is fed when telemetry is attached.
    pub fn execute_traced(
        &self,
        url: &JdbcUrl,
        sql: &str,
        mut span: Option<&mut SpanBuilder>,
    ) -> DbcResult<RowSet> {
        let telemetry = self.telemetry.read().clone();
        let health = self.health.read().clone();
        let policy = self.driver_manager.policy_for(url);
        let key = url.to_string();
        let trace_id = span.as_deref().map(|s| s.trace_id().to_owned());
        let now = || {
            telemetry
                .as_ref()
                .map(|t| t.clock().now_millis())
                .unwrap_or(0)
        };
        let mut excluded: Vec<String> = Vec::new();
        let mut retries_used = 0u32;
        let mut last_err: Option<SqlError> = None;
        loop {
            let mut resolve_span = span.as_deref().map(|s| s.child(&format!("resolve {key}")));
            let resolved =
                self.driver_manager
                    .resolve_excluding_traced(url, &excluded, resolve_span.as_mut());
            let driver = match resolved {
                Ok(d) => {
                    if let Some(rs) = resolve_span {
                        rs.finish("ok");
                    }
                    d
                }
                Err(e) => {
                    if let Some(rs) = resolve_span {
                        rs.finish("error");
                    }
                    return Err(last_err.unwrap_or(e));
                }
            };
            let name = driver.name();
            if let Some(s) = span.as_deref_mut() {
                s.stage_with("resolve", &name);
            }
            let mut exec_span = span.as_deref().map(|s| {
                let mut c = s.child(&format!("driver_execute {name}"));
                c.stage_with("driver_execute", &name);
                c.source(&key);
                c
            });
            let started_ms = telemetry.as_ref().map(|t| t.clock().now_millis());
            let outcome = {
                let _active = match (&telemetry, exec_span.as_ref()) {
                    (Some(t), Some(es)) => Some(gridrm_telemetry::active::enter(t, es.context())),
                    _ => None,
                };
                self.attempt(url, &name, sql, exec_span.as_mut())
            };
            if let Some(mut es) = exec_span {
                // Every attempt is one native driver fetch; a successful
                // one also materialised rows the ledger should attribute.
                es.add_cost(&CostVector {
                    fetch_units: 1,
                    rows_scanned: outcome.as_ref().map(RowSet::len).unwrap_or(0) as u64,
                    ..CostVector::default()
                });
                es.finish(if outcome.is_ok() { "ok" } else { "error" });
            }
            if let (Some(t), Some(started)) = (&telemetry, started_ms) {
                let elapsed = t.clock().now_millis().saturating_sub(started);
                t.registry()
                    .histogram(
                        "gridrm_driver_latency_ms",
                        "Per-driver query execution latency in virtual milliseconds",
                        Labels::from_pairs(&[("driver", &name)]),
                        DEFAULT_LATENCY_BUCKETS_MS,
                    )
                    .observe(elapsed as f64);
            }
            match outcome {
                Ok(rs) => {
                    self.driver_manager.record_success(url, &name);
                    if let Some(h) = &health {
                        h.record_success(&key, &name, now());
                    }
                    return Ok(rs);
                }
                Err(err) => {
                    self.stats.failures.inc();
                    // The *failed* driver is recorded against the source's
                    // health, even when the policy falls back to another.
                    self.driver_manager.record_failure(url, &name);
                    if let Some(h) = &health {
                        h.record_failure(&key, Some(&name), &err.to_string(), now());
                    }
                    // Query-level errors (bad SQL, unsupported group) are
                    // not connectivity failures: no policy will fix them.
                    if !err.is_retryable() && !matches!(err, SqlError::Driver(_)) {
                        return Err(err);
                    }
                    let journal = telemetry.as_ref().map(|t| t.journal());
                    match policy {
                        FailurePolicy::Report => {
                            if let Some(j) = journal {
                                j.record_traced(
                                    now(),
                                    JournalSeverity::Warning,
                                    KIND_POLICY_DECISION,
                                    &key,
                                    Some(&name),
                                    None,
                                    "report: surfacing error to client",
                                    trace_id.as_deref(),
                                );
                            }
                            return Err(err);
                        }
                        FailurePolicy::Retry(n) => {
                            if retries_used >= n {
                                if let Some(j) = journal {
                                    j.record_traced(
                                        now(),
                                        JournalSeverity::Warning,
                                        KIND_POLICY_DECISION,
                                        &key,
                                        Some(&name),
                                        None,
                                        &format!("retry: {n} attempts exhausted"),
                                        trace_id.as_deref(),
                                    );
                                }
                                return Err(err);
                            }
                            retries_used += 1;
                            if let Some(j) = journal {
                                j.record_traced(
                                    now(),
                                    JournalSeverity::Info,
                                    KIND_POLICY_DECISION,
                                    &key,
                                    Some(&name),
                                    None,
                                    &format!("retry {retries_used}/{n}"),
                                    trace_id.as_deref(),
                                );
                            }
                            last_err = Some(err);
                        }
                        FailurePolicy::TryNext => {
                            if let Some(j) = journal {
                                j.record_traced(
                                    now(),
                                    JournalSeverity::Warning,
                                    KIND_DRIVER_FALLBACK,
                                    &key,
                                    Some(&name),
                                    None,
                                    &format!("falling back from {name}: {err}"),
                                    trace_id.as_deref(),
                                );
                            }
                            excluded.push(name);
                            last_err = Some(err);
                        }
                    }
                }
            }
        }
    }

    /// Actively probe a data source: resolve its driver, check a
    /// connection out (pooled or fresh) and ping it. Returns the driver
    /// name on success. Used by the gateway's probe scheduler — the
    /// caller records the outcome (and elapsed time) into health.
    pub fn probe(&self, url: &JdbcUrl) -> DbcResult<String> {
        let driver = self.driver_manager.resolve(url)?;
        let name = driver.name();
        let result = (|| {
            let (mut conn, _pooled) = self.checkout(url, &name)?;
            match conn.ping() {
                Ok(()) => {
                    self.checkin(url, &name, conn);
                    Ok(())
                }
                Err(e) => {
                    self.stats.discards.inc();
                    let _ = conn.close();
                    Err(e)
                }
            }
        })();
        match result {
            Ok(()) => {
                self.driver_manager.record_success(url, &name);
                Ok(name)
            }
            Err(e) => {
                // Keeps the last-success cache honest: a probe failing
                // through the cached driver unpins it, so the next
                // resolution can pick a live one.
                self.driver_manager.record_failure(url, &name);
                Err(e)
            }
        }
    }

    /// Pool counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_dbc::{ColumnMeta, Driver, DriverMetaData, ResultSet, ResultSetMetaData, Statement};
    use gridrm_sqlparse::{SqlType, SqlValue};
    use std::sync::atomic::{AtomicBool, AtomicU64};

    /// A scriptable driver: fails while `broken` is set.
    struct ScriptedDriver {
        name: &'static str,
        broken: Arc<AtomicBool>,
        connects: Arc<AtomicU64>,
    }

    struct ScriptedConn {
        url: JdbcUrl,
        name: &'static str,
        broken: Arc<AtomicBool>,
        closed: bool,
    }

    struct ScriptedStmt {
        name: &'static str,
        broken: Arc<AtomicBool>,
    }

    impl Driver for ScriptedDriver {
        fn meta(&self) -> DriverMetaData {
            DriverMetaData {
                name: self.name.to_owned(),
                subprotocol: "any".to_owned(),
                version: (1, 0),
                description: String::new(),
            }
        }
        fn accepts_url(&self, _url: &JdbcUrl) -> bool {
            true
        }
        fn connect(&self, url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
            self.connects.fetch_add(1, Ordering::Relaxed);
            if self.broken.load(Ordering::Relaxed) {
                return Err(SqlError::Connection(format!("{} down", self.name)));
            }
            Ok(Box::new(ScriptedConn {
                url: url.clone(),
                name: self.name,
                broken: self.broken.clone(),
                closed: false,
            }))
        }
    }

    impl Connection for ScriptedConn {
        fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
            if self.closed {
                return Err(SqlError::Closed);
            }
            Ok(Box::new(ScriptedStmt {
                name: self.name,
                broken: self.broken.clone(),
            }))
        }
        fn url(&self) -> &JdbcUrl {
            &self.url
        }
        fn is_closed(&self) -> bool {
            self.closed
        }
        fn close(&mut self) -> DbcResult<()> {
            self.closed = true;
            Ok(())
        }
        fn ping(&mut self) -> DbcResult<()> {
            if self.broken.load(Ordering::Relaxed) {
                Err(SqlError::Connection("ping failed".into()))
            } else {
                Ok(())
            }
        }
    }

    impl Statement for ScriptedStmt {
        fn execute_query(&mut self, _sql: &str) -> DbcResult<Box<dyn ResultSet>> {
            if self.broken.load(Ordering::Relaxed) {
                return Err(SqlError::Connection("query failed".into()));
            }
            Ok(Box::new(
                RowSet::new(
                    ResultSetMetaData::new(vec![ColumnMeta::new("driver", SqlType::Str)]),
                    vec![vec![SqlValue::Str(self.name.to_owned())]],
                )
                .unwrap(),
            ))
        }
    }

    struct Rig {
        cm: ConnectionManager,
        broken_a: Arc<AtomicBool>,
        broken_b: Arc<AtomicBool>,
        connects_a: Arc<AtomicU64>,
    }

    fn rig() -> Rig {
        let dm = Arc::new(GridRMDriverManager::new());
        let broken_a = Arc::new(AtomicBool::new(false));
        let broken_b = Arc::new(AtomicBool::new(false));
        let connects_a = Arc::new(AtomicU64::new(0));
        dm.register(Arc::new(ScriptedDriver {
            name: "drv-a",
            broken: broken_a.clone(),
            connects: connects_a.clone(),
        }));
        dm.register(Arc::new(ScriptedDriver {
            name: "drv-b",
            broken: broken_b.clone(),
            connects: Arc::new(AtomicU64::new(0)),
        }));
        Rig {
            cm: ConnectionManager::new(dm, 4),
            broken_a,
            broken_b,
            connects_a,
        }
    }

    fn url() -> JdbcUrl {
        JdbcUrl::parse("jdbc:any://host/x").unwrap()
    }

    fn winner(rs: &RowSet) -> String {
        rs.rows()[0][0].to_string()
    }

    #[test]
    fn pooling_reuses_connections() {
        let r = rig();
        for _ in 0..10 {
            r.cm.execute(&url(), "SELECT 1 FROM t").unwrap();
        }
        assert_eq!(r.connects_a.load(Ordering::Relaxed), 1);
        let snap = r.cm.stats().snapshot();
        assert_eq!(snap.checkouts, 10);
        assert_eq!(snap.pool_hits, 9);
        assert_eq!(snap.creates, 1);
        assert_eq!(r.cm.idle_connections(), 1);
    }

    #[test]
    fn pooling_disabled_reconnects_every_time() {
        let r = rig();
        r.cm.set_pooling(false);
        for _ in 0..5 {
            r.cm.execute(&url(), "q").unwrap();
        }
        assert_eq!(r.connects_a.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn trynext_fails_over_to_second_driver() {
        let r = rig();
        r.broken_a.store(true, Ordering::Relaxed);
        let rs = r.cm.execute(&url(), "q").unwrap();
        assert_eq!(winner(&rs), "drv-b");
        // And the success is cached for next time.
        assert_eq!(
            r.cm.driver_manager().cached_driver(&url()).as_deref(),
            Some("drv-b")
        );
    }

    #[test]
    fn report_policy_surfaces_error() {
        let r = rig();
        r.cm.driver_manager()
            .set_policy(&url(), FailurePolicy::Report);
        r.broken_a.store(true, Ordering::Relaxed);
        assert!(matches!(
            r.cm.execute(&url(), "q").err().unwrap(),
            SqlError::Connection(_)
        ));
    }

    #[test]
    fn retry_policy_recovers_after_transient_failure() {
        let r = rig();
        r.cm.driver_manager()
            .set_policy(&url(), FailurePolicy::Retry(3));
        // Pre-establish the cache so retry targets drv-a.
        r.cm.execute(&url(), "q").unwrap();
        r.broken_a.store(true, Ordering::Relaxed);
        // All retries exhausted → error.
        assert!(r.cm.execute(&url(), "q").is_err());
        // Transient failure: agent comes back before retries run out. The
        // scripted driver recovers instantly, so the first retry wins.
        r.broken_a.store(false, Ordering::Relaxed);
        assert_eq!(winner(&r.cm.execute(&url(), "q").unwrap()), "drv-a");
    }

    #[test]
    fn all_drivers_down_reports_last_error() {
        let r = rig();
        r.broken_a.store(true, Ordering::Relaxed);
        r.broken_b.store(true, Ordering::Relaxed);
        let err = r.cm.execute(&url(), "q").err().unwrap();
        assert!(matches!(err, SqlError::Connection(_)), "{err}");
    }

    #[test]
    fn recovery_after_failover_and_back() {
        let r = rig();
        r.cm.execute(&url(), "q").unwrap(); // cache = drv-a
        r.broken_a.store(true, Ordering::Relaxed);
        assert_eq!(winner(&r.cm.execute(&url(), "q").unwrap()), "drv-b");
        // drv-a heals; cache still says drv-b, which keeps working — the
        // gateway stays on the known-good driver (paper §4 behaviour).
        r.broken_a.store(false, Ordering::Relaxed);
        assert_eq!(winner(&r.cm.execute(&url(), "q").unwrap()), "drv-b");
    }

    #[test]
    fn broken_pooled_connection_is_replaced() {
        let r = rig();
        r.cm.execute(&url(), "q").unwrap();
        assert_eq!(r.cm.idle_connections(), 1);
        // Break the agent: the pooled connection fails its ping, is
        // discarded, and (after the failure) drv-b takes over.
        r.broken_a.store(true, Ordering::Relaxed);
        let rs = r.cm.execute(&url(), "q").unwrap();
        assert_eq!(winner(&rs), "drv-b");
        assert!(r.cm.stats().snapshot().discards >= 1);
    }

    #[test]
    fn pool_respects_capacity() {
        let dm = Arc::new(GridRMDriverManager::new());
        dm.register(Arc::new(ScriptedDriver {
            name: "drv-a",
            broken: Arc::new(AtomicBool::new(false)),
            connects: Arc::new(AtomicU64::new(0)),
        }));
        let cm = ConnectionManager::new(dm, 2);
        // Checkout 4 connections simultaneously, then return them all.
        let u = url();
        let conns: Vec<_> = (0..4)
            .map(|_| cm.checkout(&u, "drv-a").unwrap().0)
            .collect();
        for c in conns {
            cm.checkin(&u, "drv-a", c);
        }
        assert_eq!(cm.idle_connections(), 2);
        cm.drain();
        assert_eq!(cm.idle_connections(), 0);
    }

    #[test]
    fn nonretryable_error_not_failed_over() {
        // An Unsupported error (bad group) must not trigger failover —
        // trying another driver cannot fix the client's SQL.
        struct UnsupportedDriver;
        impl Driver for UnsupportedDriver {
            fn meta(&self) -> DriverMetaData {
                DriverMetaData {
                    name: "drv-unsup".into(),
                    subprotocol: "any".into(),
                    version: (1, 0),
                    description: String::new(),
                }
            }
            fn accepts_url(&self, _url: &JdbcUrl) -> bool {
                true
            }
            fn connect(&self, url: &JdbcUrl, _p: &Properties) -> DbcResult<Box<dyn Connection>> {
                struct C(JdbcUrl);
                impl Connection for C {
                    fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
                        struct S;
                        impl Statement for S {
                            fn execute_query(&mut self, _q: &str) -> DbcResult<Box<dyn ResultSet>> {
                                Err(SqlError::Unsupported("no such group".into()))
                            }
                        }
                        Ok(Box::new(S))
                    }
                    fn url(&self) -> &JdbcUrl {
                        &self.0
                    }
                    fn is_closed(&self) -> bool {
                        false
                    }
                    fn close(&mut self) -> DbcResult<()> {
                        Ok(())
                    }
                }
                Ok(Box::new(C(url.clone())))
            }
        }
        let dm = Arc::new(GridRMDriverManager::new());
        dm.register(Arc::new(UnsupportedDriver));
        let cm = ConnectionManager::new(dm, 2);
        assert!(matches!(
            cm.execute(&url(), "SELECT * FROM Bogus").err().unwrap(),
            SqlError::Unsupported(_)
        ));
    }
}
