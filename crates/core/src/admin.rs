//! Driver and data-source administration (paper §4, Figs 6–9): the
//! programmatic API behind the JSP management interface — add/remove/
//! modify data sources, prioritised driver registration per source,
//! network discovery, and the cached tree view with status icons.

use crate::acil::{ClientRequest, ClientResponse, QueryExecutor};
use crate::cache::CacheController;
use crate::driver_manager::{FailurePolicy, GridRMDriverManager};
use crate::health::{HealthMonitor, SourceHealthSnapshot};
use crate::stream::{StreamManager, SubscriptionSnapshot};
use gridrm_dbc::{DbcResult, JdbcUrl, SqlError};
use gridrm_simnet::Network;
use gridrm_telemetry::{
    GatewayTelemetry, HistoryRow, IntrusionRow, JournalEntry, MetricSnapshot, QueryCostEntry,
    SloStatus, TraceRecord,
};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A configured data source (one row of Fig 8's registration panel).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataSourceConfig {
    /// The data-source URL.
    pub url: String,
    /// Display label.
    pub label: String,
    /// Prioritised driver names ("a single driver … or a number of
    /// drivers to be used in prioritised order", §4). Empty = dynamic.
    pub preferred_drivers: Vec<String>,
    /// Failure policy override for this source.
    pub policy: Option<FailurePolicy>,
}

impl DataSourceConfig {
    /// Source with dynamic driver selection.
    pub fn dynamic(url: &str, label: &str) -> DataSourceConfig {
        DataSourceConfig {
            url: url.to_owned(),
            label: label.to_owned(),
            preferred_drivers: Vec::new(),
            policy: None,
        }
    }
}

/// Status icon of a source in the tree view (Fig 9's legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// Healthy: last poll succeeded.
    Ok,
    /// "Event received in last n minutes (e.g. a SNMP trap)".
    RecentEvent,
    /// "Request to poll data failed (communications failure or security
    /// permissions not adequate)".
    PollFailed,
    /// Never polled.
    Unknown,
}

/// One node of the Fig 9 tree view.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Source URL.
    pub source: String,
    /// Display label.
    pub label: String,
    /// Status icon.
    pub status: SourceStatus,
    /// Cached queries for this source: `(sql, age_ms)`.
    pub cached: Vec<(String, u64)>,
    /// Last successful poll time.
    pub last_ok_ms: Option<u64>,
    /// Last error, if any.
    pub last_error: Option<String>,
}

#[derive(Debug, Default, Clone)]
struct SourceHealth {
    last_ok_ms: Option<u64>,
    last_error: Option<(u64, String)>,
    last_event_ms: Option<u64>,
}

/// Serialised administrative state ("registration details are cached
/// persistently within the Gateway", §3.2.2).
#[derive(Debug, Serialize, Deserialize)]
struct PersistedState {
    sources: Vec<DataSourceConfig>,
}

/// Outcome class of one [`AdminInterface::handle`] dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminStatus {
    /// The path resolved to an exposition endpoint.
    Ok,
    /// Unknown path; the body carries the endpoint index instead.
    NotFound,
}

/// One answered admin request: what [`AdminInterface::handle`] returns
/// for any transport to serialise — the serve crate's plain-text admin
/// port writes `status`/`content_type` as a header line and the body
/// verbatim.
#[derive(Debug, Clone)]
pub struct AdminResponse {
    /// Dispatch outcome.
    pub status: AdminStatus,
    /// MIME type of `body` (`text/plain` or `application/json`).
    pub content_type: &'static str,
    /// The rendered exposition.
    pub body: String,
}

impl AdminResponse {
    fn ok_json(body: String) -> AdminResponse {
        AdminResponse {
            status: AdminStatus::Ok,
            content_type: "application/json",
            body,
        }
    }

    fn ok_text(body: String) -> AdminResponse {
        AdminResponse {
            status: AdminStatus::Ok,
            content_type: "text/plain",
            body,
        }
    }
}

/// The administration interface.
pub struct AdminInterface {
    sources: RwLock<BTreeMap<String, DataSourceConfig>>,
    health: RwLock<BTreeMap<String, SourceHealth>>,
    driver_manager: Arc<GridRMDriverManager>,
    cache: Arc<CacheController>,
    telemetry: RwLock<Option<GatewayTelemetry>>,
    health_monitor: RwLock<Option<Arc<HealthMonitor>>>,
    streams: RwLock<Option<Arc<StreamManager>>>,
}

impl AdminInterface {
    /// Wire the interface to the managers it configures.
    pub fn new(
        driver_manager: Arc<GridRMDriverManager>,
        cache: Arc<CacheController>,
    ) -> AdminInterface {
        AdminInterface {
            sources: RwLock::new(BTreeMap::new()),
            health: RwLock::new(BTreeMap::new()),
            driver_manager,
            cache,
            telemetry: RwLock::new(None),
            health_monitor: RwLock::new(None),
            streams: RwLock::new(None),
        }
    }

    /// Attach the gateway telemetry hub; enables the metric and trace
    /// exposition endpoints below.
    pub fn attach_telemetry(&self, telemetry: GatewayTelemetry) {
        *self.telemetry.write() = Some(telemetry);
    }

    /// Prometheus text exposition of every gateway metric (the admin
    /// scrape endpoint). Empty without attached telemetry.
    pub fn metrics_prometheus(&self) -> String {
        self.telemetry
            .read()
            .as_ref()
            .map(|t| t.registry().render_prometheus())
            .unwrap_or_default()
    }

    /// Structured snapshot of every metric family (JSON exposition).
    pub fn metrics_snapshot(&self) -> Vec<MetricSnapshot> {
        self.telemetry
            .read()
            .as_ref()
            .map(|t| t.registry().snapshot())
            .unwrap_or_default()
    }

    /// JSON text of [`AdminInterface::metrics_snapshot`].
    pub fn metrics_json(&self) -> String {
        serde_json::to_string_pretty(&self.metrics_snapshot()).expect("metrics are serialisable")
    }

    /// Recent query traces, oldest first.
    pub fn traces(&self) -> Vec<TraceRecord> {
        self.telemetry
            .read()
            .as_ref()
            .map(|t| t.traces().recent())
            .unwrap_or_default()
    }

    /// The slowest retained trace by virtual duration.
    pub fn slowest_trace(&self) -> Option<TraceRecord> {
        self.telemetry
            .read()
            .as_ref()
            .and_then(|t| t.traces().slowest())
    }

    /// Every retained span of one trace tree, oldest first.
    pub fn trace_spans(&self, trace_id: &str) -> Vec<TraceRecord> {
        self.telemetry
            .read()
            .as_ref()
            .map(|t| t.traces().for_trace(trace_id))
            .unwrap_or_default()
    }

    /// JSON text of [`AdminInterface::trace_spans`] (the span tree of
    /// one trace, with full span-identity fields).
    pub fn trace_spans_json(&self, trace_id: &str) -> String {
        serde_json::to_string_pretty(&self.trace_spans(trace_id)).expect("traces are serialisable")
    }

    /// Attach the health monitor; enables the health exposition below
    /// and health tracking of administered sources.
    pub fn attach_health(&self, monitor: Arc<HealthMonitor>) {
        // Sources configured before attachment become tracked now.
        for url in self.sources.read().keys() {
            monitor.track(url);
        }
        *self.health_monitor.write() = Some(monitor);
    }

    /// The attached health monitor, if any.
    pub fn health_monitor(&self) -> Option<Arc<HealthMonitor>> {
        self.health_monitor.read().clone()
    }

    /// Per-source health snapshot (JSON exposition source of truth —
    /// the `gridrm_health` SQL table serves the same rows).
    pub fn health_snapshot(&self) -> Vec<SourceHealthSnapshot> {
        self.health_monitor
            .read()
            .as_ref()
            .map(|m| m.snapshot())
            .unwrap_or_default()
    }

    /// JSON text of [`AdminInterface::health_snapshot`].
    pub fn health_json(&self) -> String {
        serde_json::to_string_pretty(&self.health_snapshot()).expect("health is serialisable")
    }

    /// Retained structured-journal entries, oldest first.
    pub fn journal_entries(&self) -> Vec<JournalEntry> {
        self.telemetry
            .read()
            .as_ref()
            .map(|t| t.journal().recent())
            .unwrap_or_default()
    }

    /// JSON text of [`AdminInterface::journal_entries`].
    pub fn journal_json(&self) -> String {
        serde_json::to_string_pretty(&self.journal_entries()).expect("journal is serialisable")
    }

    /// The slow-query log, slowest first (full per-stage breakdown).
    pub fn slow_queries(&self) -> Vec<TraceRecord> {
        self.telemetry
            .read()
            .as_ref()
            .map(|t| t.slow_queries().top())
            .unwrap_or_default()
    }

    /// JSON text of [`AdminInterface::slow_queries`].
    pub fn slow_queries_json(&self) -> String {
        serde_json::to_string_pretty(&self.slow_queries()).expect("traces are serialisable")
    }

    /// Point-in-time SLO statuses: burn rates, remaining error budget,
    /// and firing state per declared SLO, sorted by name.
    pub fn slo_snapshot(&self) -> Vec<SloStatus> {
        self.telemetry
            .read()
            .as_ref()
            .map(|t| t.slo().snapshot())
            .unwrap_or_default()
    }

    /// JSON text of [`AdminInterface::slo_snapshot`].
    pub fn slo_json(&self) -> String {
        serde_json::to_string_pretty(&self.slo_snapshot()).expect("SLO status is serialisable")
    }

    /// Attach the stream manager; enables the subscription exposition
    /// below.
    pub fn attach_streams(&self, streams: Arc<StreamManager>) {
        *self.streams.write() = Some(streams);
    }

    /// Live continuous-query subscriptions, ordered by id (JSON
    /// exposition source of truth — the `gridrm_subscriptions` SQL
    /// table serves the same rows).
    pub fn subscriptions_snapshot(&self) -> Vec<SubscriptionSnapshot> {
        self.streams
            .read()
            .as_ref()
            .map(|s| s.snapshot())
            .unwrap_or_default()
    }

    /// JSON text of [`AdminInterface::subscriptions_snapshot`].
    pub fn subscriptions_json(&self) -> String {
        serde_json::to_string_pretty(&self.subscriptions_snapshot())
            .expect("subscriptions are serialisable")
    }

    /// Recent per-query inclusive cost entries (oldest first): wire
    /// bytes/messages, rows scanned/returned, fetch units, and whether
    /// the query breached the configured cost budget.
    pub fn costs_snapshot(&self) -> Vec<QueryCostEntry> {
        self.telemetry
            .read()
            .as_ref()
            .map(|t| t.costs().entries())
            .unwrap_or_default()
    }

    /// JSON text of [`AdminInterface::costs_snapshot`].
    pub fn costs_json(&self) -> String {
        serde_json::to_string_pretty(&self.costs_snapshot()).expect("costs are serialisable")
    }

    /// Per-(site, cause) intrusion buckets: wire traffic this gateway
    /// imposed on (or endured at, for its own site) each grid site,
    /// with rates per virtual second.
    pub fn intrusion_snapshot(&self) -> Vec<IntrusionRow> {
        self.telemetry
            .read()
            .as_ref()
            .map(|t| t.costs().intrusion_snapshot())
            .unwrap_or_default()
    }

    /// JSON text of [`AdminInterface::intrusion_snapshot`].
    pub fn intrusion_json(&self) -> String {
        serde_json::to_string_pretty(&self.intrusion_snapshot())
            .expect("intrusion rows are serialisable")
    }

    /// Recorded metric time-series rows, ordered by series then time.
    pub fn timeseries_history(&self) -> Vec<HistoryRow> {
        self.telemetry
            .read()
            .as_ref()
            .map(|t| t.timeseries().history())
            .unwrap_or_default()
    }

    /// JSON text of [`AdminInterface::timeseries_history`].
    pub fn timeseries_history_json(&self) -> String {
        serde_json::to_string_pretty(&self.timeseries_history())
            .expect("history rows are serialisable")
    }

    /// Add (or modify) a data source; applies its driver preferences and
    /// failure policy to the GridRMDriverManager.
    pub fn add_source(&self, config: DataSourceConfig) -> DbcResult<()> {
        let url = JdbcUrl::parse(&config.url)?;
        if config.preferred_drivers.is_empty() {
            self.driver_manager.clear_preferences(&url);
        } else {
            self.driver_manager
                .set_preferences(&url, config.preferred_drivers.clone());
        }
        if let Some(policy) = config.policy {
            self.driver_manager.set_policy(&url, policy);
        }
        if let Some(monitor) = self.health_monitor.read().as_ref() {
            monitor.track(&config.url);
        }
        self.sources.write().insert(config.url.clone(), config);
        Ok(())
    }

    /// Remove a data source: clears its preferences and cached results.
    pub fn remove_source(&self, url: &str) -> bool {
        let existed = self.sources.write().remove(url).is_some();
        if existed {
            if let Ok(parsed) = JdbcUrl::parse(url) {
                self.driver_manager.clear_preferences(&parsed);
            }
            self.cache.invalidate_source(url);
            self.health.write().remove(url);
            if let Some(monitor) = self.health_monitor.read().as_ref() {
                monitor.untrack(url);
            }
        }
        existed
    }

    /// The configured sources, sorted by URL.
    pub fn list_sources(&self) -> Vec<DataSourceConfig> {
        self.sources.read().values().cloned().collect()
    }

    /// Look up one source.
    pub fn source(&self, url: &str) -> Option<DataSourceConfig> {
        self.sources.read().get(url).cloned()
    }

    /// Discover data sources "by scanning a network" (§4): every endpoint
    /// advertising `host:proto` becomes a candidate `jdbc:proto://host/…`
    /// URL. `default_paths` supplies per-protocol path defaults (e.g. the
    /// SNMP community).
    pub fn discover(
        &self,
        network: &Network,
        default_paths: &[(&str, &str)],
    ) -> Vec<DataSourceConfig> {
        self.discover_filtered(network, default_paths, |_| true)
    }

    /// Discovery restricted to "a network address, or specific range of
    /// addresses" (§4): `host_filter` decides which hosts to include
    /// (e.g. `|h| h.ends_with(".site-a")`).
    pub fn discover_filtered(
        &self,
        network: &Network,
        default_paths: &[(&str, &str)],
        host_filter: impl Fn(&str) -> bool,
    ) -> Vec<DataSourceConfig> {
        let mut found = Vec::new();
        for addr in network.scan() {
            let Some((host, proto)) = addr.rsplit_once(':') else {
                continue;
            };
            if !host_filter(host) {
                continue;
            }
            let path = default_paths
                .iter()
                .find(|(p, _)| *p == proto)
                .map(|(_, path)| *path);
            let Some(path) = path else { continue };
            let url = format!("jdbc:{proto}://{host}/{path}");
            found.push(DataSourceConfig::dynamic(
                &url,
                &format!("{host} ({proto})"),
            ));
        }
        found
    }

    /// Explicitly poll one administered source ("explicitly poll",
    /// Fig 9) through *any* query surface — a local [`crate::Gateway`]
    /// or the grid-wide `GlobalLayer` — and feed the tree-view health
    /// model from the structured per-source outcomes. Being generic
    /// over [`QueryExecutor`] is the point: the admin console refreshes
    /// its tree the same way whether it manages one site or the Grid.
    pub fn poll_now(
        &self,
        executor: &dyn QueryExecutor,
        url: &str,
        sql: &str,
        now_ms: u64,
    ) -> DbcResult<ClientResponse> {
        let request = ClientRequest::builder(sql).source(url).build();
        let result = executor.execute(&request);
        match &result {
            Ok(resp) => {
                for o in &resp.outcomes {
                    if o.status.is_success() {
                        self.record_poll_ok(&o.source, now_ms);
                    } else if let Some(w) = o.warning() {
                        self.record_poll_error(&o.source, now_ms, &w);
                    }
                }
            }
            Err(e) => self.record_poll_error(url, now_ms, &e.to_string()),
        }
        result
    }

    /// Record a successful poll of `url` at `now_ms` (gateway hook).
    pub fn record_poll_ok(&self, url: &str, now_ms: u64) {
        self.health
            .write()
            .entry(url.to_owned())
            .or_default()
            .last_ok_ms = Some(now_ms);
    }

    /// Record a failed poll.
    pub fn record_poll_error(&self, url: &str, now_ms: u64, error: &str) {
        self.health
            .write()
            .entry(url.to_owned())
            .or_default()
            .last_error = Some((now_ms, error.to_owned()));
    }

    /// Record an event received from `url`.
    pub fn record_event(&self, url: &str, now_ms: u64) {
        self.health
            .write()
            .entry(url.to_owned())
            .or_default()
            .last_event_ms = Some(now_ms);
    }

    /// Build the Fig 9 tree view: one node per configured source, with a
    /// status icon and its cached queries. `recent_window_ms` is the
    /// "received in last n minutes" window for the event icon.
    pub fn tree_view(&self, now_ms: u64, recent_window_ms: u64) -> Vec<TreeNode> {
        let sources = self.sources.read();
        let health = self.health.read();
        let inventory = self.cache.inventory(now_ms);
        sources
            .values()
            .map(|cfg| {
                let h = health.get(&cfg.url).cloned().unwrap_or_default();
                let recent_event = h
                    .last_event_ms
                    .is_some_and(|t| now_ms.saturating_sub(t) <= recent_window_ms);
                // Ties (same virtual ms) count as failed: the error is
                // the more recent news.
                let failed = match (h.last_error, h.last_ok_ms) {
                    (Some((terr, _)), Some(tok)) => terr >= tok,
                    (Some(_), None) => true,
                    _ => false,
                };
                let status = if failed {
                    SourceStatus::PollFailed
                } else if recent_event {
                    SourceStatus::RecentEvent
                } else if h.last_ok_ms.is_some() {
                    SourceStatus::Ok
                } else {
                    SourceStatus::Unknown
                };
                let last_error = health
                    .get(&cfg.url)
                    .and_then(|h| h.last_error.as_ref().map(|(_, e)| e.clone()));
                TreeNode {
                    source: cfg.url.clone(),
                    label: cfg.label.clone(),
                    status,
                    cached: inventory
                        .iter()
                        .filter(|(s, _, _)| s == &cfg.url)
                        .map(|(_, sql, age)| (sql.clone(), *age))
                        .collect(),
                    last_ok_ms: h.last_ok_ms,
                    last_error,
                }
            })
            .collect()
    }

    /// Serialise the registration state.
    pub fn to_json(&self) -> String {
        let state = PersistedState {
            sources: self.list_sources(),
        };
        serde_json::to_string_pretty(&state).expect("state is serialisable")
    }

    /// Restore registration state produced by [`AdminInterface::to_json`].
    pub fn from_json(&self, json: &str) -> DbcResult<usize> {
        let state: PersistedState = serde_json::from_str(json)
            .map_err(|e| SqlError::Driver(format!("bad persisted state: {e}")))?;
        let n = state.sources.len();
        for cfg in state.sources {
            self.add_source(cfg)?;
        }
        Ok(n)
    }

    /// Persist to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load from a file.
    pub fn load(&self, path: &std::path::Path) -> DbcResult<usize> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| SqlError::Driver(format!("cannot read {}: {e}", path.display())))?;
        self.from_json(&json)
    }

    /// The versioned admin dispatch: one entry point behind which every
    /// ad-hoc `*_json` accessor now lives, so transports expose a single
    /// surface instead of growing a method per exposition. Paths are
    /// `/v1/<endpoint>`; unknown paths answer `NotFound` with the
    /// endpoint index as the body, and `/` or `/v1` serve the index
    /// directly. Trailing slashes are tolerated.
    pub fn handle(&self, path: &str) -> AdminResponse {
        let trimmed = path.trim().trim_end_matches('/');
        match trimmed {
            "" | "/" | "/v1" => AdminResponse::ok_text(self.index_text()),
            "/v1/metrics" => AdminResponse::ok_text(self.metrics_prometheus()),
            "/v1/metrics.json" => AdminResponse::ok_json(self.metrics_json()),
            "/v1/health" => AdminResponse::ok_json(self.health_json()),
            "/v1/journal" => AdminResponse::ok_json(self.journal_json()),
            "/v1/slow-queries" => AdminResponse::ok_json(self.slow_queries_json()),
            "/v1/slo" => AdminResponse::ok_json(self.slo_json()),
            "/v1/subscriptions" => AdminResponse::ok_json(self.subscriptions_json()),
            "/v1/costs" => AdminResponse::ok_json(self.costs_json()),
            "/v1/intrusion" => AdminResponse::ok_json(self.intrusion_json()),
            "/v1/timeseries" => AdminResponse::ok_json(self.timeseries_history_json()),
            "/v1/traces" => AdminResponse::ok_json(
                serde_json::to_string_pretty(&self.traces()).expect("traces are serialisable"),
            ),
            "/v1/sources" => AdminResponse::ok_json(self.to_json()),
            _ => match trimmed.strip_prefix("/v1/traces/") {
                Some(trace_id) if !trace_id.is_empty() => {
                    AdminResponse::ok_json(self.trace_spans_json(trace_id))
                }
                _ => AdminResponse {
                    status: AdminStatus::NotFound,
                    content_type: "text/plain",
                    body: self.index_text(),
                },
            },
        }
    }

    /// The endpoint index `/` and `/v1` serve (and `NotFound` bodies).
    fn index_text(&self) -> String {
        "gridrm admin v1\n\
         /v1/metrics        Prometheus text exposition\n\
         /v1/metrics.json   metric families as JSON\n\
         /v1/health         per-source health snapshot\n\
         /v1/journal        structured journal entries\n\
         /v1/slow-queries   slow-query log, slowest first\n\
         /v1/slo            SLO burn rates and error budgets\n\
         /v1/subscriptions  live continuous-query subscriptions\n\
         /v1/costs          per-query inclusive cost entries\n\
         /v1/intrusion      per-(site, cause) intrusion buckets\n\
         /v1/timeseries     recorded metric time-series rows\n\
         /v1/traces         recent query traces\n\
         /v1/traces/<id>    span tree of one trace\n\
         /v1/sources        configured data sources\n"
            .to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_simnet::SimClock;
    use std::sync::Arc;

    fn admin() -> AdminInterface {
        AdminInterface::new(
            Arc::new(GridRMDriverManager::new()),
            Arc::new(CacheController::new(5_000)),
        )
    }

    #[test]
    fn add_list_remove() {
        let a = admin();
        a.add_source(DataSourceConfig {
            url: "jdbc:snmp://node01/public".into(),
            label: "node01".into(),
            preferred_drivers: vec!["jdbc-snmp".into()],
            policy: Some(FailurePolicy::Retry(2)),
        })
        .unwrap();
        assert_eq!(a.list_sources().len(), 1);
        // Preferences landed in the driver manager.
        let url = JdbcUrl::parse("jdbc:snmp://node01/public").unwrap();
        assert_eq!(a.driver_manager.policy_for(&url), FailurePolicy::Retry(2));
        assert!(a.remove_source("jdbc:snmp://node01/public"));
        assert!(!a.remove_source("jdbc:snmp://node01/public"));
        assert!(a.list_sources().is_empty());
    }

    #[test]
    fn bad_url_rejected() {
        let a = admin();
        assert!(a
            .add_source(DataSourceConfig::dynamic("not-a-url", "x"))
            .is_err());
    }

    #[test]
    fn discovery_maps_addresses_to_urls() {
        let a = admin();
        let net = Network::new(SimClock::new(), 1);
        let svc: Arc<dyn gridrm_simnet::Service> = Arc::new(|_: &str, _: &[u8]| Vec::new());
        net.register("node00.x:snmp", svc.clone());
        net.register("node00.x:ganglia", svc.clone());
        net.register("node00.x:unknownproto", svc.clone());
        net.register("plain-address", svc);
        let found = a.discover(&net, &[("snmp", "public"), ("ganglia", "cluster")]);
        let urls: Vec<&str> = found.iter().map(|c| c.url.as_str()).collect();
        assert!(urls.contains(&"jdbc:snmp://node00.x/public"));
        assert!(urls.contains(&"jdbc:ganglia://node00.x/cluster"));
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn discovery_host_range_filter() {
        let a = admin();
        let net = Network::new(SimClock::new(), 2);
        let svc: Arc<dyn gridrm_simnet::Service> = Arc::new(|_: &str, _: &[u8]| Vec::new());
        net.register("node00.keep:snmp", svc.clone());
        net.register("node01.keep:snmp", svc.clone());
        net.register("node00.skip:snmp", svc);
        let found = a.discover_filtered(&net, &[("snmp", "public")], |h| h.ends_with(".keep"));
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|c| c.url.contains(".keep")));
    }

    #[test]
    fn tree_view_statuses() {
        let a = admin();
        for url in [
            "jdbc:snmp://ok/public",
            "jdbc:snmp://failed/public",
            "jdbc:snmp://eventful/public",
            "jdbc:snmp://fresh/public",
        ] {
            a.add_source(DataSourceConfig::dynamic(url, url)).unwrap();
        }
        a.record_poll_ok("jdbc:snmp://ok/public", 1_000);
        a.record_poll_ok("jdbc:snmp://failed/public", 1_000);
        a.record_poll_error("jdbc:snmp://failed/public", 2_000, "boom");
        a.record_poll_ok("jdbc:snmp://eventful/public", 1_000);
        a.record_event("jdbc:snmp://eventful/public", 9_000);

        let tree = a.tree_view(10_000, 60_000);
        let status_of = |url: &str| {
            tree.iter()
                .find(|n| n.source == url)
                .map(|n| n.status)
                .unwrap()
        };
        assert_eq!(status_of("jdbc:snmp://ok/public"), SourceStatus::Ok);
        assert_eq!(
            status_of("jdbc:snmp://failed/public"),
            SourceStatus::PollFailed
        );
        assert_eq!(
            status_of("jdbc:snmp://eventful/public"),
            SourceStatus::RecentEvent
        );
        assert_eq!(status_of("jdbc:snmp://fresh/public"), SourceStatus::Unknown);
        // Error message surfaced.
        assert_eq!(
            tree.iter()
                .find(|n| n.source == "jdbc:snmp://failed/public")
                .unwrap()
                .last_error
                .as_deref(),
            Some("boom")
        );
    }

    #[test]
    fn recovered_source_is_ok_again() {
        let a = admin();
        a.add_source(DataSourceConfig::dynamic("jdbc:snmp://n/p", "n"))
            .unwrap();
        a.record_poll_error("jdbc:snmp://n/p", 1_000, "down");
        a.record_poll_ok("jdbc:snmp://n/p", 2_000);
        assert_eq!(a.tree_view(3_000, 60_000)[0].status, SourceStatus::Ok);
    }

    #[test]
    fn persistence_roundtrip() {
        let a = admin();
        a.add_source(DataSourceConfig {
            url: "jdbc:ganglia://head/clu".into(),
            label: "cluster".into(),
            preferred_drivers: vec!["jdbc-ganglia".into(), "jdbc-snmp".into()],
            policy: Some(FailurePolicy::TryNext),
        })
        .unwrap();
        let json = a.to_json();
        let b = admin();
        assert_eq!(b.from_json(&json).unwrap(), 1);
        let restored = &b.list_sources()[0];
        assert_eq!(restored.preferred_drivers.len(), 2);
        // Preferences re-applied on load.
        let url = JdbcUrl::parse("jdbc:ganglia://head/clu").unwrap();
        assert!(b.driver_manager.clear_preferences(&url));
    }

    #[test]
    fn handle_dispatches_every_versioned_endpoint() {
        let a = admin();
        a.add_source(DataSourceConfig::dynamic("jdbc:snmp://n/p", "n"))
            .unwrap();
        // JSON endpoints answer Ok with parseable JSON bodies, even with
        // nothing attached (they expose empty snapshots).
        for path in [
            "/v1/metrics.json",
            "/v1/health",
            "/v1/journal",
            "/v1/slow-queries",
            "/v1/slo",
            "/v1/subscriptions",
            "/v1/costs",
            "/v1/intrusion",
            "/v1/timeseries",
            "/v1/traces",
            "/v1/traces/some-trace",
            "/v1/sources",
        ] {
            let resp = a.handle(path);
            assert_eq!(resp.status, AdminStatus::Ok, "{path}");
            assert_eq!(resp.content_type, "application/json", "{path}");
            assert!(
                serde_json::from_str::<serde_json::Value>(&resp.body).is_ok(),
                "{path} body is not JSON: {}",
                resp.body
            );
        }
        // The consolidated dispatch answers exactly what the accessors do.
        assert_eq!(a.handle("/v1/sources").body, a.to_json());
        assert_eq!(a.handle("/v1/costs").body, a.costs_json());
        assert_eq!(a.handle("/v1/metrics").body, a.metrics_prometheus());
        // Index + tolerated trailing slash.
        for path in ["/", "/v1", "/v1/", ""] {
            let resp = a.handle(path);
            assert_eq!(resp.status, AdminStatus::Ok, "{path:?}");
            assert!(resp.body.contains("/v1/metrics"), "{path:?}");
        }
        // Unknown paths: NotFound, body is the index.
        let resp = a.handle("/v2/nope");
        assert_eq!(resp.status, AdminStatus::NotFound);
        assert!(resp.body.contains("gridrm admin v1"));
        // Trailing-slash tolerance folds `/v1/traces/` into the list
        // endpoint rather than an empty trace id.
        assert_eq!(a.handle("/v1/traces/").status, AdminStatus::Ok);
        assert_eq!(a.handle("/v1/nope").status, AdminStatus::NotFound);
    }

    #[test]
    fn file_persistence() {
        let a = admin();
        a.add_source(DataSourceConfig::dynamic("jdbc:scms://head/", "scms"))
            .unwrap();
        let dir = std::env::temp_dir().join("gridrm-admin-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sources.json");
        a.save(&path).unwrap();
        let b = admin();
        assert_eq!(b.load(&path).unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }
}

impl SourceStatus {
    /// Terminal icon used by the text tree view (Fig 9's legend).
    pub fn icon(&self) -> &'static str {
        match self {
            SourceStatus::Ok => "[ok]",
            SourceStatus::RecentEvent => "[ev]",
            SourceStatus::PollFailed => "[!!]",
            SourceStatus::Unknown => "[??]",
        }
    }
}

/// Render a tree view as indented text — the terminal stand-in for the
/// JSP tree of Fig 9. Each source shows its status icon, up to
/// `max_cached` cached queries with ages, and any last error.
pub fn render_tree_text(tree: &[TreeNode], max_cached: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for node in tree {
        let _ = writeln!(
            out,
            "{} {}  ({})",
            node.status.icon(),
            node.label,
            node.source
        );
        for (sql, age) in node.cached.iter().take(max_cached) {
            let _ = writeln!(out, "      cached {:>4}s ago: {sql}", age / 1000);
        }
        if let Some(err) = &node.last_error {
            let brief: String = err.chars().take(72).collect();
            let _ = writeln!(out, "      last error: {brief}");
        }
    }
    out
}

#[cfg(test)]
mod render_tests {
    use super::*;

    #[test]
    fn tree_text_rendering() {
        let tree = vec![
            TreeNode {
                source: "jdbc:snmp://n/p".into(),
                label: "n".into(),
                status: SourceStatus::Ok,
                cached: vec![("SELECT 1 FROM t".into(), 12_000)],
                last_ok_ms: Some(1),
                last_error: None,
            },
            TreeNode {
                source: "jdbc:snmp://m/p".into(),
                label: "m".into(),
                status: SourceStatus::PollFailed,
                cached: vec![],
                last_ok_ms: None,
                last_error: Some("boom".into()),
            },
        ];
        let text = render_tree_text(&tree, 2);
        assert!(text.contains("[ok] n"));
        assert!(text.contains("cached   12s ago: SELECT 1 FROM t"));
        assert!(text.contains("[!!] m"));
        assert!(text.contains("last error: boom"));
    }

    #[test]
    fn icons_distinct() {
        let icons = [
            SourceStatus::Ok.icon(),
            SourceStatus::RecentEvent.icon(),
            SourceStatus::PollFailed.icon(),
            SourceStatus::Unknown.icon(),
        ];
        let unique: std::collections::HashSet<_> = icons.iter().collect();
        assert_eq!(unique.len(), 4);
    }
}
