//! The Request Manager (paper §3.1.1): "SQL requests are received from the
//! Abstract Client Interface Layer, the queries are processed and the
//! results returned to the ACIL. The RequestManager coordinates queries
//! across multiple data sources and consolidates results … executing
//! queries that span real-time resource requests and historical (or
//! cached) data."

use crate::acil::{ClientRequest, ClientResponse, QueryMode};
use crate::alerts::AlertEngine;
use crate::cache::CacheController;
use crate::connection::ConnectionManager;
use crate::events::EventManager;
use crate::history::HistoryManager;
use crate::security::{CoarseOperation, Decision, Identity, SecurityPolicy};
use crate::session::SessionManager;
use gridrm_dbc::{DbcResult, JdbcUrl, RowSet, SqlError};
use gridrm_simnet::SimClock;
use gridrm_sqlparse::Statement;
use gridrm_telemetry::{
    Counter, GatewayTelemetry, JournalSeverity, Labels, Registry, SpanBuilder, KIND_CACHE_SERVE,
};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Request-path counters. Shared telemetry cells: also exposable in a
/// gateway-wide [`Registry`] via [`RequestStats::register_into`].
#[derive(Debug, Default)]
pub struct RequestStats {
    /// Requests handled.
    pub requests: Counter,
    /// Individual source queries that hit a data source.
    pub realtime_fetches: Counter,
    /// Individual source queries served from the cache.
    pub cache_served: Counter,
    /// Historical queries executed.
    pub historical: Counter,
    /// Requests denied by a security layer.
    pub denied: Counter,
}

/// Named point-in-time copy of [`RequestStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestSnapshot {
    /// Requests handled.
    pub requests: u64,
    /// Individual source queries that hit a data source.
    pub realtime_fetches: u64,
    /// Individual source queries served from the cache.
    pub cache_served: u64,
    /// Historical queries executed.
    pub historical: u64,
    /// Requests denied by a security layer.
    pub denied: u64,
}

impl RequestStats {
    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> RequestSnapshot {
        RequestSnapshot {
            requests: self.requests.get(),
            realtime_fetches: self.realtime_fetches.get(),
            cache_served: self.cache_served.get(),
            historical: self.historical.get(),
            denied: self.denied.get(),
        }
    }

    /// Expose these counters in a metrics registry (shared cells: the
    /// struct and the registry observe the same values).
    pub fn register_into(&self, registry: &Registry) {
        registry.expose_counter(
            "gridrm_requests_total",
            "Client requests handled by the Request Manager",
            Labels::none(),
            &self.requests,
        );
        let series = [
            ("realtime_fetch", &self.realtime_fetches),
            ("cache_served", &self.cache_served),
            ("historical", &self.historical),
            ("denied", &self.denied),
        ];
        for (path, counter) in series {
            registry.expose_counter(
                "gridrm_request_paths_total",
                "Request-manager per-source outcomes by path",
                Labels::from_pairs(&[("path", path)]),
                counter,
            );
        }
    }
}

/// The Request Manager.
pub struct RequestManager {
    connections: Arc<ConnectionManager>,
    cache: Arc<CacheController>,
    history: HistoryManager,
    events: Arc<EventManager>,
    alerts: Arc<AlertEngine>,
    sessions: Arc<SessionManager>,
    security: Arc<RwLock<SecurityPolicy>>,
    clock: Arc<SimClock>,
    record_history: AtomicBool,
    stats: RequestStats,
    /// Optional gateway telemetry hub: request latency histogram and
    /// per-request trace spans.
    telemetry: Option<GatewayTelemetry>,
}

impl RequestManager {
    /// Wire the manager to its collaborators.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        connections: Arc<ConnectionManager>,
        cache: Arc<CacheController>,
        history: HistoryManager,
        events: Arc<EventManager>,
        alerts: Arc<AlertEngine>,
        sessions: Arc<SessionManager>,
        security: Arc<RwLock<SecurityPolicy>>,
        clock: Arc<SimClock>,
        record_history: bool,
        telemetry: Option<GatewayTelemetry>,
    ) -> RequestManager {
        RequestManager {
            connections,
            cache,
            history,
            events,
            alerts,
            sessions,
            security,
            clock,
            record_history: AtomicBool::new(record_history),
            stats: RequestStats::default(),
            telemetry,
        }
    }

    /// Toggle history recording.
    pub fn set_record_history(&self, on: bool) {
        self.record_history.store(on, Ordering::Relaxed);
    }

    fn resolve_identity(&self, request: &ClientRequest) -> DbcResult<Identity> {
        if let Some(token) = request.token {
            return self
                .sessions
                .resolve(token, self.clock.now_millis())
                .ok_or_else(|| SqlError::Security("invalid or expired session".into()));
        }
        Ok(request.identity.clone().unwrap_or_else(Identity::anonymous))
    }

    /// Handle one client request (the Fig 3 entry point). When telemetry
    /// is attached, the whole request is traced (ACIL receipt through
    /// driver execution and GLUE translation) and its virtual latency
    /// recorded. A request carrying a [`gridrm_telemetry::TraceContext`]
    /// joins that trace as a child span instead of starting a new root.
    pub fn handle(&self, request: &ClientRequest) -> DbcResult<ClientResponse> {
        // The EXPLAIN verb runs the normal pipeline under its own span
        // and answers with the resulting span tree instead of the rows.
        if let Ok(Statement::Explain { analyze, inner }) = gridrm_sqlparse::parse(&request.sql) {
            return self.handle_explain(request, analyze, &inner);
        }
        let mut span = self.telemetry.as_ref().map(|t| {
            let mut s = match &request.trace {
                Some(ctx) => t.span_in(ctx, &request.sql),
                None => t.span(&request.sql),
            };
            s.stage("acil");
            s
        });
        let started_ms = self.clock.now_millis();
        let result = self.handle_inner(request, &mut span);
        if let Some(t) = &self.telemetry {
            let elapsed = self.clock.now_millis().saturating_sub(started_ms);
            t.registry()
                .histogram(
                    "gridrm_request_latency_ms",
                    "End-to-end client request latency in virtual milliseconds",
                    Labels::none(),
                    gridrm_telemetry::DEFAULT_LATENCY_BUCKETS_MS,
                )
                .observe(elapsed as f64);
        }
        if let Some(s) = span {
            s.finish(match &result {
                Ok(_) => "ok",
                Err(SqlError::Security(_)) => "denied",
                Err(_) => "error",
            });
        }
        result
    }

    /// `EXPLAIN [ANALYZE]`: execute the inner statement through the
    /// ordinary pipeline as a child of an `explain` span, then render
    /// every span of the resulting trace as the result set. An inner
    /// failure still yields the (partial) span tree, with a warning —
    /// exactly when a query misbehaves is when its plan matters most.
    fn handle_explain(
        &self,
        request: &ClientRequest,
        analyze: bool,
        inner: &Statement,
    ) -> DbcResult<ClientResponse> {
        let Some(t) = &self.telemetry else {
            return Err(SqlError::Unsupported(
                "EXPLAIN needs gateway telemetry attached".into(),
            ));
        };
        let mut span = match &request.trace {
            Some(ctx) => t.span_in(ctx, &request.sql),
            None => t.span(&request.sql),
        };
        span.stage_with("explain", if analyze { "analyze" } else { "plan" });
        let trace_id = span.trace_id().to_owned();

        let inner_request = ClientRequest {
            sql: inner.to_string(),
            trace: Some(span.context()),
            ..request.clone()
        };
        let result = self.handle(&inner_request);

        let mut warnings = Vec::new();
        let mut sources_ok = 0;
        match &result {
            Ok(resp) => {
                warnings.clone_from(&resp.warnings);
                sources_ok = resp.sources_ok;
                span.finish("ok");
            }
            Err(e) => {
                warnings.push(format!("explain: inner query failed: {e}"));
                span.finish("error");
            }
        }

        let spans = t.traces().for_trace(&trace_id);
        Ok(ClientResponse {
            rows: crate::explain::explain_rowset(&spans, analyze)?,
            warnings,
            served_from_cache: 0,
            sources_ok,
        })
    }

    fn handle_inner(
        &self,
        request: &ClientRequest,
        span: &mut Option<SpanBuilder>,
    ) -> DbcResult<ClientResponse> {
        self.stats.requests.inc();
        if let Some(s) = span.as_mut() {
            s.stage("handle");
        }
        let identity = self.resolve_identity(request)?;

        // Clients may only SELECT; writes to the historical store go
        // through the admin/driver path.
        let parsed = gridrm_sqlparse::parse(&request.sql)?;
        let Statement::Select(sel) = parsed else {
            return Err(SqlError::Unsupported(
                "clients may only submit SELECT statements".into(),
            ));
        };

        let now = self.clock.now_millis();
        let policy = self.security.read().clone();

        if request.mode == QueryMode::Historical {
            if let Decision::Deny(reason) =
                policy.check_coarse(&identity, CoarseOperation::QueryHistory)
            {
                self.stats.denied.inc();
                return Err(SqlError::Security(reason));
            }
            self.stats.historical.inc();
            let rows = self.history.query(&request.sql, now as i64)?;
            return Ok(ClientResponse {
                sources_ok: usize::from(!rows.is_empty()),
                rows,
                warnings: Vec::new(),
                served_from_cache: 0,
            });
        }

        if let Decision::Deny(reason) = policy.check_coarse(&identity, CoarseOperation::Query) {
            self.stats.denied.inc();
            return Err(SqlError::Security(reason));
        }
        if request.sources.is_empty() {
            return Err(SqlError::Unsupported(
                "real-time queries need at least one data source".into(),
            ));
        }

        let group = sel.table.clone();
        let mut consolidated: Option<RowSet> = None;
        let mut warnings = Vec::new();
        let mut served_from_cache = 0usize;
        let mut sources_ok = 0usize;
        let mut first_err: Option<SqlError> = None;

        for source in &request.sources {
            // Fine Grained Security Layer, per resource (§2).
            match policy.check_fine(&identity, source, &group) {
                Decision::Allow => {}
                Decision::Deny(reason) => {
                    self.stats.denied.inc();
                    warnings.push(format!("{source}: {reason}"));
                    first_err.get_or_insert(SqlError::Security(reason));
                    continue;
                }
                Decision::Defer => {
                    warnings.push(format!(
                        "{source}: not authoritative here; route via the Global layer"
                    ));
                    continue;
                }
            }

            // Cache path (§4).
            if let QueryMode::Cached { max_age_ms } = request.mode {
                let hit = self.cache.lookup(source, &request.sql, now, max_age_ms);
                if let Some(s) = span.as_mut() {
                    s.stage_with("cache_lookup", if hit.is_some() { "hit" } else { "miss" });
                }
                if let Some(hit) = hit {
                    self.stats.cache_served.inc();
                    // The cache serving a last-known-state result is an
                    // operational fact worth journalling (§4): the client
                    // got an answer without the source being consulted.
                    if let Some(t) = &self.telemetry {
                        t.journal().record_traced(
                            now,
                            JournalSeverity::Info,
                            KIND_CACHE_SERVE,
                            source,
                            None,
                            Some("cache_lookup"),
                            "served last known state from cache",
                            span.as_ref().map(|s| s.trace_id()),
                        );
                    }
                    served_from_cache += 1;
                    sources_ok += 1;
                    append(
                        &mut consolidated,
                        (*hit.rows).clone(),
                        &mut warnings,
                        source,
                    );
                    continue;
                }
            }

            // Real-time path through the ConnectionManager (Fig 3).
            let url = match JdbcUrl::parse(source) {
                Ok(u) => u,
                Err(e) => {
                    warnings.push(format!("{source}: {e}"));
                    first_err.get_or_insert(e);
                    continue;
                }
            };
            self.stats.realtime_fetches.inc();
            if let Some(s) = span.as_mut() {
                s.source(source);
            }
            match self
                .connections
                .execute_traced(&url, &request.sql, span.as_mut())
            {
                Ok(rows) => {
                    sources_ok += 1;
                    let shared = Arc::new(rows.clone());
                    self.cache.store(source, &request.sql, shared, now);
                    if self.record_history.load(Ordering::Relaxed) {
                        if let Err(e) = self.history.record_rows(source, &group, &rows, now as i64)
                        {
                            warnings.push(format!("{source}: history write failed: {e}"));
                        }
                    }
                    // Threshold alerts over fresh data (Fig 9).
                    for event in self.alerts.scan(source, &group, &rows, now as i64) {
                        self.events.ingest(event);
                    }
                    append(&mut consolidated, rows, &mut warnings, source);
                }
                Err(e) => {
                    warnings.push(format!("{source}: {e}"));
                    first_err.get_or_insert(e);
                }
            }
        }

        match consolidated {
            Some(rows) => Ok(ClientResponse {
                rows,
                warnings,
                served_from_cache,
                sources_ok,
            }),
            None => {
                Err(first_err
                    .unwrap_or_else(|| SqlError::Driver("no source produced a result".into())))
            }
        }
    }

    /// Counters.
    pub fn stats(&self) -> &RequestStats {
        &self.stats
    }
}

/// Consolidate result sets from multiple sources (§3.1.1). Shape
/// mismatches (a driver translating differently) become warnings rather
/// than hard failures.
fn append(
    consolidated: &mut Option<RowSet>,
    rows: RowSet,
    warnings: &mut Vec<String>,
    source: &str,
) {
    match consolidated {
        None => *consolidated = Some(rows),
        Some(acc) => {
            if let Err(e) = acc.append(rows) {
                warnings.push(format!("{source}: result shape mismatch: {e}"));
            }
        }
    }
}
