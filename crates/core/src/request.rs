//! The Request Manager (paper §3.1.1): "SQL requests are received from the
//! Abstract Client Interface Layer, the queries are processed and the
//! results returned to the ACIL. The RequestManager coordinates queries
//! across multiple data sources and consolidates results … executing
//! queries that span real-time resource requests and historical (or
//! cached) data."

use crate::acil::{
    ClientRequest, ClientResponse, OutcomeStatus, QueryMode, ResultPolicy, SourceOutcome,
};
use crate::alerts::AlertEngine;
use crate::cache::CacheController;
use crate::connection::ConnectionManager;
use crate::events::EventManager;
use crate::history::HistoryManager;
use crate::security::{CoarseOperation, Decision, Identity, SecurityPolicy};
use crate::session::SessionManager;
use crate::singleflight::SingleFlight;
use gridrm_dbc::{DbcResult, JdbcUrl, RowSet, SqlError};
use gridrm_simnet::SimClock;
use gridrm_sqlparse::Statement;
use gridrm_telemetry::{
    CostVector, Counter, GatewayTelemetry, JournalSeverity, Labels, Registry, SpanBuilder,
    KIND_CACHE_SERVE,
};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Request-path counters. Shared telemetry cells: also exposable in a
/// gateway-wide [`Registry`] via [`RequestStats::register_into`].
#[derive(Debug, Default)]
pub struct RequestStats {
    /// Requests handled.
    pub requests: Counter,
    /// Individual source queries that hit a data source.
    pub realtime_fetches: Counter,
    /// Individual source queries served from the cache.
    pub cache_served: Counter,
    /// Historical queries executed.
    pub historical: Counter,
    /// Requests denied by a security layer.
    pub denied: Counter,
    /// Identical concurrent queries that shared another request's
    /// in-flight execution instead of running their own.
    pub coalesced_hits: Counter,
    /// Source queries abandoned because the request's deadline budget
    /// ran out.
    pub deadline_exceeded: Counter,
}

/// Named point-in-time copy of [`RequestStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestSnapshot {
    /// Requests handled.
    pub requests: u64,
    /// Individual source queries that hit a data source.
    pub realtime_fetches: u64,
    /// Individual source queries served from the cache.
    pub cache_served: u64,
    /// Historical queries executed.
    pub historical: u64,
    /// Requests denied by a security layer.
    pub denied: u64,
    /// Queries answered by single-flight coalescing.
    #[serde(default)]
    pub coalesced_hits: u64,
    /// Source queries dropped by deadline budget exhaustion.
    #[serde(default)]
    pub deadline_exceeded: u64,
}

impl RequestStats {
    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> RequestSnapshot {
        RequestSnapshot {
            requests: self.requests.get(),
            realtime_fetches: self.realtime_fetches.get(),
            cache_served: self.cache_served.get(),
            historical: self.historical.get(),
            denied: self.denied.get(),
            coalesced_hits: self.coalesced_hits.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
        }
    }

    /// Expose these counters in a metrics registry (shared cells: the
    /// struct and the registry observe the same values).
    pub fn register_into(&self, registry: &Registry) {
        registry.expose_counter(
            "gridrm_requests_total",
            "Client requests handled by the Request Manager",
            Labels::none(),
            &self.requests,
        );
        let series = [
            ("realtime_fetch", &self.realtime_fetches),
            ("cache_served", &self.cache_served),
            ("historical", &self.historical),
            ("denied", &self.denied),
            ("coalesced", &self.coalesced_hits),
            ("deadline_exceeded", &self.deadline_exceeded),
        ];
        for (path, counter) in series {
            registry.expose_counter(
                "gridrm_request_paths_total",
                "Request-manager per-source outcomes by path",
                Labels::from_pairs(&[("path", path)]),
                counter,
            );
        }
    }
}

/// The Request Manager.
pub struct RequestManager {
    connections: Arc<ConnectionManager>,
    cache: Arc<CacheController>,
    history: HistoryManager,
    events: Arc<EventManager>,
    alerts: Arc<AlertEngine>,
    sessions: Arc<SessionManager>,
    security: Arc<RwLock<SecurityPolicy>>,
    clock: Arc<SimClock>,
    record_history: AtomicBool,
    stats: RequestStats,
    /// Optional gateway telemetry hub: request latency histogram and
    /// per-request trace spans.
    telemetry: Option<GatewayTelemetry>,
    /// Deduplicates identical concurrent realtime fetches (keyed by
    /// source URL + SQL text).
    singleflight: SingleFlight<(String, String), DbcResult<RowSet>>,
    /// Single-flight coalescing on/off (config `coalesce_identical`).
    coalesce_identical: AtomicBool,
    /// Deadline budget applied to requests that set none
    /// (config `default_deadline_ms`; 0 = no deadline).
    default_deadline_ms: AtomicU64,
}

impl RequestManager {
    /// Wire the manager to its collaborators.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        connections: Arc<ConnectionManager>,
        cache: Arc<CacheController>,
        history: HistoryManager,
        events: Arc<EventManager>,
        alerts: Arc<AlertEngine>,
        sessions: Arc<SessionManager>,
        security: Arc<RwLock<SecurityPolicy>>,
        clock: Arc<SimClock>,
        record_history: bool,
        telemetry: Option<GatewayTelemetry>,
    ) -> RequestManager {
        RequestManager {
            connections,
            cache,
            history,
            events,
            alerts,
            sessions,
            security,
            clock,
            record_history: AtomicBool::new(record_history),
            stats: RequestStats::default(),
            telemetry,
            singleflight: SingleFlight::new(),
            coalesce_identical: AtomicBool::new(true),
            default_deadline_ms: AtomicU64::new(0),
        }
    }

    /// Toggle history recording.
    pub fn set_record_history(&self, on: bool) {
        self.record_history.store(on, Ordering::Relaxed);
    }

    /// Toggle single-flight coalescing of identical concurrent fetches.
    pub fn set_coalesce_identical(&self, on: bool) {
        self.coalesce_identical.store(on, Ordering::Relaxed);
    }

    /// Set the deadline budget (virtual ms) applied to requests that do
    /// not carry their own; 0 disables.
    pub fn set_default_deadline_ms(&self, deadline_ms: u64) {
        self.default_deadline_ms
            .store(deadline_ms, Ordering::Relaxed);
    }

    /// Followers currently parked on an in-flight `(source, sql)`
    /// fetch. Exists so concurrency tests can synchronise on "the
    /// second request has actually joined the flight".
    pub fn inflight_waiters(&self, source: &str, sql: &str) -> usize {
        self.singleflight
            .waiters(&(source.to_owned(), sql.to_owned()))
    }

    fn resolve_identity(&self, request: &ClientRequest) -> DbcResult<Identity> {
        if let Some(token) = request.token {
            return self
                .sessions
                .resolve(token, self.clock.now_millis())
                .ok_or_else(|| SqlError::Security("invalid or expired session".into()));
        }
        Ok(request.identity.clone().unwrap_or_else(Identity::anonymous))
    }

    /// Handle one client request (the Fig 3 entry point). When telemetry
    /// is attached, the whole request is traced (ACIL receipt through
    /// driver execution and GLUE translation) and its virtual latency
    /// recorded. A request carrying a [`gridrm_telemetry::TraceContext`]
    /// joins that trace as a child span instead of starting a new root.
    pub fn handle(&self, request: &ClientRequest) -> DbcResult<ClientResponse> {
        // The EXPLAIN verb runs the normal pipeline under its own span
        // and answers with the resulting span tree instead of the rows.
        if let Ok(Statement::Explain { analyze, inner }) = gridrm_sqlparse::parse(&request.sql) {
            return self.handle_explain(request, analyze, &inner);
        }
        let mut span = self.telemetry.as_ref().map(|t| {
            let mut s = match &request.trace {
                Some(ctx) => t.span_in(ctx, &request.sql),
                None => t.span(&request.sql),
            };
            s.stage("acil");
            s
        });
        let started_ms = self.clock.now_millis();
        let result = self.handle_inner(request, &mut span);
        if let Some(t) = &self.telemetry {
            let elapsed = self.clock.now_millis().saturating_sub(started_ms);
            t.registry()
                .histogram(
                    "gridrm_request_latency_ms",
                    "End-to-end client request latency in virtual milliseconds",
                    Labels::none(),
                    gridrm_telemetry::DEFAULT_LATENCY_BUCKETS_MS,
                )
                .observe(elapsed as f64);
        }
        if let Some(mut s) = span {
            // The rows this request ships back to its caller — cache
            // hits and coalesced shares included — are a direct charge
            // on the request span; driver-side work (rows scanned,
            // fetch units) rolls up from the execute child spans.
            if let Ok(resp) = &result {
                s.add_cost(&CostVector {
                    rows_returned: resp.rows.len() as u64,
                    ..CostVector::default()
                });
            }
            s.finish(match &result {
                Ok(_) => "ok",
                Err(SqlError::Security(_)) => "denied",
                Err(_) => "error",
            });
        }
        result
    }

    /// `EXPLAIN [ANALYZE]`: execute the inner statement through the
    /// ordinary pipeline as a child of an `explain` span, then render
    /// every span of the resulting trace as the result set. An inner
    /// failure still yields the (partial) span tree, with a warning —
    /// exactly when a query misbehaves is when its plan matters most.
    fn handle_explain(
        &self,
        request: &ClientRequest,
        analyze: bool,
        inner: &Statement,
    ) -> DbcResult<ClientResponse> {
        let Some(t) = &self.telemetry else {
            return Err(SqlError::Unsupported(
                "EXPLAIN needs gateway telemetry attached".into(),
            ));
        };
        let mut span = match &request.trace {
            Some(ctx) => t.span_in(ctx, &request.sql),
            None => t.span(&request.sql),
        };
        span.stage_with("explain", if analyze { "analyze" } else { "plan" });
        let trace_id = span.trace_id().to_owned();

        let inner_request = ClientRequest {
            sql: inner.to_string(),
            trace: Some(span.context()),
            ..request.clone()
        };
        let result = self.handle(&inner_request);

        let mut warnings = Vec::new();
        let mut sources_ok = 0;
        let mut outcomes = Vec::new();
        match &result {
            Ok(resp) => {
                warnings.clone_from(&resp.warnings);
                sources_ok = resp.sources_ok;
                outcomes.clone_from(&resp.outcomes);
                span.finish("ok");
            }
            Err(e) => {
                warnings.push(format!("explain: inner query failed: {e}"));
                span.finish("error");
            }
        }

        let spans = t.traces().for_trace(&trace_id);
        Ok(ClientResponse {
            rows: crate::explain::explain_rowset(&spans, analyze)?,
            warnings,
            served_from_cache: 0,
            sources_ok,
            outcomes,
        })
    }

    fn handle_inner(
        &self,
        request: &ClientRequest,
        span: &mut Option<SpanBuilder>,
    ) -> DbcResult<ClientResponse> {
        self.stats.requests.inc();
        if let Some(s) = span.as_mut() {
            s.stage("handle");
        }
        let identity = self.resolve_identity(request)?;

        // Clients may only SELECT; writes to the historical store go
        // through the admin/driver path.
        let parsed = gridrm_sqlparse::parse(&request.sql)?;
        let Statement::Select(sel) = parsed else {
            return Err(SqlError::Unsupported(
                "clients may only submit SELECT statements".into(),
            ));
        };

        let now = self.clock.now_millis();
        let policy = self.security.read().clone();

        if request.mode == QueryMode::Historical {
            if let Decision::Deny(reason) =
                policy.check_coarse(&identity, CoarseOperation::QueryHistory)
            {
                self.stats.denied.inc();
                return Err(SqlError::Security(reason));
            }
            self.stats.historical.inc();
            let rows = self.history.query(&request.sql, now as i64)?;
            let outcomes = if rows.is_empty() {
                Vec::new()
            } else {
                let elapsed = self.clock.now_millis().saturating_sub(now);
                vec![SourceOutcome::success(
                    "historical",
                    OutcomeStatus::Ok,
                    elapsed,
                )]
            };
            return Ok(ClientResponse::from_outcomes(rows, outcomes, Vec::new()));
        }

        if let Decision::Deny(reason) = policy.check_coarse(&identity, CoarseOperation::Query) {
            self.stats.denied.inc();
            return Err(SqlError::Security(reason));
        }
        if request.sources.is_empty() {
            return Err(SqlError::Unsupported(
                "real-time queries need at least one data source".into(),
            ));
        }

        let deadline = request.deadline_ms.or({
            match self.default_deadline_ms.load(Ordering::Relaxed) {
                0 => None,
                d => Some(d),
            }
        });
        let group = sel.table.clone();
        let mut consolidated: Option<RowSet> = None;
        let mut outcomes: Vec<SourceOutcome> = Vec::new();
        let mut extra_warnings = Vec::new();
        let mut first_err: Option<SqlError> = None;

        for (idx, source) in request.sources.iter().enumerate() {
            let src_started = self.clock.now_millis();
            let elapsed_total = src_started.saturating_sub(now);
            // Deadline budget: sources we no longer have time for are
            // reported as timeouts, not silently dropped.
            if deadline.is_some_and(|d| elapsed_total >= d) {
                self.stats.deadline_exceeded.inc();
                outcomes.push(SourceOutcome::failure(
                    source,
                    OutcomeStatus::Timeout,
                    0,
                    "deadline budget exhausted",
                ));
                first_err.get_or_insert(SqlError::Timeout(format!(
                    "{source}: deadline budget exhausted"
                )));
                if request.policy == ResultPolicy::FailFast {
                    fail_fast_remaining(
                        &mut outcomes,
                        request.sources.get(idx + 1..).unwrap_or_default(),
                    );
                    return Err(take_first_err(&mut first_err));
                }
                continue;
            }

            // Fine Grained Security Layer, per resource (§2).
            match policy.check_fine(&identity, source, &group) {
                Decision::Allow => {}
                Decision::Deny(reason) => {
                    self.stats.denied.inc();
                    outcomes.push(SourceOutcome::failure(
                        source,
                        OutcomeStatus::Denied,
                        0,
                        &reason,
                    ));
                    first_err.get_or_insert(SqlError::Security(reason));
                    if request.policy == ResultPolicy::FailFast {
                        fail_fast_remaining(
                            &mut outcomes,
                            request.sources.get(idx + 1..).unwrap_or_default(),
                        );
                        return Err(take_first_err(&mut first_err));
                    }
                    continue;
                }
                Decision::Defer => {
                    outcomes.push(SourceOutcome::failure(
                        source,
                        OutcomeStatus::Deferred,
                        0,
                        "not authoritative here; route via the Global layer",
                    ));
                    if request.policy == ResultPolicy::FailFast {
                        fail_fast_remaining(
                            &mut outcomes,
                            request.sources.get(idx + 1..).unwrap_or_default(),
                        );
                        return Err(first_err.unwrap_or_else(|| {
                            SqlError::Unsupported(format!(
                                "{source}: not authoritative here; route via the Global layer"
                            ))
                        }));
                    }
                    continue;
                }
            }

            // Cache path (§4).
            if let QueryMode::Cached { max_age_ms } = request.mode {
                let hit = self.cache.lookup(source, &request.sql, now, max_age_ms);
                if let Some(s) = span.as_mut() {
                    s.stage_with("cache_lookup", if hit.is_some() { "hit" } else { "miss" });
                }
                if let Some(hit) = hit {
                    self.stats.cache_served.inc();
                    // The cache serving a last-known-state result is an
                    // operational fact worth journalling (§4): the client
                    // got an answer without the source being consulted.
                    if let Some(t) = &self.telemetry {
                        t.journal().record_traced(
                            now,
                            JournalSeverity::Info,
                            KIND_CACHE_SERVE,
                            source,
                            None,
                            Some("cache_lookup"),
                            "served last known state from cache",
                            span.as_ref().map(|s| s.trace_id()),
                        );
                    }
                    outcomes.push(SourceOutcome::success(
                        source,
                        OutcomeStatus::Cached,
                        self.clock.now_millis().saturating_sub(src_started),
                    ));
                    append(
                        &mut consolidated,
                        (*hit.rows).clone(),
                        &mut extra_warnings,
                        source,
                    );
                    continue;
                }
            }

            // Real-time path through the ConnectionManager (Fig 3).
            let url = match JdbcUrl::parse(source) {
                Ok(u) => u,
                Err(e) => {
                    outcomes.push(SourceOutcome::failure(
                        source,
                        OutcomeStatus::Error,
                        0,
                        &e.to_string(),
                    ));
                    first_err.get_or_insert(e);
                    if request.policy == ResultPolicy::FailFast {
                        fail_fast_remaining(
                            &mut outcomes,
                            request.sources.get(idx + 1..).unwrap_or_default(),
                        );
                        return Err(take_first_err(&mut first_err));
                    }
                    continue;
                }
            };
            if let Some(s) = span.as_mut() {
                s.source(source);
            }
            // Single-flight: identical concurrent fetches share one
            // driver execution and one cache fill. The first caller in
            // (the leader) runs the closure; overlapping identical
            // callers block and share its result.
            let key = (source.clone(), request.sql.clone());
            let coalesce = self.coalesce_identical.load(Ordering::Relaxed);
            let (result, coalesced) = if coalesce {
                self.singleflight.execute(key, || {
                    self.stats.realtime_fetches.inc();
                    self.connections
                        .execute_traced(&url, &request.sql, span.as_mut())
                })
            } else {
                self.stats.realtime_fetches.inc();
                (
                    self.connections
                        .execute_traced(&url, &request.sql, span.as_mut()),
                    false,
                )
            };
            if coalesced {
                self.stats.coalesced_hits.inc();
                if let Some(s) = span.as_mut() {
                    s.stage_with("coalesce", "shared");
                }
            }
            let elapsed = self.clock.now_millis().saturating_sub(src_started);
            match result {
                Ok(rows) => {
                    if coalesced {
                        // The leader already filled the cache, recorded
                        // history and scanned alerts for this result —
                        // repeating any of it would double-count one
                        // physical fetch.
                        outcomes.push(SourceOutcome::success(
                            source,
                            OutcomeStatus::Coalesced,
                            elapsed,
                        ));
                        append(&mut consolidated, rows, &mut extra_warnings, source);
                        continue;
                    }
                    outcomes.push(SourceOutcome::success(source, OutcomeStatus::Ok, elapsed));
                    let shared = Arc::new(rows.clone());
                    self.cache.store(source, &request.sql, shared, now);
                    if self.record_history.load(Ordering::Relaxed) {
                        if let Err(e) = self.history.record_rows(source, &group, &rows, now as i64)
                        {
                            extra_warnings.push(format!("{source}: history write failed: {e}"));
                        }
                    }
                    // Threshold alerts over fresh data (Fig 9).
                    for event in self.alerts.scan(source, &group, &rows, now as i64) {
                        self.events.ingest(event);
                    }
                    append(&mut consolidated, rows, &mut extra_warnings, source);
                }
                Err(e) => {
                    outcomes.push(SourceOutcome::failure(
                        source,
                        OutcomeStatus::Error,
                        elapsed,
                        &e.to_string(),
                    ));
                    first_err.get_or_insert(e);
                    if request.policy == ResultPolicy::FailFast {
                        fail_fast_remaining(
                            &mut outcomes,
                            request.sources.get(idx + 1..).unwrap_or_default(),
                        );
                        return Err(take_first_err(&mut first_err));
                    }
                }
            }
        }

        if let ResultPolicy::Quorum(n) = request.policy {
            let ok = outcomes.iter().filter(|o| o.status.is_success()).count();
            if ok < n {
                return Err(SqlError::Driver(format!(
                    "quorum not met: {ok}/{n} sources answered"
                )));
            }
        }

        match consolidated {
            Some(rows) => Ok(ClientResponse::from_outcomes(
                rows,
                outcomes,
                extra_warnings,
            )),
            None => {
                Err(first_err
                    .unwrap_or_else(|| SqlError::Driver("no source produced a result".into())))
            }
        }
    }

    /// Counters.
    pub fn stats(&self) -> &RequestStats {
        &self.stats
    }
}

/// Under [`ResultPolicy::FailFast`] the first failure aborts the whole
/// request; sources never dispatched are still accounted for so the
/// outcome list covers every requested source.
/// The error a fail-fast return surfaces: the first recorded failure.
/// Every call site records one just before bailing, so the `Internal`
/// fallback is defensive — it degrades a would-be panic into an error
/// response instead (see docs/static-analysis.md, rule hot-path-panic).
fn take_first_err(first_err: &mut Option<SqlError>) -> SqlError {
    first_err.take().unwrap_or_else(|| {
        SqlError::Internal("fail-fast tripped with no recorded failure".to_owned())
    })
}

fn fail_fast_remaining(outcomes: &mut Vec<SourceOutcome>, remaining: &[String]) {
    for source in remaining {
        outcomes.push(SourceOutcome::failure(
            source,
            OutcomeStatus::Error,
            0,
            "skipped: fail-fast after earlier failure",
        ));
    }
}

/// Consolidate result sets from multiple sources (§3.1.1). Shape
/// mismatches (a driver translating differently) become warnings rather
/// than hard failures.
fn append(
    consolidated: &mut Option<RowSet>,
    rows: RowSet,
    warnings: &mut Vec<String>,
    source: &str,
) {
    match consolidated {
        None => *consolidated = Some(rows),
        Some(acc) => {
            if let Err(e) = acc.append(rows) {
                warnings.push(format!("{source}: result shape mismatch: {e}"));
            }
        }
    }
}
