//! The Cache Controller (Fig 3, §4): query results are cached so that "a
//! heavily used GridRM Gateway can return a view of the recent status of a
//! site while limiting resource intrusion", and the same mechanism "is
//! used between gateways to increase scalability by reducing unnecessary
//! requests".

use gridrm_dbc::RowSet;
use gridrm_telemetry::{Counter, Labels, Registry};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A cached result with its capture time.
#[derive(Clone)]
pub struct CachedResult {
    /// The result rows.
    pub rows: Arc<RowSet>,
    /// Virtual capture time (ms).
    pub cached_at_ms: u64,
}

impl CachedResult {
    /// Age of the entry at `now_ms`.
    pub fn age_ms(&self, now_ms: u64) -> u64 {
        now_ms.saturating_sub(self.cached_at_ms)
    }
}

/// Cache counters (experiment E7). Shared telemetry cells: also
/// exposable in a gateway-wide [`Registry`] via
/// [`CacheStats::register_into`].
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups that found a fresh entry.
    pub hits: Counter,
    /// Lookups that found nothing usable.
    pub misses: Counter,
    /// Entries stored.
    pub stores: Counter,
    /// Entries evicted/invalidated.
    pub invalidations: Counter,
}

/// Named point-in-time copy of [`CacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Lookups that found a fresh entry.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries stored.
    pub stores: u64,
    /// Entries evicted/invalidated.
    pub invalidations: u64,
}

impl CacheStats {
    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.get(),
            misses: self.misses.get(),
            stores: self.stores.get(),
            invalidations: self.invalidations.get(),
        }
    }

    /// Expose these counters in a metrics registry (shared cells: the
    /// struct and the registry observe the same values).
    pub fn register_into(&self, registry: &Registry) {
        let series = [
            ("hit", &self.hits),
            ("miss", &self.misses),
            ("store", &self.stores),
            ("invalidate", &self.invalidations),
        ];
        for (event, counter) in series {
            registry.expose_counter(
                "gridrm_cache_events_total",
                "Cache-controller lookup/store/invalidate events by kind",
                Labels::from_pairs(&[("event", event)]),
                counter,
            );
        }
    }
}

type Key = (String, String); // (source url, sql)

/// The gateway query-result cache.
pub struct CacheController {
    entries: RwLock<BTreeMap<Key, CachedResult>>,
    /// Default maximum age served, ms (clients may ask for fresher).
    default_ttl_ms: u64,
    stats: CacheStats,
}

impl CacheController {
    /// Controller with a default TTL.
    pub fn new(default_ttl_ms: u64) -> CacheController {
        CacheController {
            entries: RwLock::new(BTreeMap::new()),
            default_ttl_ms,
            stats: CacheStats::default(),
        }
    }

    /// The default TTL.
    pub fn default_ttl_ms(&self) -> u64 {
        self.default_ttl_ms
    }

    /// Look up a cached result no older than `max_age_ms` (`None` uses the
    /// default TTL).
    pub fn lookup(
        &self,
        source: &str,
        sql: &str,
        now_ms: u64,
        max_age_ms: Option<u64>,
    ) -> Option<CachedResult> {
        let limit = max_age_ms.unwrap_or(self.default_ttl_ms);
        let key: Key = (source.to_owned(), sql.to_owned());
        let found = self.entries.read().get(&key).cloned();
        match found {
            Some(entry) if entry.age_ms(now_ms) <= limit => {
                self.stats.hits.inc();
                Some(entry)
            }
            _ => {
                self.stats.misses.inc();
                None
            }
        }
    }

    /// Store a fresh result.
    pub fn store(&self, source: &str, sql: &str, rows: Arc<RowSet>, now_ms: u64) {
        self.stats.stores.inc();
        self.entries.write().insert(
            (source.to_owned(), sql.to_owned()),
            CachedResult {
                rows,
                cached_at_ms: now_ms,
            },
        );
    }

    /// Invalidate all entries for one source (e.g. after a failure or an
    /// explicit poll). Returns how many entries were dropped.
    pub fn invalidate_source(&self, source: &str) -> usize {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|(s, _), _| s != source);
        let dropped = before - entries.len();
        self.stats.invalidations.add(dropped as u64);
        dropped
    }

    /// Drop entries older than `max_age_ms` (housekeeping sweep).
    pub fn sweep(&self, now_ms: u64, max_age_ms: u64) -> usize {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|_, e| e.age_ms(now_ms) <= max_age_ms);
        let dropped = before - entries.len();
        self.stats.invalidations.add(dropped as u64);
        dropped
    }

    /// Every cached (source, sql, age) triple — feeds the admin tree view
    /// (Fig 9, "populated with cached data from queries issued within the
    /// local gateway").
    pub fn inventory(&self, now_ms: u64) -> Vec<(String, String, u64)> {
        let mut v: Vec<(String, String, u64)> = self
            .entries
            .read()
            .iter()
            .map(|((s, q), e)| (s.clone(), q.clone(), e.age_ms(now_ms)))
            .collect();
        v.sort();
        v
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_dbc::{ColumnMeta, ResultSetMetaData};
    use gridrm_sqlparse::SqlType;

    fn rows() -> Arc<RowSet> {
        Arc::new(RowSet::empty(ResultSetMetaData::new(vec![
            ColumnMeta::new("a", SqlType::Int),
        ])))
    }

    #[test]
    fn hit_within_ttl_miss_after() {
        let c = CacheController::new(5_000);
        c.store("src", "SELECT 1", rows(), 1_000);
        assert!(c.lookup("src", "SELECT 1", 3_000, None).is_some());
        assert!(c.lookup("src", "SELECT 1", 7_000, None).is_none());
        let snap = c.stats().snapshot();
        assert_eq!((snap.hits, snap.misses, snap.stores), (1, 1, 1));
    }

    #[test]
    fn ttl_expiry_is_inclusive_at_the_boundary() {
        // An entry exactly `ttl` old is still served; one millisecond
        // older is not. Clients pinning `max_age_ms` get the same edge.
        let c = CacheController::new(5_000);
        c.store("src", "q", rows(), 1_000);
        assert!(c.lookup("src", "q", 5_999, None).is_some(), "age ttl-1");
        assert!(c.lookup("src", "q", 6_000, None).is_some(), "age == ttl");
        assert!(c.lookup("src", "q", 6_001, None).is_none(), "age ttl+1");
        assert!(c.lookup("src", "q", 2_000, Some(1_000)).is_some());
        assert!(c.lookup("src", "q", 2_001, Some(1_000)).is_none());
        // Zero max-age only accepts a same-instant entry.
        assert!(c.lookup("src", "q", 1_000, Some(0)).is_some());
        assert!(c.lookup("src", "q", 1_001, Some(0)).is_none());
    }

    #[test]
    fn clock_skew_before_store_time_counts_as_age_zero() {
        // `age_ms` saturates: a lookup timestamped before the store (the
        // sim clock never goes backwards, but defensive code shouldn't
        // underflow) behaves like a fresh entry.
        let c = CacheController::new(5_000);
        c.store("src", "q", rows(), 10_000);
        assert_eq!(c.lookup("src", "q", 9_000, None).unwrap().age_ms(9_000), 0);
    }

    #[test]
    fn sweep_keeps_entries_exactly_at_the_age_limit() {
        let c = CacheController::new(60_000);
        c.store("a", "q1", rows(), 0);
        c.store("a", "q2", rows(), 1);
        // At now=20_000 with a 20_000 limit, q1 is exactly at the limit
        // (kept) and nothing is older.
        assert_eq!(c.sweep(20_000, 20_000), 0);
        // One millisecond later q1 crosses the line; q2 survives.
        assert_eq!(c.sweep(20_001, 20_000), 1);
        assert!(c.lookup("a", "q2", 20_001, None).is_some());
        assert!(c.lookup("a", "q1", 20_001, None).is_none());
    }

    #[test]
    fn client_max_age_overrides_default() {
        let c = CacheController::new(60_000);
        c.store("src", "q", rows(), 0);
        // Client insists on ≤1s freshness.
        assert!(c.lookup("src", "q", 5_000, Some(1_000)).is_none());
        assert!(c.lookup("src", "q", 5_000, Some(10_000)).is_some());
    }

    #[test]
    fn keyed_by_source_and_sql() {
        let c = CacheController::new(5_000);
        c.store("a", "q1", rows(), 0);
        assert!(c.lookup("a", "q2", 0, None).is_none());
        assert!(c.lookup("b", "q1", 0, None).is_none());
        assert!(c.lookup("a", "q1", 0, None).is_some());
    }

    #[test]
    fn invalidate_source_scoped() {
        let c = CacheController::new(5_000);
        c.store("a", "q1", rows(), 0);
        c.store("a", "q2", rows(), 0);
        c.store("b", "q1", rows(), 0);
        assert_eq!(c.invalidate_source("a"), 2);
        assert_eq!(c.len(), 1);
        assert!(c.lookup("b", "q1", 0, None).is_some());
    }

    #[test]
    fn sweep_by_age() {
        let c = CacheController::new(60_000);
        c.store("a", "q1", rows(), 0);
        c.store("a", "q2", rows(), 50_000);
        assert_eq!(c.sweep(60_000, 20_000), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn inventory_reports_ages() {
        let c = CacheController::new(5_000);
        c.store("a", "q", rows(), 1_000);
        let inv = c.inventory(4_000);
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].2, 3_000);
    }

    #[test]
    fn age_never_negative() {
        let c = CacheController::new(5_000);
        c.store("a", "q", rows(), 10_000);
        // Clock skew (entry "from the future") reads as age 0.
        assert!(c.lookup("a", "q", 5_000, None).is_some());
    }
}
