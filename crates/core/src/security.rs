//! The Coarse and Fine Grained Security Layers (paper §2): "each Gateway
//! is responsible for the security of the resources it controls", with
//! "multi-level and granularity of security for data access" and the
//! option, in a hierarchy, to *defer* decisions "to the local Gateway
//! responsible for a given resource".

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An authenticated principal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Identity {
    /// Principal name.
    pub name: String,
    /// Granted roles.
    pub roles: BTreeSet<String>,
}

impl Identity {
    /// Identity with roles.
    pub fn new(name: &str, roles: &[&str]) -> Identity {
        Identity {
            name: name.to_owned(),
            roles: roles.iter().map(|r| (*r).to_owned()).collect(),
        }
    }

    /// The anonymous principal (no roles).
    pub fn anonymous() -> Identity {
        Identity {
            name: "anonymous".to_owned(),
            roles: BTreeSet::new(),
        }
    }

    /// Does the identity hold `role`?
    pub fn has_role(&self, role: &str) -> bool {
        self.roles.contains(role)
    }
}

/// Gateway-level operations guarded by the Coarse Grained Security Layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoarseOperation {
    /// Query local resources.
    Query,
    /// Query resources owned by remote gateways (Global layer).
    QueryRemote,
    /// Read historical data.
    QueryHistory,
    /// Subscribe to events.
    Subscribe,
    /// Administer drivers and data sources (Figs 6–8).
    Administer,
}

/// Outcome of a security check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Proceed.
    Allow,
    /// Refuse, with a reason.
    Deny(String),
    /// This gateway is not authoritative; ask the gateway that owns the
    /// resource (hierarchical deferral, §2).
    Defer,
}

impl Decision {
    /// Is this an Allow?
    pub fn is_allow(&self) -> bool {
        matches!(self, Decision::Allow)
    }
}

/// One fine-grained ACL rule. Matching is prefix-based on the resource URL
/// and case-insensitive exact (or `*`) on the GLUE group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AclRule {
    /// Role the rule applies to (`*` = any role, including none).
    pub role: String,
    /// URL prefix the rule covers (empty = all resources).
    pub url_prefix: String,
    /// GLUE group (`*` = all groups).
    pub group: String,
    /// Allow or deny.
    pub allow: bool,
}

impl AclRule {
    fn matches(&self, identity: &Identity, url: &str, group: &str) -> bool {
        let role_ok = self.role == "*" || identity.has_role(&self.role);
        let url_ok = url.starts_with(&self.url_prefix);
        let group_ok = self.group == "*" || self.group.eq_ignore_ascii_case(group);
        role_ok && url_ok && group_ok
    }
}

/// The gateway's complete security policy: coarse role requirements plus
/// fine-grained ACL rules.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SecurityPolicy {
    /// Role required per coarse operation (absent = no requirement).
    pub coarse: Vec<(CoarseOperation, String)>,
    /// Fine-grained rules, evaluated first-match-wins.
    pub rules: Vec<AclRule>,
    /// Verdict when no rule matches.
    pub default_allow: bool,
    /// URL prefixes this gateway is *not* authoritative for → Defer.
    pub deferred_prefixes: Vec<String>,
}

impl SecurityPolicy {
    /// A policy that allows everything (the development default; the
    /// paper's prototype was similarly open by default).
    pub fn permissive() -> SecurityPolicy {
        SecurityPolicy {
            coarse: Vec::new(),
            rules: Vec::new(),
            default_allow: true,
            deferred_prefixes: Vec::new(),
        }
    }

    /// A locked-down policy: every coarse operation requires a role named
    /// after it and the fine default is deny.
    pub fn strict() -> SecurityPolicy {
        SecurityPolicy {
            coarse: vec![
                (CoarseOperation::Query, "monitor".to_owned()),
                (CoarseOperation::QueryRemote, "monitor".to_owned()),
                (CoarseOperation::QueryHistory, "monitor".to_owned()),
                (CoarseOperation::Subscribe, "monitor".to_owned()),
                (CoarseOperation::Administer, "admin".to_owned()),
            ],
            rules: Vec::new(),
            default_allow: false,
            deferred_prefixes: Vec::new(),
        }
    }

    /// Builder: require `role` for `op`.
    pub fn require(mut self, op: CoarseOperation, role: &str) -> SecurityPolicy {
        self.coarse.retain(|(o, _)| *o != op);
        self.coarse.push((op, role.to_owned()));
        self
    }

    /// Builder: append a fine-grained rule.
    pub fn with_rule(mut self, rule: AclRule) -> SecurityPolicy {
        self.rules.push(rule);
        self
    }

    /// Coarse Grained Security Layer check.
    pub fn check_coarse(&self, identity: &Identity, op: CoarseOperation) -> Decision {
        match self.coarse.iter().find(|(o, _)| *o == op) {
            Some((_, role)) if !identity.has_role(role) => {
                Decision::Deny(format!("operation {op:?} requires role '{role}'",))
            }
            _ => Decision::Allow,
        }
    }

    /// Fine Grained Security Layer check for `(resource URL, GLUE group)`.
    pub fn check_fine(&self, identity: &Identity, url: &str, group: &str) -> Decision {
        if self
            .deferred_prefixes
            .iter()
            .any(|p| url.starts_with(p.as_str()))
        {
            return Decision::Defer;
        }
        for rule in &self.rules {
            if rule.matches(identity, url, group) {
                return if rule.allow {
                    Decision::Allow
                } else {
                    Decision::Deny(format!(
                        "access to {group} on {url} denied for '{}'",
                        identity.name
                    ))
                };
            }
        }
        if self.default_allow {
            Decision::Allow
        } else {
            Decision::Deny(format!(
                "no rule grants '{}' access to {group} on {url}",
                identity.name
            ))
        }
    }
}

impl Default for SecurityPolicy {
    fn default() -> Self {
        SecurityPolicy::permissive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissive_allows_everything() {
        let p = SecurityPolicy::permissive();
        let anon = Identity::anonymous();
        assert!(p
            .check_coarse(&anon, CoarseOperation::Administer)
            .is_allow());
        assert!(p
            .check_fine(&anon, "jdbc:snmp://n/p", "Processor")
            .is_allow());
    }

    #[test]
    fn strict_denies_anonymous() {
        let p = SecurityPolicy::strict();
        let anon = Identity::anonymous();
        assert!(matches!(
            p.check_coarse(&anon, CoarseOperation::Query),
            Decision::Deny(_)
        ));
        let monitor = Identity::new("alice", &["monitor"]);
        assert!(p.check_coarse(&monitor, CoarseOperation::Query).is_allow());
        assert!(matches!(
            p.check_coarse(&monitor, CoarseOperation::Administer),
            Decision::Deny(_)
        ));
        // Fine default deny.
        assert!(matches!(
            p.check_fine(&monitor, "jdbc:snmp://n/p", "Processor"),
            Decision::Deny(_)
        ));
    }

    #[test]
    fn first_match_wins() {
        let p = SecurityPolicy::strict()
            .with_rule(AclRule {
                role: "monitor".into(),
                url_prefix: "jdbc:snmp://secret".into(),
                group: "*".into(),
                allow: false,
            })
            .with_rule(AclRule {
                role: "monitor".into(),
                url_prefix: "jdbc:snmp://".into(),
                group: "*".into(),
                allow: true,
            });
        let alice = Identity::new("alice", &["monitor"]);
        assert!(p
            .check_fine(&alice, "jdbc:snmp://node01/p", "Processor")
            .is_allow());
        assert!(matches!(
            p.check_fine(&alice, "jdbc:snmp://secret-host/p", "Processor"),
            Decision::Deny(_)
        ));
    }

    #[test]
    fn group_scoped_rule() {
        let p = SecurityPolicy::strict().with_rule(AclRule {
            role: "*".into(),
            url_prefix: String::new(),
            group: "Processor".into(),
            allow: true,
        });
        let anon = Identity::anonymous();
        assert!(p.check_fine(&anon, "jdbc:x://h/p", "processor").is_allow());
        assert!(matches!(
            p.check_fine(&anon, "jdbc:x://h/p", "MainMemory"),
            Decision::Deny(_)
        ));
    }

    #[test]
    fn deferral() {
        let mut p = SecurityPolicy::permissive();
        p.deferred_prefixes.push("jdbc:snmp://remote-site".into());
        let anon = Identity::anonymous();
        assert_eq!(
            p.check_fine(&anon, "jdbc:snmp://remote-site-x/p", "Host"),
            Decision::Defer
        );
        assert!(p
            .check_fine(&anon, "jdbc:snmp://local/p", "Host")
            .is_allow());
    }

    #[test]
    fn require_replaces_existing() {
        let p = SecurityPolicy::permissive()
            .require(CoarseOperation::Query, "a")
            .require(CoarseOperation::Query, "b");
        let has_a = Identity::new("x", &["a"]);
        let has_b = Identity::new("y", &["b"]);
        assert!(!p.check_coarse(&has_a, CoarseOperation::Query).is_allow());
        assert!(p.check_coarse(&has_b, CoarseOperation::Query).is_allow());
    }
}
