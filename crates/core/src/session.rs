//! Session Management (Fig 2): clients authenticate once, receive a
//! token, and present it on subsequent requests until it expires.

use crate::security::Identity;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// An opaque session token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionToken(pub u64);

struct Session {
    identity: Identity,
    expires_ms: u64,
}

/// The session registry. Time comes from the shared virtual clock, passed
/// in by the caller so the manager itself stays clock-agnostic.
pub struct SessionManager {
    sessions: RwLock<HashMap<u64, Session>>,
    ttl_ms: u64,
    next_id: AtomicU64,
}

impl SessionManager {
    /// Manager whose sessions live `ttl_ms` of virtual time.
    pub fn new(ttl_ms: u64) -> SessionManager {
        SessionManager {
            sessions: RwLock::new(HashMap::new()),
            ttl_ms,
            next_id: AtomicU64::new(1),
        }
    }

    /// Open a session for `identity` at time `now_ms`.
    pub fn open(&self, identity: Identity, now_ms: u64) -> SessionToken {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions.write().insert(
            id,
            Session {
                identity,
                expires_ms: now_ms + self.ttl_ms,
            },
        );
        SessionToken(id)
    }

    /// Resolve a token to its identity; renews the expiry (sliding TTL).
    pub fn resolve(&self, token: SessionToken, now_ms: u64) -> Option<Identity> {
        let mut sessions = self.sessions.write();
        let session = sessions.get_mut(&token.0)?;
        if session.expires_ms < now_ms {
            sessions.remove(&token.0);
            return None;
        }
        session.expires_ms = now_ms + self.ttl_ms;
        Some(session.identity.clone())
    }

    /// Close a session explicitly.
    pub fn close(&self, token: SessionToken) -> bool {
        self.sessions.write().remove(&token.0).is_some()
    }

    /// Drop all expired sessions; returns how many were removed.
    pub fn sweep(&self, now_ms: u64) -> usize {
        let mut sessions = self.sessions.write();
        let before = sessions.len();
        sessions.retain(|_, s| s.expires_ms >= now_ms);
        before - sessions.len()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.read().len()
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.sessions.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_resolve_close() {
        let m = SessionManager::new(10_000);
        let t = m.open(Identity::new("alice", &["monitor"]), 0);
        let id = m.resolve(t, 5_000).unwrap();
        assert_eq!(id.name, "alice");
        assert!(m.close(t));
        assert!(m.resolve(t, 5_000).is_none());
        assert!(!m.close(t));
    }

    #[test]
    fn expiry_and_sliding_renewal() {
        let m = SessionManager::new(10_000);
        let t = m.open(Identity::anonymous(), 0);
        // Touch at 8s: renewed until 18s.
        assert!(m.resolve(t, 8_000).is_some());
        assert!(m.resolve(t, 17_000).is_some());
        // Let it lapse.
        assert!(m.resolve(t, 40_000).is_none());
    }

    #[test]
    fn sweep_removes_only_expired() {
        let m = SessionManager::new(1_000);
        let _a = m.open(Identity::anonymous(), 0);
        let b = m.open(Identity::anonymous(), 5_000);
        assert_eq!(m.sweep(2_000), 1);
        assert_eq!(m.len(), 1);
        assert!(m.resolve(b, 5_500).is_some());
    }

    #[test]
    fn tokens_are_unique() {
        let m = SessionManager::new(1_000);
        let a = m.open(Identity::anonymous(), 0);
        let b = m.open(Identity::anonymous(), 0);
        assert_ne!(a, b);
    }
}
