//! The Abstract Client Interface Layer (paper §2): "a clear separation
//! between client specific APIs and the data model used within GridRM".
//! Java applets, JSP pages and Web/Grid services all funnel through this
//! one request shape; here the bundled client adapters are the in-process
//! [`ClientInterface`] and a text adapter ([`render_csv`]/[`render_json`])
//! standing in for the web-facing front ends.

use crate::security::Identity;
use crate::session::SessionToken;
use gridrm_dbc::{DbcResult, RowSet};
use gridrm_sqlparse::SqlValue;
use gridrm_telemetry::TraceContext;

/// How a query should be satisfied (§3.1.1, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Always contact the data source ("explicitly poll", Fig 9).
    RealTime,
    /// Serve from the gateway cache when fresh enough; `None` uses the
    /// gateway's default TTL ("refresh their tree view", Fig 9).
    Cached {
        /// Maximum acceptable age in virtual ms.
        max_age_ms: Option<u64>,
    },
    /// Query the gateway's internal historical database.
    Historical,
}

/// A client request as it crosses the ACIL.
#[derive(Debug, Clone)]
pub struct ClientRequest {
    /// Session token from a previous authentication, if any.
    pub token: Option<SessionToken>,
    /// Direct identity (in-process clients); ignored when `token` is set.
    pub identity: Option<Identity>,
    /// Data-source URLs to query ("the request consists of two parts, the
    /// network address of the data source and the query", §3.2.2).
    /// Historical queries leave this empty.
    pub sources: Vec<String>,
    /// The SQL text.
    pub sql: String,
    /// Freshness mode.
    pub mode: QueryMode,
    /// Trace context this request runs under, when it is one leg of a
    /// larger traced operation (global fan-out, `EXPLAIN`). `None`
    /// starts a fresh trace.
    pub trace: Option<TraceContext>,
}

impl ClientRequest {
    /// Real-time query of one source.
    pub fn realtime(source: &str, sql: &str) -> ClientRequest {
        ClientRequest {
            token: None,
            identity: None,
            sources: vec![source.to_owned()],
            sql: sql.to_owned(),
            mode: QueryMode::RealTime,
            trace: None,
        }
    }

    /// Cache-friendly query of one source.
    pub fn cached(source: &str, sql: &str, max_age_ms: Option<u64>) -> ClientRequest {
        ClientRequest {
            mode: QueryMode::Cached { max_age_ms },
            ..ClientRequest::realtime(source, sql)
        }
    }

    /// Historical query.
    pub fn historical(sql: &str) -> ClientRequest {
        ClientRequest {
            token: None,
            identity: None,
            sources: Vec::new(),
            sql: sql.to_owned(),
            mode: QueryMode::Historical,
            trace: None,
        }
    }

    /// Builder: attach an identity.
    pub fn with_identity(mut self, identity: Identity) -> ClientRequest {
        self.identity = Some(identity);
        self
    }

    /// Builder: attach a session token.
    pub fn with_token(mut self, token: SessionToken) -> ClientRequest {
        self.token = Some(token);
        self
    }

    /// Builder: query several sources (consolidated, §3.1.1).
    pub fn with_sources(mut self, sources: &[&str]) -> ClientRequest {
        self.sources = sources.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Builder: run under an existing trace context, making the
    /// gateway's request span a child instead of a new root.
    pub fn with_trace(mut self, trace: TraceContext) -> ClientRequest {
        self.trace = Some(trace);
        self
    }
}

/// The answer crossing back over the ACIL.
#[derive(Debug)]
pub struct ClientResponse {
    /// Consolidated result rows.
    pub rows: RowSet,
    /// Per-source warnings (failed sources, deferred security, …).
    pub warnings: Vec<String>,
    /// How many sources were answered from the gateway cache.
    pub served_from_cache: usize,
    /// How many sources contributed rows.
    pub sources_ok: usize,
}

/// Anything that accepts GridRM client requests (the ACIL seam).
pub trait ClientInterface: Send + Sync {
    /// Submit one request.
    fn submit(&self, request: &ClientRequest) -> DbcResult<ClientResponse>;
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Render a result set as CSV (header + rows) — the "Web/Grid Services"
/// client adapter.
pub fn render_csv(rows: &RowSet) -> String {
    let meta = rows.meta();
    let mut out = String::new();
    let names: Vec<String> = (0..meta.column_count())
        .map(|i| csv_escape(meta.column_name(i).unwrap_or("?")))
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in rows.rows() {
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                SqlValue::Null => String::new(),
                other => csv_escape(&other.to_string()),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Render a result set as a JSON array of objects.
pub fn render_json(rows: &RowSet) -> String {
    let meta = rows.meta();
    let objects: Vec<serde_json::Value> = rows
        .rows()
        .iter()
        .map(|row| {
            let mut map = serde_json::Map::new();
            for (i, v) in row.iter().enumerate() {
                let key = meta.column_name(i).unwrap_or("?").to_owned();
                let val = match v {
                    SqlValue::Null => serde_json::Value::Null,
                    SqlValue::Bool(b) => serde_json::Value::Bool(*b),
                    SqlValue::Int(x) => serde_json::Value::from(*x),
                    SqlValue::Float(x) => serde_json::Value::from(*x),
                    SqlValue::Timestamp(t) => serde_json::Value::from(*t),
                    SqlValue::Str(s) => serde_json::Value::from(s.clone()),
                };
                map.insert(key, val);
            }
            serde_json::Value::Object(map)
        })
        .collect();
    serde_json::Value::Array(objects).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_dbc::{ColumnMeta, ResultSetMetaData};
    use gridrm_sqlparse::SqlType;

    fn rows() -> RowSet {
        RowSet::new(
            ResultSetMetaData::new(vec![
                ColumnMeta::new("Hostname", SqlType::Str),
                ColumnMeta::new("Load1", SqlType::Float),
            ]),
            vec![
                vec![SqlValue::Str("a,b".into()), SqlValue::Float(0.5)],
                vec![SqlValue::Str("n2".into()), SqlValue::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn request_builders() {
        let r = ClientRequest::realtime("jdbc:snmp://h/p", "SELECT * FROM Processor")
            .with_identity(Identity::anonymous())
            .with_sources(&["a", "b"]);
        assert_eq!(r.sources, vec!["a", "b"]);
        assert_eq!(r.mode, QueryMode::RealTime);
        let h = ClientRequest::historical("SELECT * FROM history");
        assert!(h.sources.is_empty());
        assert_eq!(h.mode, QueryMode::Historical);
    }

    #[test]
    fn csv_rendering_escapes() {
        let csv = render_csv(&rows());
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "Hostname,Load1");
        assert_eq!(lines.next().unwrap(), "\"a,b\",0.5");
        assert_eq!(lines.next().unwrap(), "n2,");
    }

    #[test]
    fn json_rendering_types() {
        let json = render_json(&rows());
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed[0]["Hostname"], "a,b");
        assert_eq!(parsed[0]["Load1"], 0.5);
        assert!(parsed[1]["Load1"].is_null());
    }
}
