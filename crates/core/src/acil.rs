//! The Abstract Client Interface Layer (paper §2): "a clear separation
//! between client specific APIs and the data model used within GridRM".
//! Java applets, JSP pages and Web/Grid services all funnel through this
//! one request shape; here the bundled client adapters are the in-process
//! [`ClientInterface`] and a text adapter ([`render_csv`]/[`render_json`])
//! standing in for the web-facing front ends.

use crate::security::Identity;
use crate::session::SessionToken;
use gridrm_dbc::{DbcResult, RowSet};
use gridrm_sqlparse::SqlValue;
use gridrm_telemetry::TraceContext;
use serde::{Deserialize, Serialize};

/// How a query should be satisfied (§3.1.1, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Always contact the data source ("explicitly poll", Fig 9).
    RealTime,
    /// Serve from the gateway cache when fresh enough; `None` uses the
    /// gateway's default TTL ("refresh their tree view", Fig 9).
    Cached {
        /// Maximum acceptable age in virtual ms.
        max_age_ms: Option<u64>,
    },
    /// Query the gateway's internal historical database.
    Historical,
}

/// What a multi-source query does when some sources fail (§2: the
/// Global layer consolidates results from many sites — a grid-wide
/// query should not be hostage to its slowest or flakiest site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ResultPolicy {
    /// Abort on the first failed source; no partial results.
    FailFast,
    /// Return whatever succeeded, reporting failures as outcomes
    /// (the historical behaviour, and the default).
    #[default]
    BestEffort,
    /// Succeed only when at least `n` sources answered; otherwise the
    /// whole query fails even if some rows were gathered.
    Quorum(
        /// Minimum number of successful sources.
        usize,
    ),
}

/// Per-source terminal status inside a consolidated response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OutcomeStatus {
    /// The source answered from a live fetch.
    Ok,
    /// The source was answered from the gateway cache.
    Cached,
    /// An identical in-flight query was coalesced into one execution;
    /// this request shared the leader's rows.
    Coalesced,
    /// The per-request deadline budget ran out before (or while) this
    /// source was queried.
    Timeout,
    /// The fetch failed (driver, connection, SQL error).
    Error,
    /// Security policy denied access to this source.
    Denied,
    /// This gateway is not authoritative for the source; route via the
    /// Global layer.
    Deferred,
}

impl OutcomeStatus {
    /// True for statuses that contributed rows (`Ok`/`Cached`/`Coalesced`).
    pub fn is_success(self) -> bool {
        matches!(
            self,
            OutcomeStatus::Ok | OutcomeStatus::Cached | OutcomeStatus::Coalesced
        )
    }

    /// Lower-case wire/driver-friendly name.
    pub fn name(self) -> &'static str {
        match self {
            OutcomeStatus::Ok => "ok",
            OutcomeStatus::Cached => "cached",
            OutcomeStatus::Coalesced => "coalesced",
            OutcomeStatus::Timeout => "timeout",
            OutcomeStatus::Error => "error",
            OutcomeStatus::Denied => "denied",
            OutcomeStatus::Deferred => "deferred",
        }
    }
}

/// Structured per-source result of a consolidated query: what the
/// stringly-typed `warnings` list used to encode, made machine-readable.
/// The legacy `warnings` / `sources_ok` / `served_from_cache` fields are
/// now *derived* from these (see [`ClientResponse::from_outcomes`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceOutcome {
    /// The data-source URL (or historical/virtual table name).
    pub source: String,
    /// Terminal status.
    pub status: OutcomeStatus,
    /// Virtual milliseconds this source took, as observed by the
    /// gateway that executed it (includes link RTT for remote segments).
    pub elapsed_ms: u64,
    /// Failure detail (error text), when there is one.
    #[serde(default)]
    pub detail: Option<String>,
}

impl SourceOutcome {
    /// A successful outcome with the given status.
    pub fn success(source: &str, status: OutcomeStatus, elapsed_ms: u64) -> SourceOutcome {
        debug_assert!(status.is_success());
        SourceOutcome {
            source: source.to_owned(),
            status,
            elapsed_ms,
            detail: None,
        }
    }

    /// A failed outcome with the given status and detail text.
    pub fn failure(
        source: &str,
        status: OutcomeStatus,
        elapsed_ms: u64,
        detail: &str,
    ) -> SourceOutcome {
        SourceOutcome {
            source: source.to_owned(),
            status,
            elapsed_ms,
            detail: Some(detail.to_owned()),
        }
    }

    /// The legacy warning string for this outcome, if it warrants one.
    /// Kept byte-for-byte compatible with the pre-structured format
    /// (`"{source}: {detail}"`) that callers match on.
    pub fn warning(&self) -> Option<String> {
        match (&self.status, &self.detail) {
            (s, _) if s.is_success() => None,
            (_, Some(detail)) => Some(format!("{}: {detail}", self.source)),
            (s, None) => Some(format!("{}: {}", self.source, s.name())),
        }
    }
}

/// A client request as it crosses the ACIL.
#[derive(Debug, Clone)]
pub struct ClientRequest {
    /// Session token from a previous authentication, if any.
    pub token: Option<SessionToken>,
    /// Direct identity (in-process clients); ignored when `token` is set.
    pub identity: Option<Identity>,
    /// Data-source URLs to query ("the request consists of two parts, the
    /// network address of the data source and the query", §3.2.2).
    /// Historical queries leave this empty.
    pub sources: Vec<String>,
    /// The SQL text.
    pub sql: String,
    /// Freshness mode.
    pub mode: QueryMode,
    /// Trace context this request runs under, when it is one leg of a
    /// larger traced operation (global fan-out, `EXPLAIN`). `None`
    /// starts a fresh trace.
    pub trace: Option<TraceContext>,
    /// Virtual-millisecond deadline budget for the whole request.
    /// `None` falls back to the gateway's configured default (0 = no
    /// deadline). Sources not answered within the budget come back as
    /// [`OutcomeStatus::Timeout`] outcomes.
    pub deadline_ms: Option<u64>,
    /// What to do when only some sources answer.
    pub policy: ResultPolicy,
}

impl ClientRequest {
    /// Start building a request with the given SQL text. This is the
    /// one construction path; [`ClientRequest::realtime`] and friends
    /// are shorthands over it.
    pub fn builder(sql: &str) -> QueryBuilder {
        QueryBuilder::new(sql)
    }

    /// Real-time query of one source.
    pub fn realtime(source: &str, sql: &str) -> ClientRequest {
        ClientRequest::builder(sql).source(source).build()
    }

    /// Cache-friendly query of one source.
    pub fn cached(source: &str, sql: &str, max_age_ms: Option<u64>) -> ClientRequest {
        ClientRequest::builder(sql)
            .source(source)
            .mode(QueryMode::Cached { max_age_ms })
            .build()
    }

    /// Historical query.
    pub fn historical(sql: &str) -> ClientRequest {
        ClientRequest::builder(sql)
            .mode(QueryMode::Historical)
            .build()
    }

    /// Builder: attach an identity.
    pub fn with_identity(mut self, identity: Identity) -> ClientRequest {
        self.identity = Some(identity);
        self
    }

    /// Builder: attach a session token.
    pub fn with_token(mut self, token: SessionToken) -> ClientRequest {
        self.token = Some(token);
        self
    }

    /// Builder: query several sources (consolidated, §3.1.1).
    #[deprecated(since = "0.4.0", note = "use ClientRequest::builder(...).sources(...)")]
    pub fn with_sources(mut self, sources: &[&str]) -> ClientRequest {
        self.sources = sources.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Builder: run under an existing trace context, making the
    /// gateway's request span a child instead of a new root.
    pub fn with_trace(mut self, trace: TraceContext) -> ClientRequest {
        self.trace = Some(trace);
        self
    }
}

/// Fluent constructor for [`ClientRequest`] — the one way to express
/// every request knob (sources, freshness mode, identity, deadline,
/// partial-results policy) without reaching for struct literals.
///
/// ```
/// use gridrm_core::acil::{ClientRequest, QueryMode, ResultPolicy};
/// let req = ClientRequest::builder("SELECT Hostname, Load1 FROM Processor")
///     .sources(&["jdbc:snmp://node00.alpha/public", "jdbc:snmp://node00.beta/public"])
///     .mode(QueryMode::Cached { max_age_ms: Some(5_000) })
///     .deadline_ms(250)
///     .policy(ResultPolicy::Quorum(1))
///     .build();
/// assert_eq!(req.sources.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    request: ClientRequest,
}

impl QueryBuilder {
    /// Start a builder for the given SQL text (defaults: no sources,
    /// real-time mode, anonymous, no deadline, best-effort policy).
    pub fn new(sql: &str) -> QueryBuilder {
        QueryBuilder {
            request: ClientRequest {
                token: None,
                identity: None,
                sources: Vec::new(),
                sql: sql.to_owned(),
                mode: QueryMode::RealTime,
                trace: None,
                deadline_ms: None,
                policy: ResultPolicy::BestEffort,
            },
        }
    }

    /// Append one data-source URL.
    pub fn source(mut self, source: &str) -> QueryBuilder {
        self.request.sources.push(source.to_owned());
        self
    }

    /// Replace the source list (consolidated query, §3.1.1).
    pub fn sources<S: AsRef<str>>(mut self, sources: &[S]) -> QueryBuilder {
        self.request.sources = sources.iter().map(|s| s.as_ref().to_owned()).collect();
        self
    }

    /// Set the freshness mode.
    pub fn mode(mut self, mode: QueryMode) -> QueryBuilder {
        self.request.mode = mode;
        self
    }

    /// Attach a direct identity.
    pub fn identity(mut self, identity: Identity) -> QueryBuilder {
        self.request.identity = Some(identity);
        self
    }

    /// Attach a session token from a previous authentication.
    pub fn token(mut self, token: SessionToken) -> QueryBuilder {
        self.request.token = Some(token);
        self
    }

    /// Set the virtual-millisecond deadline budget.
    pub fn deadline_ms(mut self, deadline_ms: u64) -> QueryBuilder {
        self.request.deadline_ms = Some(deadline_ms);
        self
    }

    /// Set the partial-results policy.
    pub fn policy(mut self, policy: ResultPolicy) -> QueryBuilder {
        self.request.policy = policy;
        self
    }

    /// Run under an existing trace context.
    pub fn trace(mut self, trace: TraceContext) -> QueryBuilder {
        self.request.trace = Some(trace);
        self
    }

    /// Finish building.
    pub fn build(self) -> ClientRequest {
        self.request
    }

    /// Finish building as a continuous-query subscription instead of a
    /// one-shot request. The cadence comes from the SQL's `EVERY <n>`
    /// clause (or `every_ms` on the returned spec); buffer capacity and
    /// backpressure fall back to the gateway defaults. Register the
    /// spec with `Gateway::subscribe`.
    pub fn subscribe(self) -> crate::stream::SubscribeSpec {
        crate::stream::SubscribeSpec {
            request: self.request,
            every_ms: None,
            buffer: None,
            backpressure: None,
        }
    }

    /// Finish building as a subscription with an explicit cadence
    /// (overrides any `EVERY` clause in the SQL).
    pub fn subscribe_every(self, every_ms: u64) -> crate::stream::SubscribeSpec {
        crate::stream::SubscribeSpec {
            every_ms: Some(every_ms),
            ..self.subscribe()
        }
    }
}

/// The answer crossing back over the ACIL.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Consolidated result rows.
    pub rows: RowSet,
    /// Per-source warnings (failed sources, deferred security, …).
    /// Derived from `outcomes`; kept for text-facing clients.
    pub warnings: Vec<String>,
    /// How many sources were answered from the gateway cache.
    /// Derived from `outcomes`.
    pub served_from_cache: usize,
    /// How many sources contributed rows. Derived from `outcomes`.
    pub sources_ok: usize,
    /// Structured per-source outcomes — the source of truth the three
    /// legacy fields above are computed from.
    pub outcomes: Vec<SourceOutcome>,
}

impl ClientResponse {
    /// Build a response from structured outcomes, deriving the legacy
    /// `warnings` / `served_from_cache` / `sources_ok` fields from
    /// them. `extra_warnings` carries non-source diagnostics (result
    /// shape mismatches during consolidation).
    pub fn from_outcomes(
        rows: RowSet,
        outcomes: Vec<SourceOutcome>,
        extra_warnings: Vec<String>,
    ) -> ClientResponse {
        let mut warnings: Vec<String> = outcomes.iter().filter_map(|o| o.warning()).collect();
        warnings.extend(extra_warnings);
        let served_from_cache = outcomes
            .iter()
            .filter(|o| o.status == OutcomeStatus::Cached)
            .count();
        let sources_ok = outcomes.iter().filter(|o| o.status.is_success()).count();
        ClientResponse {
            rows,
            warnings,
            served_from_cache,
            sources_ok,
            outcomes,
        }
    }
}

/// Anything that accepts GridRM client requests (the ACIL seam).
pub trait ClientInterface: Send + Sync {
    /// Submit one request.
    fn submit(&self, request: &ClientRequest) -> DbcResult<ClientResponse>;
}

/// One query surface over local and grid execution: `Gateway` answers
/// from its own site, `GlobalLayer` fans out across the grid, and code
/// written against this trait (tests, examples, the admin poller) works
/// unchanged against either.
pub trait QueryExecutor: Send + Sync {
    /// Execute one request to completion.
    fn execute(&self, request: &ClientRequest) -> DbcResult<ClientResponse>;

    /// Human-readable scope label (`"local:gw-alpha"`, `"grid:gw-alpha"`)
    /// for logs and dashboards.
    fn scope(&self) -> String;
}

/// Every [`QueryExecutor`] is a [`ClientInterface`]: `submit` is
/// `execute`. (This replaces the hand-written per-type impls.)
impl<T: QueryExecutor + ?Sized> ClientInterface for T {
    fn submit(&self, request: &ClientRequest) -> DbcResult<ClientResponse> {
        self.execute(request)
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Render a result set as CSV (header + rows) — the "Web/Grid Services"
/// client adapter.
pub fn render_csv(rows: &RowSet) -> String {
    let meta = rows.meta();
    let mut out = String::new();
    let names: Vec<String> = (0..meta.column_count())
        .map(|i| csv_escape(meta.column_name(i).unwrap_or("?")))
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in rows.rows() {
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                SqlValue::Null => String::new(),
                other => csv_escape(&other.to_string()),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Render a result set as a JSON array of objects.
pub fn render_json(rows: &RowSet) -> String {
    let meta = rows.meta();
    let objects: Vec<serde_json::Value> = rows
        .rows()
        .iter()
        .map(|row| {
            let mut map = serde_json::Map::new();
            for (i, v) in row.iter().enumerate() {
                let key = meta.column_name(i).unwrap_or("?").to_owned();
                let val = match v {
                    SqlValue::Null => serde_json::Value::Null,
                    SqlValue::Bool(b) => serde_json::Value::Bool(*b),
                    SqlValue::Int(x) => serde_json::Value::from(*x),
                    SqlValue::Float(x) => serde_json::Value::from(*x),
                    SqlValue::Timestamp(t) => serde_json::Value::from(*t),
                    SqlValue::Str(s) => serde_json::Value::from(s.clone()),
                };
                map.insert(key, val);
            }
            serde_json::Value::Object(map)
        })
        .collect();
    serde_json::Value::Array(objects).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridrm_dbc::{ColumnMeta, ResultSetMetaData};
    use gridrm_sqlparse::SqlType;

    fn rows() -> RowSet {
        RowSet::new(
            ResultSetMetaData::new(vec![
                ColumnMeta::new("Hostname", SqlType::Str),
                ColumnMeta::new("Load1", SqlType::Float),
            ]),
            vec![
                vec![SqlValue::Str("a,b".into()), SqlValue::Float(0.5)],
                vec![SqlValue::Str("n2".into()), SqlValue::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn request_builders() {
        let r = ClientRequest::builder("SELECT * FROM Processor")
            .identity(Identity::anonymous())
            .sources(&["a", "b"])
            .deadline_ms(250)
            .policy(ResultPolicy::Quorum(2))
            .build();
        assert_eq!(r.sources, vec!["a", "b"]);
        assert_eq!(r.mode, QueryMode::RealTime);
        assert_eq!(r.deadline_ms, Some(250));
        assert_eq!(r.policy, ResultPolicy::Quorum(2));
        let h = ClientRequest::historical("SELECT * FROM history");
        assert!(h.sources.is_empty());
        assert_eq!(h.mode, QueryMode::Historical);
        assert_eq!(h.policy, ResultPolicy::BestEffort);
        assert_eq!(h.deadline_ms, None);
    }

    #[test]
    fn builder_replaces_the_with_sources_shim() {
        // The old `.with_sources(&[..])` call sites migrate to the
        // builder's `sources` knob (the deprecated shim survives one
        // more release for out-of-tree callers).
        let r = ClientRequest::builder("SELECT 1 FROM t")
            .sources(&["a", "b"])
            .build();
        assert_eq!(r.sources, vec!["a", "b"]);
    }

    #[test]
    fn builder_subscribe_produces_a_spec() {
        let spec = ClientRequest::builder("SELECT Load1 FROM Processor EVERY 250")
            .source("jdbc:snmp://node00.alpha/public")
            .subscribe()
            .buffer(8)
            .backpressure(crate::stream::BackpressurePolicy::Coalesce);
        assert_eq!(spec.every_ms, None, "cadence comes from the EVERY clause");
        assert_eq!(spec.buffer, Some(8));
        assert_eq!(
            spec.backpressure,
            Some(crate::stream::BackpressurePolicy::Coalesce)
        );
        let explicit = ClientRequest::builder("SELECT Load1 FROM Processor")
            .source("jdbc:snmp://node00.alpha/public")
            .subscribe_every(500);
        assert_eq!(explicit.every_ms, Some(500));
    }

    #[test]
    fn outcomes_derive_legacy_fields() {
        let outcomes = vec![
            SourceOutcome::success("a", OutcomeStatus::Ok, 3),
            SourceOutcome::success("b", OutcomeStatus::Cached, 0),
            SourceOutcome::success("c", OutcomeStatus::Coalesced, 1),
            SourceOutcome::failure("d", OutcomeStatus::Error, 2, "driver exploded"),
            SourceOutcome::failure("e", OutcomeStatus::Timeout, 9, "deadline exceeded"),
        ];
        let resp = ClientResponse::from_outcomes(rows(), outcomes, vec!["extra note".to_owned()]);
        assert_eq!(resp.sources_ok, 3);
        assert_eq!(resp.served_from_cache, 1);
        assert_eq!(
            resp.warnings,
            vec![
                "d: driver exploded".to_owned(),
                "e: deadline exceeded".to_owned(),
                "extra note".to_owned(),
            ]
        );
        // Outcomes round-trip through serde for the wire protocol.
        let json = serde_json::to_string(&resp.outcomes).unwrap();
        let back: Vec<SourceOutcome> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp.outcomes);
    }

    #[test]
    fn csv_rendering_escapes() {
        let csv = render_csv(&rows());
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "Hostname,Load1");
        assert_eq!(lines.next().unwrap(), "\"a,b\",0.5");
        assert_eq!(lines.next().unwrap(), "n2,");
    }

    #[test]
    fn json_rendering_types() {
        let json = render_json(&rows());
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed[0]["Hostname"], "a,b");
        assert_eq!(parsed[0]["Load1"], 0.5);
        assert!(parsed[1]["Load1"].is_null());
    }
}
