//! Gateway policy & configuration (Fig 2's "Gateway Policy and Schemas").

use gridrm_telemetry::SloSpec;
use serde::{Deserialize, Serialize};

/// Static configuration of one gateway.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatewayConfig {
    /// Gateway name (unique within the Grid).
    pub name: String,
    /// The Grid site this gateway manages.
    pub site: String,
    /// The gateway's own network address.
    pub address: String,
    /// Default cache TTL served to `Cached` queries, virtual ms (§4).
    pub cache_ttl_ms: u64,
    /// History retention window, virtual ms.
    pub history_retention_ms: u64,
    /// Event fast-buffer capacity (Fig 4).
    pub event_fast_capacity: usize,
    /// Max idle pooled connections per (source, driver) pair (§3.1.2).
    pub pool_max_idle: usize,
    /// Session time-to-live, virtual ms.
    pub session_ttl_ms: u64,
    /// Record harvested real-time results into history?
    pub record_history: bool,
    /// Virtual ms between active health probes of one source.
    #[serde(default = "defaults::probe_interval_ms")]
    pub probe_interval_ms: u64,
    /// A probe slower than this (virtual ms) counts as failed.
    #[serde(default = "defaults::probe_timeout_ms")]
    pub probe_timeout_ms: u64,
    /// Consecutive failures before a `Degraded` source becomes `Down`.
    #[serde(default = "defaults::health_down_after")]
    pub health_down_after: u32,
    /// Consecutive successes before a `Degraded`/`Down` source is `Up`.
    #[serde(default = "defaults::health_up_after")]
    pub health_up_after: u32,
    /// Requests at/above this virtual latency enter the slow-query log
    /// (0 disables the log).
    #[serde(default)]
    pub slow_query_threshold_ms: u64,
    /// Slow-query log size (top-K by end-to-end latency).
    #[serde(default = "defaults::slow_query_log_capacity")]
    pub slow_query_log_capacity: usize,
    /// Structured event-journal ring capacity.
    #[serde(default = "defaults::journal_capacity")]
    pub journal_capacity: usize,
    /// Dispatch global fan-out segments concurrently (virtual time
    /// advances by the slowest segment) instead of one after another
    /// (virtual time advances by the sum).
    #[serde(default = "defaults::fanout_parallel")]
    pub fanout_parallel: bool,
    /// Default per-request deadline budget, virtual ms, applied when a
    /// request does not set its own. 0 means no deadline.
    #[serde(default)]
    pub default_deadline_ms: u64,
    /// Coalesce identical concurrent realtime queries into one driver
    /// execution (single-flight).
    #[serde(default = "defaults::coalesce_identical")]
    pub coalesce_identical: bool,
    /// Virtual ms between samples of the metrics registry into the
    /// time-series recorder (driven by `pump`).
    #[serde(default = "defaults::timeseries_interval_ms")]
    pub timeseries_interval_ms: u64,
    /// Per-series ring capacity of the time-series recorder.
    #[serde(default = "defaults::timeseries_capacity")]
    pub timeseries_capacity: usize,
    /// Declared SLOs, evaluated by the burn-rate engine on every pump.
    #[serde(default)]
    pub slos: Vec<SloSpec>,
    /// Per-subscriber delta buffer capacity for continuous queries
    /// (`SELECT … EVERY n`); the backpressure policy decides what
    /// happens when a slow subscriber fills it.
    #[serde(default = "defaults::stream_buffer_capacity")]
    pub stream_buffer_capacity: usize,
    /// Default backpressure policy for subscribers that do not pick one.
    #[serde(default)]
    pub stream_backpressure: crate::stream::BackpressurePolicy,
    /// Floor for `EVERY` intervals, virtual ms: subscriptions asking
    /// for a faster cadence are clamped so a client cannot turn the
    /// pump into a busy loop.
    #[serde(default = "defaults::stream_min_every_ms")]
    pub stream_min_every_ms: u64,
    /// Hard cap on concurrently registered subscribers (bounded
    /// memory); further `subscribe` calls are refused. 0 disables the
    /// cap.
    #[serde(default = "defaults::stream_max_subscribers")]
    pub stream_max_subscribers: usize,
    /// Per-query cost budget in total wire bytes (in + out, whole span
    /// tree): a root whose bill exceeds it is journalled as
    /// `cost_budget` and marked over-budget. 0 disables.
    #[serde(default)]
    pub cost_budget_bytes: u64,
    /// Per-query cost budget in rows returned to the client. 0 disables.
    #[serde(default)]
    pub cost_budget_rows: u64,
}

/// Serde defaults so pre-health persisted configs keep loading.
mod defaults {
    pub fn probe_interval_ms() -> u64 {
        30_000
    }
    pub fn probe_timeout_ms() -> u64 {
        5_000
    }
    pub fn health_down_after() -> u32 {
        3
    }
    pub fn health_up_after() -> u32 {
        2
    }
    pub fn slow_query_log_capacity() -> usize {
        32
    }
    pub fn journal_capacity() -> usize {
        512
    }
    pub fn fanout_parallel() -> bool {
        true
    }
    pub fn coalesce_identical() -> bool {
        true
    }
    pub fn timeseries_interval_ms() -> u64 {
        gridrm_telemetry::DEFAULT_TIMESERIES_INTERVAL_MS
    }
    pub fn timeseries_capacity() -> usize {
        gridrm_telemetry::DEFAULT_TIMESERIES_CAPACITY
    }
    pub fn stream_buffer_capacity() -> usize {
        64
    }
    pub fn stream_min_every_ms() -> u64 {
        10
    }
    pub fn stream_max_subscribers() -> usize {
        100_000
    }
}

impl GatewayConfig {
    /// Sensible defaults for a site gateway.
    pub fn new(name: &str, site: &str) -> GatewayConfig {
        GatewayConfig {
            name: name.to_owned(),
            site: site.to_owned(),
            address: format!("gw.{site}"),
            cache_ttl_ms: 10_000,
            history_retention_ms: 24 * 3_600_000,
            event_fast_capacity: 1024,
            pool_max_idle: 8,
            session_ttl_ms: 1_800_000,
            record_history: true,
            probe_interval_ms: defaults::probe_interval_ms(),
            probe_timeout_ms: defaults::probe_timeout_ms(),
            health_down_after: defaults::health_down_after(),
            health_up_after: defaults::health_up_after(),
            slow_query_threshold_ms: 0,
            slow_query_log_capacity: defaults::slow_query_log_capacity(),
            journal_capacity: defaults::journal_capacity(),
            fanout_parallel: defaults::fanout_parallel(),
            default_deadline_ms: 0,
            coalesce_identical: defaults::coalesce_identical(),
            timeseries_interval_ms: defaults::timeseries_interval_ms(),
            timeseries_capacity: defaults::timeseries_capacity(),
            slos: Vec::new(),
            stream_buffer_capacity: defaults::stream_buffer_capacity(),
            stream_backpressure: crate::stream::BackpressurePolicy::default(),
            stream_min_every_ms: defaults::stream_min_every_ms(),
            stream_max_subscribers: defaults::stream_max_subscribers(),
            cost_budget_bytes: 0,
            cost_budget_rows: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = GatewayConfig::new("gw-a", "site-a");
        assert_eq!(c.address, "gw.site-a");
        assert!(c.record_history);
        assert!(c.cache_ttl_ms > 0);
    }

    #[test]
    fn serde_roundtrip() {
        let c = GatewayConfig::new("gw-a", "site-a");
        let json = serde_json::to_string(&c).unwrap();
        let back: GatewayConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, c.name);
        assert_eq!(back.pool_max_idle, c.pool_max_idle);
        assert_eq!(back.probe_interval_ms, c.probe_interval_ms);
        assert_eq!(back.health_down_after, c.health_down_after);
    }

    #[test]
    fn pre_health_config_loads_with_defaults() {
        // A config persisted before the health subsystem existed must
        // still deserialise, picking up the new defaults.
        let json = r#"{
            "name": "gw-old", "site": "s", "address": "gw.s",
            "cache_ttl_ms": 10000, "history_retention_ms": 86400000,
            "event_fast_capacity": 1024, "pool_max_idle": 8,
            "session_ttl_ms": 1800000, "record_history": true
        }"#;
        let c: GatewayConfig = serde_json::from_str(json).unwrap();
        assert_eq!(c.probe_interval_ms, 30_000);
        assert_eq!(c.health_down_after, 3);
        assert_eq!(c.health_up_after, 2);
        assert_eq!(c.slow_query_threshold_ms, 0);
        assert_eq!(c.journal_capacity, 512);
    }

    #[test]
    fn pre_fanout_config_loads_with_defaults() {
        // A config persisted before the parallel fan-out engine existed
        // must still deserialise, with parallelism and coalescing on
        // and no default deadline.
        let json = r#"{
            "name": "gw-old", "site": "s", "address": "gw.s",
            "cache_ttl_ms": 10000, "history_retention_ms": 86400000,
            "event_fast_capacity": 1024, "pool_max_idle": 8,
            "session_ttl_ms": 1800000, "record_history": true
        }"#;
        let c: GatewayConfig = serde_json::from_str(json).unwrap();
        assert!(c.fanout_parallel);
        assert!(c.coalesce_identical);
        assert_eq!(c.default_deadline_ms, 0);
    }

    #[test]
    fn pre_slo_config_loads_with_defaults() {
        // A config persisted before the time-series/SLO layer existed
        // must still deserialise: default recorder knobs, no SLOs.
        let json = r#"{
            "name": "gw-old", "site": "s", "address": "gw.s",
            "cache_ttl_ms": 10000, "history_retention_ms": 86400000,
            "event_fast_capacity": 1024, "pool_max_idle": 8,
            "session_ttl_ms": 1800000, "record_history": true
        }"#;
        let c: GatewayConfig = serde_json::from_str(json).unwrap();
        assert_eq!(
            c.timeseries_interval_ms,
            gridrm_telemetry::DEFAULT_TIMESERIES_INTERVAL_MS
        );
        assert_eq!(
            c.timeseries_capacity,
            gridrm_telemetry::DEFAULT_TIMESERIES_CAPACITY
        );
        assert!(c.slos.is_empty());
    }

    #[test]
    fn pre_stream_config_loads_with_defaults() {
        // A config persisted before the continuous-query plane existed
        // must still deserialise: bounded buffers, DropOldest, clamped
        // cadence, capped subscriber count.
        let json = r#"{
            "name": "gw-old", "site": "s", "address": "gw.s",
            "cache_ttl_ms": 10000, "history_retention_ms": 86400000,
            "event_fast_capacity": 1024, "pool_max_idle": 8,
            "session_ttl_ms": 1800000, "record_history": true
        }"#;
        let c: GatewayConfig = serde_json::from_str(json).unwrap();
        assert_eq!(c.stream_buffer_capacity, 64);
        assert_eq!(
            c.stream_backpressure,
            crate::stream::BackpressurePolicy::DropOldest
        );
        assert_eq!(c.stream_min_every_ms, 10);
        assert_eq!(c.stream_max_subscribers, 100_000);
    }

    #[test]
    fn pre_cost_config_loads_with_defaults() {
        // A config persisted before the cost accounting plane existed
        // must still deserialise, with both budget dimensions disabled.
        let json = r#"{
            "name": "gw-old", "site": "s", "address": "gw.s",
            "cache_ttl_ms": 10000, "history_retention_ms": 86400000,
            "event_fast_capacity": 1024, "pool_max_idle": 8,
            "session_ttl_ms": 1800000, "record_history": true
        }"#;
        let c: GatewayConfig = serde_json::from_str(json).unwrap();
        assert_eq!(c.cost_budget_bytes, 0);
        assert_eq!(c.cost_budget_rows, 0);
    }

    #[test]
    fn slo_specs_roundtrip_through_config() {
        use gridrm_telemetry::slo::SloObjective;
        let mut c = GatewayConfig::new("gw-a", "site-a");
        c.slos.push(SloSpec::new(
            "latency-100ms",
            SloObjective::Latency {
                metric: "gridrm_request_latency_ms".to_owned(),
                threshold_ms: 100.0,
            },
            0.99,
        ));
        let json = serde_json::to_string(&c).unwrap();
        let back: GatewayConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.slos, c.slos);
    }
}
