//! Gateway policy & configuration (Fig 2's "Gateway Policy and Schemas").

use serde::{Deserialize, Serialize};

/// Static configuration of one gateway.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatewayConfig {
    /// Gateway name (unique within the Grid).
    pub name: String,
    /// The Grid site this gateway manages.
    pub site: String,
    /// The gateway's own network address.
    pub address: String,
    /// Default cache TTL served to `Cached` queries, virtual ms (§4).
    pub cache_ttl_ms: u64,
    /// History retention window, virtual ms.
    pub history_retention_ms: u64,
    /// Event fast-buffer capacity (Fig 4).
    pub event_fast_capacity: usize,
    /// Max idle pooled connections per (source, driver) pair (§3.1.2).
    pub pool_max_idle: usize,
    /// Session time-to-live, virtual ms.
    pub session_ttl_ms: u64,
    /// Record harvested real-time results into history?
    pub record_history: bool,
}

impl GatewayConfig {
    /// Sensible defaults for a site gateway.
    pub fn new(name: &str, site: &str) -> GatewayConfig {
        GatewayConfig {
            name: name.to_owned(),
            site: site.to_owned(),
            address: format!("gw.{site}"),
            cache_ttl_ms: 10_000,
            history_retention_ms: 24 * 3_600_000,
            event_fast_capacity: 1024,
            pool_max_idle: 8,
            session_ttl_ms: 1_800_000,
            record_history: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = GatewayConfig::new("gw-a", "site-a");
        assert_eq!(c.address, "gw.site-a");
        assert!(c.record_history);
        assert!(c.cache_ttl_ms > 0);
    }

    #[test]
    fn serde_roundtrip() {
        let c = GatewayConfig::new("gw-a", "site-a");
        let json = serde_json::to_string(&c).unwrap();
        let back: GatewayConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, c.name);
        assert_eq!(back.pool_max_idle, c.pool_max_idle);
    }
}
