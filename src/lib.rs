#![warn(missing_docs)]

//! # GridRM-rs
//!
//! A from-scratch Rust reproduction of **"GridRM: An Extensible Resource
//! Monitoring System"** (Baker & Smith, 2003): an open, extensible
//! resource-monitoring framework built on the GGF Grid Monitoring
//! Architecture, whose gateways give clients a homogeneous SQL view over
//! heterogeneous monitoring agents through pluggable JDBC-style drivers.
//!
//! This facade crate re-exports the whole workspace. The fastest way in:
//!
//! ```
//! use gridrm::prelude::*;
//! use std::sync::Arc;
//!
//! // A simulated site with the full agent population.
//! let net = Network::new(SimClock::new(), 42);
//! let site = SiteModel::generate(7, &SiteSpec::new("demo", 2, 4));
//! site.advance_to(60_000);
//! deploy_site(&net, site);
//!
//! // A gateway with the standard driver set.
//! let gateway = Gateway::new(GatewayConfig::new("gw", "demo"), net);
//! install_into_gateway(&gateway);
//!
//! // One SQL dialect over any agent (§3.2.3's example query).
//! let resp = gateway
//!     .query(&ClientRequest::realtime(
//!         "jdbc:snmp://node00.demo/public",
//!         "SELECT * FROM Processor",
//!     ))
//!     .unwrap();
//! assert_eq!(resp.rows.len(), 1);
//! ```
//!
//! See `DESIGN.md` for the crate map and `EXPERIMENTS.md` for the
//! paper-reproduction experiment index.

pub use gridrm_agents as agents;
pub use gridrm_core as core;
pub use gridrm_dbc as dbc;
pub use gridrm_drivers as drivers;
pub use gridrm_global as global;
pub use gridrm_glue as glue;
pub use gridrm_resmodel as resmodel;
pub use gridrm_simnet as simnet;
pub use gridrm_sqlparse as sqlparse;
pub use gridrm_store as store;
pub use gridrm_telemetry as telemetry;

/// Everything needed for the common "stand up a monitored Grid" flow.
pub mod prelude {
    pub use gridrm_agents::{deploy_site, SiteAgents};
    pub use gridrm_core::{
        AlertRule, BackpressurePolicy, ClientInterface, ClientRequest, ClientResponse, Comparison,
        DataSourceConfig, FailurePolicy, Gateway, GatewayConfig, GridRMEvent, HealthMonitor,
        HealthState, Identity, ListenerFilter, OutcomeStatus, QueryBuilder, QueryExecutor,
        QueryMode, ResultPolicy, SecurityPolicy, Severity, SourceHealthSnapshot, SourceOutcome,
        StreamDelta, SubscribeSpec, SubscriptionId, SubscriptionSnapshot,
    };
    pub use gridrm_dbc::{JdbcUrl, ResultSet, RowSet, SqlError};
    pub use gridrm_drivers::install_into_gateway;
    pub use gridrm_global::{
        GlobalLayer, GmaDirectory, GridSubscription, SiteHealthRollup, SiteIntrusionRollup,
        SiteSloRollup,
    };
    pub use gridrm_resmodel::{SiteModel, SiteSpec};
    pub use gridrm_simnet::{Latency, Network, SimClock};
    pub use gridrm_sqlparse::SqlValue;
    pub use gridrm_telemetry::{
        CostLedger, CostVector, GatewayTelemetry, IntrusionCause, IntrusionRow, Journal,
        JournalEntry, JournalSeverity, QueryCostEntry, Registry, SloObjective, SloSpec, SloStatus,
        SlowQueryLog, TimeSeriesRecorder, TraceRecord,
    };
}
