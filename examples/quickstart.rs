//! Quickstart: one simulated site, one gateway, the standard driver set,
//! and the paper's headline behaviour — *the same SQL query answered by
//! heterogeneous agents with a homogeneous GLUE result*.
//!
//! Run with: `cargo run --example quickstart`

use gridrm::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A simulated Grid site: 4 hosts, full agent set (SNMP on every
    //    node; Ganglia/NWS/NetLogger/SCMS on the head node).
    let net = Network::new(SimClock::new(), 42);
    let mut spec = SiteSpec::new("demo", 4, 4);
    spec.peers = vec!["node00.remote".to_owned()];
    let site = SiteModel::generate(7, &spec);
    site.advance_to(10 * 60_000); // 10 virtual minutes of history
    deploy_site(&net, site.clone());

    // 2. A GridRM gateway with the paper's driver set installed.
    let gateway = Gateway::new(GatewayConfig::new("gw-demo", "demo"), net.clone());
    install_into_gateway(&gateway);

    // 3. The §3.2.3 example query — against three very different agents.
    let sql = "SELECT Hostname, NCpu, ClockMHz, Load1, Load5 FROM Processor ORDER BY Hostname";
    for (label, source) in [
        (
            "SNMP (binary TLV, per-host)",
            "jdbc:snmp://node02.demo/public",
        ),
        (
            "Ganglia (whole-cluster XML)",
            "jdbc:ganglia://node00.demo/demo",
        ),
        ("SCMS (key:value text)", "jdbc:scms://node00.demo/"),
    ] {
        let resp = gateway
            .query(&ClientRequest::realtime(source, sql))
            .expect("query failed");
        println!("== {label}\n   {source}\n   {sql}\n");
        println!("{}", indent(&resp.rows.to_table_string()));
    }

    // 4. Dynamic driver selection (§3.2.2): no sub-protocol in the URL —
    //    the GridRMDriverManager probes registered drivers (Table 2).
    let wildcard = "jdbc:://node01.demo/public";
    let resp = gateway
        .query(&ClientRequest::realtime(wildcard, sql))
        .expect("wildcard query failed");
    let chosen = gateway
        .driver_manager()
        .cached_driver(&JdbcUrl::parse(wildcard).unwrap())
        .unwrap_or_default();
    println!("== Dynamic selection for {wildcard}");
    println!("   driver chosen at runtime: {chosen}\n");
    println!("{}", indent(&resp.rows.to_table_string()));

    // 5. NWS forecasts through the same SQL surface.
    let resp = gateway
        .query(&ClientRequest::realtime(
            "jdbc:nws://node00.demo/perfdata",
            "SELECT SourceHost, DestHost, BandwidthMbps, ForecastBandwidthMbps, ForecastMethod \
             FROM NetworkElement ORDER BY DestHost LIMIT 4",
        ))
        .expect("nws query failed");
    println!("== NWS network forecasts (GLUE NetworkElement group)\n");
    println!("{}", indent(&resp.rows.to_table_string()));

    // 6. Cached queries limit resource intrusion (§4).
    let ganglia_agent: Arc<_> = net.endpoint_stats("node00.demo:ganglia").unwrap();
    let before = ganglia_agent.snapshot().requests_served;
    for _ in 0..100 {
        gateway
            .query(&ClientRequest::cached(
                "jdbc:ganglia://node00.demo/demo",
                sql,
                None,
            ))
            .unwrap();
    }
    let after = ganglia_agent.snapshot().requests_served;
    println!("== Cache Controller (§4)");
    println!(
        "   100 cached client reads caused {} additional agent request(s)\n",
        after - before
    );
}

fn indent(table: &str) -> String {
    table
        .lines()
        .map(|l| format!("   {l}"))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}
