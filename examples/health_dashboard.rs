//! A terminal health dashboard: register data sources, force an agent
//! outage, let the probe scheduler walk the Up → Degraded → Down state
//! machine and back, then read the health subsystem out every way it is
//! exposed — the `gridrm_health` and `gridrm_journal` virtual SQL
//! tables, the Admin JSON snapshot, the slow-query log, the Prometheus
//! health slice, and the Global layer's site rollup.
//!
//! Run with: `cargo run --example health_dashboard`

use gridrm::prelude::*;

fn main() {
    let net = Network::new(SimClock::new(), 2024);
    let site = SiteModel::generate(23, &SiteSpec::new("ward", 4, 3));
    site.advance_to(180_000);
    deploy_site(&net, site);

    // Tight thresholds so the demo turns over quickly: probe every 10
    // virtual seconds, Down after 2 failures, Up after 2 successes.
    let mut config = GatewayConfig::new("gw-ward", "ward");
    config.probe_interval_ms = 10_000;
    config.health_down_after = 2;
    config.health_up_after = 2;
    config.slow_query_threshold_ms = 5;
    let gateway = Gateway::new(config, net.clone());
    install_into_gateway(&gateway);
    let layer = GlobalLayer::attach(gateway.clone(), GmaDirectory::new());

    for (url, label) in [
        ("jdbc:snmp://node01.ward/public", "node01 via SNMP"),
        ("jdbc:snmp://node02.ward/public", "node02 via SNMP"),
        ("jdbc:ganglia://node00.ward/ward", "cluster via Ganglia"),
    ] {
        gateway
            .admin()
            .add_source(DataSourceConfig::dynamic(url, label))
            .expect("source registers");
    }
    let clock = gateway.clock().clone();

    // Baseline: one pump probes every registered source.
    gateway.pump();

    // Outage: node01's SNMP agent dies. The next two probe rounds walk
    // the source through Degraded into Down, raising alert events.
    net.set_down("node01.ward:snmp", true);
    for _ in 0..2 {
        clock.advance(10_000);
        gateway.pump();
    }

    // A slow query for the log: stages straddling a clock advance.
    let mut span = gateway
        .telemetry()
        .span("SELECT Hostname, Load1 FROM Processor");
    span.stage("acil");
    clock.advance(42);
    span.stage_with("driver_execute", "jdbc-ganglia");
    span.finish("ok");

    // Recovery: the agent returns; two clean probes re-promote it.
    net.set_down("node01.ward:snmp", false);
    for _ in 0..2 {
        clock.advance(10_000);
        gateway.pump();
    }

    let telemetry_url = "jdbc:telemetry://local/metrics";

    // 1. Per-source health through SQL.
    println!("== SELECT over the gridrm_health virtual table\n");
    let resp = gateway
        .query(&ClientRequest::realtime(
            telemetry_url,
            "SELECT source, state, consecutive_failures, transitions \
             FROM gridrm_health ORDER BY source",
        ))
        .expect("health query");
    print!("{}", resp.rows.to_table_string());

    // 2. The structured event journal: every transition, probe, and
    //    fallback with severity and stage.
    println!("\n== journal tail (state transitions)\n");
    let resp = gateway
        .query(&ClientRequest::realtime(
            telemetry_url,
            "SELECT at_ms, severity, source, message FROM gridrm_journal \
             WHERE kind = 'state_transition' ORDER BY seq",
        ))
        .expect("journal query");
    print!("{}", resp.rows.to_table_string());

    // 3. The slow-query log with per-stage breakdown.
    println!("\n== slow-query log\n");
    let resp = gateway
        .query(&ClientRequest::realtime(
            telemetry_url,
            "SELECT duration_ms, outcome, request, stages FROM gridrm_slow_queries",
        ))
        .expect("slow query log query");
    print!("{}", resp.rows.to_table_string());

    // 4. The Prometheus health slice a scraper would collect.
    println!("\n== Prometheus health slice\n");
    for line in gateway.admin().metrics_prometheus().lines() {
        if line.contains("gridrm_health") || line.contains("gridrm_journal") {
            println!("{line}");
        }
    }

    // 5. The Admin JSON exposition (what the management UI consumes).
    println!("\n== Admin health JSON\n{}", gateway.admin().health_json());

    // 6. Site-level rollup through the Global layer: worst state wins.
    let rollup = layer.site_health();
    println!(
        "\n== site rollup: {} via {} -> {} ({} up / {} degraded / {} down / {} unknown)",
        rollup.site,
        rollup.gateway,
        rollup.overall.name(),
        rollup.up,
        rollup.degraded,
        rollup.down,
        rollup.unknown,
    );
}
