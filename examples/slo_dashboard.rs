//! An SLO dashboard: declare a latency SLO over Global-layer query
//! segments, induce a WAN latency regression between two sites, watch
//! the multi-window burn-rate alert fire and clear at exact virtual
//! timestamps, and read the verdict out of every surface — the
//! `gridrm_slo` and `gridrm_metrics_history` virtual SQL tables (with
//! a `TIME_BUCKET` rollup), the journal, the Prometheus SLO slice, the
//! Admin JSON, and the Global layer's per-site rollup.
//!
//! Run with: `cargo run --example slo_dashboard`

use gridrm::prelude::*;
use std::sync::Arc;

fn main() {
    let net = Network::new(SimClock::new(), 7_117);
    let directory = GmaDirectory::new();
    let mut gateways = Vec::new();
    for (i, name) in ["east", "west"].iter().enumerate() {
        let model = SiteModel::generate(3_000 + i as u64, &SiteSpec::new(name, 4, 2));
        model.advance_to(120_000);
        deploy_site(&net, model);
        let mut config = GatewayConfig::new(&format!("gw-{name}"), name);
        if *name == "east" {
            // 90% of query segments under 100 ms, judged over a 60 s
            // fast window and a 300 s slow window, burning 2x / 1x.
            let mut spec = SloSpec::new(
                "segment-latency",
                SloObjective::Latency {
                    metric: "gridrm_site_latency_ms".to_owned(),
                    threshold_ms: 100.0,
                },
                0.9,
            );
            spec.fast_window_ms = 60_000;
            spec.slow_window_ms = 300_000;
            spec.fast_burn_threshold = 2.0;
            spec.slow_burn_threshold = 1.0;
            config.slos = vec![spec];
        }
        let gateway = Gateway::new(config, net.clone());
        install_into_gateway(&gateway);
        let layer = GlobalLayer::attach(gateway.clone(), directory.clone());
        gateways.push((gateway, layer));
    }
    let (east, layer): &(Arc<Gateway>, Arc<GlobalLayer>) = &gateways[0];
    let clock = east.clock().clone();
    let telemetry_url = "jdbc:telemetry://local/metrics";
    let run_query = || {
        layer
            .query(&ClientRequest::realtime(
                "jdbc:snmp://node01.west/public",
                "SELECT Hostname, Load1 FROM Processor",
            ))
            .expect("grid query");
    };

    // Healthy baseline: zero-latency WAN, every segment under budget.
    for _ in 0..4 {
        run_query();
        clock.advance(5_000);
        east.pump();
    }

    // Regression: the WAN now costs 250 ms one-way, so each cross-site
    // round trip pays 500 ms — five times the objective.
    println!(
        "== inducing 250 ms WAN latency at t={} ms",
        clock.now_millis()
    );
    net.set_default_latency(Latency::ms(250, 0));
    for _ in 0..30 {
        run_query();
        clock.advance(5_000);
        east.pump();
        if east.telemetry().slo().firing_count() > 0 {
            break;
        }
    }
    println!("== SLO fired at t={} ms\n", clock.now_millis());

    // 1. Current SLO state through SQL.
    println!("== SELECT over the gridrm_slo virtual table\n");
    let resp = east
        .query(&ClientRequest::realtime(
            telemetry_url,
            "SELECT name, target, burn_fast, burn_slow, error_budget, \
             firing, since_ms FROM gridrm_slo",
        ))
        .expect("slo query");
    print!("{}", resp.rows.to_table_string());

    // 2. A TIME_BUCKET rollup over the recorded segment-latency history.
    println!("\n== 60 s TIME_BUCKET rollup of gridrm_site_latency_ms_p95\n");
    let resp = east
        .query(&ClientRequest::realtime(
            telemetry_url,
            "SELECT TIME_BUCKET(60000, ts_ms) AS bucket, COUNT(*), \
             MIN(value), MAX(value), AVG(value) \
             FROM gridrm_metrics_history \
             WHERE name = 'gridrm_site_latency_ms_p95' \
             GROUP BY TIME_BUCKET(60000, ts_ms) ORDER BY bucket",
        ))
        .expect("time_bucket query");
    print!("{}", resp.rows.to_table_string());

    // Recovery: latency back to zero; good traffic drains the windows
    // until both burns drop below their thresholds.
    net.set_default_latency(Latency::ZERO);
    for _ in 0..200 {
        run_query();
        clock.advance(5_000);
        east.pump();
        if east.telemetry().slo().firing_count() == 0 {
            break;
        }
    }
    println!("\n== SLO cleared at t={} ms", clock.now_millis());

    // 3. The journal records both transitions at their exact times.
    println!("\n== journal tail (slo_alert entries)\n");
    let resp = east
        .query(&ClientRequest::realtime(
            telemetry_url,
            "SELECT at_ms, severity, source, message FROM gridrm_journal \
             WHERE kind = 'slo_alert' ORDER BY seq",
        ))
        .expect("journal query");
    print!("{}", resp.rows.to_table_string());

    // 4. The Prometheus SLO slice a scraper would collect.
    println!("\n== Prometheus SLO slice\n");
    for line in east.admin().metrics_prometheus().lines() {
        if line.contains("gridrm_slo") {
            println!("{line}");
        }
    }

    // 5. The Admin JSON exposition (what the management UI consumes).
    println!("\n== Admin SLO JSON\n{}", east.admin().slo_json());

    // 6. Site-level rollup through the Global layer.
    let rollup = layer.site_slo();
    println!(
        "\n== site rollup: {} via {} -> {} ({}/{} firing, worst burn {:.2}, \
         min budget {:.2})",
        rollup.site,
        rollup.gateway,
        if rollup.healthy() {
            "healthy"
        } else {
            "burning"
        },
        rollup.firing,
        rollup.slos,
        rollup.worst_burn_slow,
        rollup.min_error_budget,
    );
}
