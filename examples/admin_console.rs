//! The management interface of Figs 6–9 as a terminal rendering: network
//! discovery of data sources, driver registration panels with prioritised
//! drivers and failure policies, runtime driver install/remove, failover,
//! and the cached tree view with status icons.
//!
//! Run with: `cargo run --example admin_console`

use gridrm::core::render_tree_text;
use gridrm::prelude::*;

fn render_tree(gateway: &Gateway, title: &str) {
    println!("== {title}");
    let now = gateway.clock().now_millis();
    let tree = gateway.admin().tree_view(now, 5 * 60_000);
    print!("{}", render_tree_text(&tree, 2));
    println!();
}

fn main() {
    let net = Network::new(SimClock::new(), 31);
    let site = SiteModel::generate(8, &SiteSpec::new("ops", 3, 4));
    site.advance_to(300_000);
    deploy_site(&net, site);
    let gateway = Gateway::new(GatewayConfig::new("gw-ops", "ops"), net.clone());
    install_into_gateway(&gateway);

    // 1. Discovery: "data sources are discovered by scanning a network" (§4).
    let discovered = gateway.admin().discover(
        net.as_ref(),
        &[
            ("snmp", "public"),
            ("ganglia", "ops"),
            ("nws", "perfdata"),
            ("scms", ""),
            ("netlogger", "log"),
        ],
    );
    println!("network scan found {} data sources:", discovered.len());
    for cfg in &discovered {
        println!("  + {}", cfg.url);
    }
    println!();

    // 2. Register them, one with explicit prioritised drivers + a policy
    //    (Fig 8's registration panel).
    for mut cfg in discovered {
        if cfg.url.starts_with("jdbc:snmp://node00") {
            cfg.preferred_drivers = vec!["jdbc-snmp".into(), "jdbc-ganglia".into()];
            cfg.policy = Some(FailurePolicy::TryNext);
        }
        gateway.admin().add_source(cfg).unwrap();
    }

    // 3. Poll everything once so the tree view has health + cache data.
    //    `poll_now` drives any QueryExecutor and feeds each structured
    //    outcome straight into the admin health ledger.
    let sources = gateway.admin().list_sources();
    for cfg in &sources {
        let sql = if cfg.url.contains(":nws") {
            "SELECT SourceHost, BandwidthMbps FROM NetworkElement"
        } else if cfg.url.contains(":netlogger") {
            "SELECT Hostname, Category FROM Event"
        } else {
            "SELECT Hostname, Load1 FROM Processor"
        };
        let now = gateway.clock().now_millis();
        let _ = gateway
            .admin()
            .poll_now(gateway.as_ref(), &cfg.url, sql, now);
    }
    render_tree(&gateway, "tree view after first poll (Fig 9)");

    // 4. Registered drivers (Fig 6's driver panel).
    println!("== registered drivers");
    for meta in gateway.driver_manager().base().driver_metas() {
        println!(
            "  {:<15} v{}.{}  proto '{}'  — {}",
            meta.name, meta.version.0, meta.version.1, meta.subprotocol, meta.description
        );
    }
    println!();

    // 5. Failover demo: kill an SNMP agent; the TryNext policy reroutes
    //    the next poll through Ganglia, and the tree records the episode.
    println!("== taking node00.ops:snmp down, re-polling");
    net.set_down("node00.ops:snmp", true);
    let url = "jdbc:snmp://node00.ops/public";
    match gateway.query(&ClientRequest::realtime(
        url,
        "SELECT Hostname, Load1 FROM Processor WHERE Hostname = 'node00.ops'",
    )) {
        Ok(resp) => {
            let chosen = gateway
                .driver_manager()
                .cached_driver(&JdbcUrl::parse(url).unwrap())
                .unwrap_or_default();
            println!(
                "  query still answered ({} row) — driver now: {chosen}\n",
                resp.rows.len()
            );
        }
        Err(e) => println!("  query failed: {e}\n"),
    }

    // 6. Runtime driver removal/re-registration "without affecting normal
    //    Gateway operation" (§3.2).
    println!("== unregistering jdbc-scms at runtime");
    gateway.driver_manager().unregister("jdbc-scms");
    let scms_url = sources
        .iter()
        .map(|c| c.url.clone())
        .find(|u| u.contains(":scms") || u.starts_with("jdbc:scms"))
        .unwrap_or_else(|| "jdbc:scms://node00.ops/".into());
    match gateway.query(&ClientRequest::realtime(
        &scms_url,
        "SELECT Hostname FROM Processor",
    )) {
        Ok(_) => println!("  (answered by another compatible driver)"),
        Err(e) => println!("  SCMS source now unreachable as expected: {e}"),
    }
    // Other sources are untouched.
    let ok = gateway
        .query(&ClientRequest::realtime(
            "jdbc:snmp://node01.ops/public",
            "SELECT Hostname FROM Processor",
        ))
        .is_ok();
    println!("  unrelated SNMP source still fine: {ok}\n");

    // 7. Persist the registration state ("registration details are cached
    //    persistently within the Gateway", §3.2.2).
    let dir = std::env::temp_dir().join("gridrm-admin-console");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("sources.json");
    gateway.admin().save(&path).expect("persist admin state");
    println!(
        "== persisted {} source registrations to {}",
        gateway.admin().list_sources().len(),
        path.display()
    );

    render_tree(&gateway, "final tree view");
}
