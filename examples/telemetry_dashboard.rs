//! A terminal telemetry dashboard: run a simulated multi-source workload
//! through one gateway, then read the gateway's own instruments back out
//! all three ways — Prometheus text, the slowest captured query trace,
//! and SQL over the `gridrm_telemetry` virtual table.
//!
//! Run with: `cargo run --example telemetry_dashboard`

use gridrm::prelude::*;

fn main() {
    let net = Network::new(SimClock::new(), 1003);
    let site = SiteModel::generate(17, &SiteSpec::new("dash", 5, 3));
    site.advance_to(300_000);
    deploy_site(&net, site);
    let gateway = Gateway::new(GatewayConfig::new("gw-dash", "dash"), net);
    install_into_gateway(&gateway);

    // A mixed workload: every driver family, repeated cached reads, and
    // one query against a host that does not exist (an error trace).
    let workload: &[(&str, &str)] = &[
        (
            "jdbc:snmp://node01.dash/public",
            "SELECT Hostname, Load1 FROM Processor",
        ),
        (
            "jdbc:ganglia://node00.dash/dash",
            "SELECT Hostname, Load1 FROM Processor ORDER BY Load1 DESC LIMIT 3",
        ),
        (
            "jdbc:nws://node00.dash/perf",
            "SELECT SourceHost, BandwidthMbps FROM NetworkElement",
        ),
        (
            "jdbc:scms://node00.dash/",
            "SELECT Hostname, RAMAvailableMB FROM MainMemory",
        ),
    ];
    for (url, sql) in workload {
        gateway
            .query(&ClientRequest::realtime(url, sql))
            .unwrap_or_else(|e| panic!("workload query {url} failed: {e}"));
    }
    // Cached pair: one miss + store, then one hit.
    for _ in 0..2 {
        gateway
            .query(&ClientRequest::cached(
                "jdbc:snmp://node02.dash/public",
                "SELECT Hostname FROM Processor",
                Some(120_000),
            ))
            .expect("cached query");
    }
    // One failing query so the dashboard shows an error outcome.
    let _ = gateway.query(&ClientRequest::realtime(
        "jdbc:snmp://ghost.dash/public",
        "SELECT Hostname FROM Processor",
    ));
    gateway.pump(); // refresh the cache/pool gauges

    // 1. Prometheus text exposition — what a scraper would see.
    println!("== Prometheus exposition (/metrics)\n");
    print!("{}", gateway.admin().metrics_prometheus());

    // 2. The slowest query trace, stage by stage.
    println!("\n== slowest query trace");
    let trace = gateway
        .admin()
        .slowest_trace()
        .expect("workload left traces");
    println!(
        "#{} {:?} via {} — {} ms, outcome {}",
        trace.id,
        trace.request,
        trace.source.as_deref().unwrap_or("?"),
        trace.duration_ms(),
        trace.outcome
    );
    for stage in &trace.stages {
        println!(
            "  t+{:>4} ms  {}{}",
            stage.at_ms - trace.started_ms,
            stage.stage,
            stage
                .detail
                .as_deref()
                .map(|d| format!(" ({d})"))
                .unwrap_or_default()
        );
    }

    // 3. The same registry via SQL — the gateway monitoring itself
    //    through its own driver path.
    println!("\n== SELECT over the gridrm_telemetry virtual table");
    let resp = gateway
        .query(&ClientRequest::realtime(
            "jdbc:telemetry://local/metrics",
            "SELECT name, labels, value FROM gridrm_telemetry \
             WHERE kind = 'counter' ORDER BY value DESC LIMIT 10",
        ))
        .expect("telemetry query");
    print!("{}", resp.rows.to_table_string());
}
