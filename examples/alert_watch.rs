//! Threshold monitoring and historical analysis (Fig 4 + Fig 9): poll a
//! site on a schedule, fire alert rules and SNMP traps into the Event
//! Manager, and plot an attribute's history as an ASCII sparkline —
//! the "click icon to plot historical/current values" hook of Fig 9.
//!
//! Run with: `cargo run --example alert_watch`

use gridrm::prelude::*;

fn sparkline(series: &[(i64, f64)]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::MAX, f64::MIN);
    for (_, v) in series {
        lo = lo.min(*v);
        hi = hi.max(*v);
    }
    let span = (hi - lo).max(1e-9);
    series
        .iter()
        .map(|(_, v)| BARS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let net = Network::new(SimClock::new(), 77);
    let site = SiteModel::generate(55, &SiteSpec::new("farm", 4, 2));
    site.advance_to(60_000);
    let agents = deploy_site(&net, site.clone());
    let gateway = Gateway::new(GatewayConfig::new("gw-farm", "farm"), net.clone());
    install_into_gateway(&gateway);

    // Alert rules (Fig 9: "Threshold exceeded. Event transmitted").
    gateway.alerts().add_rule(AlertRule {
        name: "load-critical".into(),
        group: "Processor".into(),
        attr: "Load1".into(),
        cmp: Comparison::Gt,
        threshold: 3.0,
        severity: Severity::Critical,
        category: "cpu.load.critical".into(),
    });
    gateway.alerts().add_rule(AlertRule {
        name: "memory-low".into(),
        group: "MainMemory".into(),
        attr: "RAMAvailableMB".into(),
        cmp: Comparison::Lt,
        threshold: 256.0,
        severity: Severity::Warning,
        category: "mem.low".into(),
    });
    // SNMP traps from the agents themselves.
    for a in &agents.snmp {
        a.set_trap_sink(net.clone(), "gw.farm", 3.5);
    }

    let (_, alerts_rx) = gateway.events().register_listener(ListenerFilter {
        min_severity: Some(Severity::Warning),
        ..Default::default()
    });

    let sources: Vec<String> = site
        .hostnames()
        .iter()
        .map(|h| format!("jdbc:snmp://{h}/public"))
        .collect();
    let src_refs: Vec<&str> = sources.iter().map(String::as_str).collect();

    // Monitoring loop: poll every 30 virtual seconds for 20 minutes,
    // injecting one load spike halfway through.
    println!(
        "polling {} hosts every 30 s of virtual time...\n",
        sources.len()
    );
    let mut alerts_seen = 0usize;
    for step in 1..=40u64 {
        let t = 60_000 + step * 30_000;
        site.advance_to(t);
        if step == 20 {
            println!(
                "-- injecting load spike on node02.farm at t={}s --\n",
                t / 1000
            );
            site.inject_load_spike("node02.farm", 9.0);
            site.advance_to(t + 1000);
        }
        gateway
            .query(
                &ClientRequest::builder("SELECT Hostname, Load1 FROM Processor")
                    .sources(&src_refs)
                    .build(),
            )
            .expect("poll failed");
        gateway
            .query(
                &ClientRequest::builder("SELECT Hostname, RAMAvailableMB FROM MainMemory")
                    .sources(&src_refs)
                    .build(),
            )
            .expect("poll failed");
        agents.pump();
        gateway.pump();
        for e in alerts_rx.try_iter() {
            alerts_seen += 1;
            println!(
                "t={:>5}s  ALERT [{}] {}",
                t / 1000,
                e.severity.name(),
                e.message
            );
        }
    }
    println!("\n{alerts_seen} alert(s) raised during the run\n");

    // Historical plotting per host (Fig 9's plot icon).
    println!("Load1 history per host (20 virtual minutes):");
    for host in site.hostnames() {
        let source = format!("jdbc:snmp://{host}/public");
        let series = gateway
            .history()
            .series(&source, "Processor", &host, "Load1")
            .expect("history query failed");
        let latest = series.last().map(|(_, v)| *v).unwrap_or(0.0);
        println!("  {host:<14} {:>5.2}  {}", latest, sparkline(&series));
    }

    // SQL over the events table.
    let resp = gateway
        .query(&ClientRequest::historical(
            "SELECT severity, category, COUNT(*) AS n FROM events WHERE severity = 'critical'",
        ))
        .expect("event query failed");
    println!(
        "\ncritical events recorded:\n{}",
        resp.rows.to_table_string()
    );
}
