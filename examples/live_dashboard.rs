//! A live dashboard over the continuous-query plane: standing queries
//! registered with `SELECT … EVERY n`, incremental deltas pumped on the
//! gateway's cadence, and the `gridrm_subscriptions` / Prometheus
//! surfaces that make the subscription population observable.
//!
//! Run with: `cargo run --example live_dashboard`

use gridrm::prelude::*;

fn main() {
    let net = Network::new(SimClock::new(), 23);
    let site = SiteModel::generate(41, &SiteSpec::new("lab", 2, 3));
    site.advance_to(60_000);
    deploy_site(&net, site.clone());
    let gateway = Gateway::new(GatewayConfig::new("gw-lab", "lab"), net.clone());
    install_into_gateway(&gateway);
    let clock = gateway.clock().clone();

    println!("== live dashboard: continuous queries on gw-lab ==\n");

    // Subscription 1: plain SQL with an EVERY clause. The query answers
    // with a one-row acknowledgement instead of rows.
    let ack = gateway
        .query(&ClientRequest::realtime(
            "jdbc:snmp://node00.lab/public",
            "SELECT Hostname, Load1 FROM Processor EVERY 500",
        ))
        .expect("subscribe via SQL");
    let sub_sql = match ack.rows.rows()[0][0] {
        SqlValue::Int(id) => id as u64,
        ref other => panic!("expected subscription id, got {other:?}"),
    };
    println!("SQL `EVERY 500` acknowledged: subscription #{sub_sql}");

    // Subscription 2: the builder path, with explicit delivery knobs —
    // a slow consumer that coalesces rather than losing data.
    let spec = ClientRequest::builder("SELECT Hostname, Load1 FROM Processor")
        .source("jdbc:snmp://node01.lab/public")
        .subscribe_every(1_000)
        .buffer(2)
        .backpressure(BackpressurePolicy::Coalesce);
    let sub_builder = gateway.subscribe(&spec).expect("subscribe via builder");
    println!("builder subscription registered: #{sub_builder} (buffer 2, coalesce)\n");

    // The dashboard loop: advance virtual time, let the site drift,
    // pump the gateway, drain deltas. Only subscription 1 is polled
    // every frame — subscription 2 falls behind and coalesces.
    for frame in 1u64..=6 {
        clock.advance(500);
        site.advance_to(60_000 + frame * 30_000);
        gateway.pump();
        for d in gateway.poll_deltas(sub_sql, 0).expect("poll") {
            for row in d.rows.rows() {
                println!(
                    "frame {frame}  t={}ms  #{:<2} seq {:<2} {} Load1={}",
                    d.emitted_ms, d.subscription, d.seq, row[0], row[1]
                );
            }
        }
    }
    println!();
    for d in gateway.poll_deltas(sub_builder, 0).expect("poll slow") {
        println!(
            "slow consumer catches up: seq {} carries {} row(s), {} emission(s) coalesced",
            d.seq,
            d.rows.len(),
            d.coalesced + 1
        );
    }

    // The subscription population is itself just a table...
    println!("\n-- SELECT * FROM gridrm_subscriptions --");
    let resp = gateway
        .query(&ClientRequest::realtime(
            "jdbc:telemetry://local/metrics",
            "SELECT id, every_ms, policy, pending, emitted, delivered, dropped \
             FROM gridrm_subscriptions ORDER BY id",
        ))
        .expect("subscriptions table");
    let meta = resp.rows.meta();
    let names: Vec<String> = (0..meta.column_count())
        .map(|i| meta.column_name(i).unwrap_or("?").to_owned())
        .collect();
    println!("  {}", names.join("  "));
    for row in resp.rows.rows() {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        println!("  {}", cells.join("  "));
    }

    // ...and a Prometheus family plus an admin JSON document.
    println!("\n-- streaming metrics --");
    for line in gateway.admin().metrics_prometheus().lines() {
        if line.starts_with("gridrm_sub") && !line.starts_with('#') {
            println!("  {line}");
        }
    }
    let json = gateway.admin().subscriptions_json();
    println!(
        "\nadmin subscriptions_json: {} bytes covering {} subscription(s)",
        json.len(),
        gateway.streams().subscriber_count()
    );
}
