//! Fig 1 in action: a three-site Grid, one gateway per site, a GMA
//! directory, and a client that connects to a single gateway yet monitors
//! the whole Grid — with events propagating between sites.
//!
//! Run with: `cargo run --example multi_site_monitor`

use gridrm::prelude::*;

fn main() {
    let net = Network::new(SimClock::new(), 2003);
    let directory = GmaDirectory::new();

    // Three sites, each with agents and a gateway attached to the Global
    // layer.
    let mut sites = Vec::new();
    for (i, name) in ["portsmouth", "lecce", "ncsa"].iter().enumerate() {
        let model = SiteModel::generate(100 + i as u64, &SiteSpec::new(name, 3, 4));
        model.advance_to(15 * 60_000);
        let agents = deploy_site(&net, model.clone());
        let gateway = Gateway::new(GatewayConfig::new(&format!("gw-{name}"), name), net.clone());
        install_into_gateway(&gateway);
        let layer = GlobalLayer::attach(gateway.clone(), directory.clone());
        layer.enable_event_propagation(Severity::Warning);
        sites.push((model, agents, gateway, layer));
    }
    // WAN latencies between the gateways.
    for a in ["gw.portsmouth:gma", "gw.lecce:gma", "gw.ncsa:gma"] {
        for b in ["gw.portsmouth:gma", "gw.lecce:gma", "gw.ncsa:gma"] {
            if a != b {
                net.set_latency(a, b, gridrm::simnet::Latency::ms(35, 10));
            }
        }
    }

    println!("GMA directory:");
    for p in directory.producers() {
        println!(
            "  producer {:<14} site {:<11} endpoint {}",
            p.gateway, p.site, p.gma_address
        );
    }
    println!();

    // The client talks ONLY to the Portsmouth gateway.
    let (_, _, _, portal) = &sites[0];

    // One consolidated query spanning every site (§1.1: "seamless and
    // transparent client access to information").
    let resp = portal
        .query(
            &ClientRequest::realtime(
                "",
                "SELECT Hostname, NCpu, Load1, Load15 FROM Processor ORDER BY Hostname",
            )
            .with_sources(&[
                "jdbc:ganglia://node00.portsmouth/portsmouth",
                "jdbc:ganglia://node00.lecce/lecce",
                "jdbc:ganglia://node00.ncsa/ncsa",
            ]),
        )
        .expect("grid-wide query failed");
    println!(
        "Grid-wide processor view through gw-portsmouth ({} rows):\n",
        resp.rows.len()
    );
    println!("{}", resp.rows.to_table_string());
    println!(
        "remote queries sent by gw-portsmouth: {}",
        portal.stats().remote_queries_out.get()
    );

    // Site-level compute summaries via the SCMS ComputeElement group.
    let resp = portal
        .query(
            &ClientRequest::realtime(
                "",
                "SELECT SiteName, TotalCpus, FreeCpus, RunningJobs FROM ComputeElement \
                 ORDER BY SiteName",
            )
            .with_sources(&[
                "jdbc:scms://node00.portsmouth/",
                "jdbc:scms://node00.lecce/",
                "jdbc:scms://node00.ncsa/",
            ]),
        )
        .expect("compute-element query failed");
    println!("\nPer-site compute summary:\n");
    println!("{}", resp.rows.to_table_string());

    // Event propagation: a trap at NCSA reaches a listener in Portsmouth.
    let (_, rx) = sites[0].2.events().register_listener(ListenerFilter {
        min_severity: Some(Severity::Warning),
        ..Default::default()
    });
    for agent in &sites[2].1.snmp {
        agent.set_trap_sink(net.clone(), "gw.ncsa", 3.0);
    }
    sites[2].0.inject_load_spike("node01.ncsa", 14.0);
    sites[2].0.advance_to(15 * 60_000 + 1_000);
    sites[2].1.pump();
    sites[2].2.pump(); // NCSA dispatch + forward
    sites[0].2.pump(); // Portsmouth dispatch to listeners

    println!("\nCross-site event propagation:");
    match rx.try_recv() {
        Ok(e) => println!(
            "  gw-portsmouth listener received: [{}] {} (value {:?}, via {})",
            e.severity.name(),
            e.message,
            e.value,
            e.source
        ),
        Err(_) => println!("  (no event arrived — unexpected)"),
    }

    // A remote gateway failure degrades gracefully.
    net.set_down("gw.lecce:gma", true);
    let resp = portal
        .query(
            &ClientRequest::realtime("", "SELECT Hostname FROM Processor").with_sources(&[
                "jdbc:snmp://node00.portsmouth/public",
                "jdbc:snmp://node00.lecce/public",
            ]),
        )
        .expect("partial result expected");
    println!(
        "\nWith gw-lecce down: {} row(s), warnings:",
        resp.rows.len()
    );
    for w in &resp.warnings {
        println!("  ! {w}");
    }
}
