//! Fig 1 in action: a three-site Grid, one gateway per site, a GMA
//! directory, and a client that connects to a single gateway yet monitors
//! the whole Grid — with events propagating between sites.
//!
//! The client code below is written against [`QueryExecutor`], so the
//! same helper works whether it is handed a single local [`Gateway`] or
//! the whole Grid through a [`GlobalLayer`].
//!
//! Run with: `cargo run --example multi_site_monitor`

use gridrm::prelude::*;

/// One consolidated query against *any* executor — a local gateway or
/// the Global layer; the client cannot tell the difference (§1.1's
/// "seamless and transparent client access to information").
fn consolidated_view(executor: &dyn QueryExecutor, sql: &str, sources: &[&str]) -> ClientResponse {
    let request = ClientRequest::builder(sql).sources(sources).build();
    executor
        .execute(&request)
        .unwrap_or_else(|e| panic!("query via {} failed: {e}", executor.scope()))
}

fn main() {
    let net = Network::new(SimClock::new(), 2003);
    let directory = GmaDirectory::new();

    // Three sites, each with agents and a gateway attached to the Global
    // layer.
    let mut sites = Vec::new();
    for (i, name) in ["portsmouth", "lecce", "ncsa"].iter().enumerate() {
        let model = SiteModel::generate(100 + i as u64, &SiteSpec::new(name, 3, 4));
        model.advance_to(15 * 60_000);
        let agents = deploy_site(&net, model.clone());
        let gateway = Gateway::new(GatewayConfig::new(&format!("gw-{name}"), name), net.clone());
        install_into_gateway(&gateway);
        let layer = GlobalLayer::attach(gateway.clone(), directory.clone());
        layer.enable_event_propagation(Severity::Warning);
        sites.push((model, agents, gateway, layer));
    }
    // WAN latencies between the gateways.
    for a in ["gw.portsmouth:gma", "gw.lecce:gma", "gw.ncsa:gma"] {
        for b in ["gw.portsmouth:gma", "gw.lecce:gma", "gw.ncsa:gma"] {
            if a != b {
                net.set_latency(a, b, gridrm::simnet::Latency::ms(35, 10));
            }
        }
    }

    println!("GMA directory:");
    for p in directory.producers() {
        println!(
            "  producer {:<14} site {:<11} endpoint {}",
            p.gateway, p.site, p.gma_address
        );
    }
    println!();

    // The client talks ONLY to the Portsmouth gateway. The same
    // `consolidated_view` helper serves a purely local question (via the
    // gateway) and a grid-wide one (via the Global layer).
    let (_, _, portal_gw, portal) = &sites[0];
    println!(
        "local view via {}:\n",
        QueryExecutor::scope(portal_gw.as_ref())
    );
    let resp = consolidated_view(
        portal_gw.as_ref(),
        "SELECT Hostname, Load1 FROM Processor",
        &["jdbc:ganglia://node00.portsmouth/portsmouth"],
    );
    println!("{}", resp.rows.to_table_string());

    let resp = consolidated_view(
        portal.as_ref(),
        "SELECT Hostname, NCpu, Load1, Load15 FROM Processor ORDER BY Hostname",
        &[
            "jdbc:ganglia://node00.portsmouth/portsmouth",
            "jdbc:ganglia://node00.lecce/lecce",
            "jdbc:ganglia://node00.ncsa/ncsa",
        ],
    );
    println!(
        "Grid-wide processor view via {} ({} rows):\n",
        QueryExecutor::scope(portal.as_ref()),
        resp.rows.len()
    );
    println!("{}", resp.rows.to_table_string());
    println!(
        "remote queries sent by gw-portsmouth: {}",
        portal.stats().remote_queries_out.get()
    );

    // Site-level compute summaries via the SCMS ComputeElement group.
    let resp = consolidated_view(
        portal.as_ref(),
        "SELECT SiteName, TotalCpus, FreeCpus, RunningJobs FROM ComputeElement \
         ORDER BY SiteName",
        &[
            "jdbc:scms://node00.portsmouth/",
            "jdbc:scms://node00.lecce/",
            "jdbc:scms://node00.ncsa/",
        ],
    );
    println!("\nPer-site compute summary:\n");
    println!("{}", resp.rows.to_table_string());

    // Event propagation: a trap at NCSA reaches a listener in Portsmouth.
    let (_, rx) = sites[0].2.events().register_listener(ListenerFilter {
        min_severity: Some(Severity::Warning),
        ..Default::default()
    });
    for agent in &sites[2].1.snmp {
        agent.set_trap_sink(net.clone(), "gw.ncsa", 3.0);
    }
    sites[2].0.inject_load_spike("node01.ncsa", 14.0);
    sites[2].0.advance_to(15 * 60_000 + 1_000);
    sites[2].1.pump();
    sites[2].2.pump(); // NCSA dispatch + forward
    sites[0].2.pump(); // Portsmouth dispatch to listeners

    println!("\nCross-site event propagation:");
    match rx.try_recv() {
        Ok(e) => println!(
            "  gw-portsmouth listener received: [{}] {} (value {:?}, via {})",
            e.severity.name(),
            e.message,
            e.value,
            e.source
        ),
        Err(_) => println!("  (no event arrived — unexpected)"),
    }

    // A remote gateway failure degrades gracefully: best-effort (the
    // default policy) keeps the rows that did arrive and reports a
    // structured outcome per source.
    net.set_down("gw.lecce:gma", true);
    let resp = consolidated_view(
        portal.as_ref(),
        "SELECT Hostname FROM Processor",
        &[
            "jdbc:snmp://node00.portsmouth/public",
            "jdbc:snmp://node00.lecce/public",
        ],
    );
    println!(
        "\nWith gw-lecce down: {} row(s), per-source outcomes:",
        resp.rows.len()
    );
    for o in &resp.outcomes {
        println!(
            "  {:<38} {:<8} {:>4}ms  {}",
            o.source,
            o.status.name(),
            o.elapsed_ms,
            o.detail.as_deref().unwrap_or("-")
        );
    }
}
