//! Writing a new GridRM driver (§3.2.1's driver-development guidelines),
//! end to end: a brand-new kind of data source (an environmental sensor
//! network speaking its own protocol), a GLUE schema *extension* for it,
//! a minimal driver, and runtime registration — "GridRM can be extended to
//! work with any number of data sources" (§3.2).
//!
//! Run with: `cargo run --example custom_driver`

use gridrm::core::events::ListenerFilter;
use gridrm::dbc::{
    Connection, DbcResult, Driver, DriverMetaData, JdbcUrl, Properties, ResultSet, SqlError,
    Statement,
};
use gridrm::drivers::base::{finish_select, parse_select};
use gridrm::glue::{AttributeDef, DriverMapping, FieldMapping, GroupDef, NativeRow, Translator};
use gridrm::prelude::*;
use gridrm::simnet::Service;
use gridrm::sqlparse::SqlType;
use std::sync::Arc;

// ---------------------------------------------------------------------
// 1. The data source: an environmental sensor hub with its own protocol
//    ("READINGS" -> "id temperature_c humidity_pct" lines).
// ---------------------------------------------------------------------

struct SensorHub {
    readings: Vec<(String, f64, f64)>,
}

impl Service for SensorHub {
    fn handle(&self, _from: &str, request: &[u8]) -> Vec<u8> {
        match request {
            b"READINGS" => self
                .readings
                .iter()
                .map(|(id, t, h)| format!("{id} {t:.2} {h:.1}\n"))
                .collect::<String>()
                .into_bytes(),
            _ => b"ERROR unknown command\n".to_vec(),
        }
    }
}

// ---------------------------------------------------------------------
// 2. The minimal driver (§3.2.1): Driver + Connection + Statement, with
//    ResultSet/metadata provided by finish_select. The SQL parsing helper
//    and schema interaction come from the driver development kit.
// ---------------------------------------------------------------------

const DRIVER_NAME: &str = "jdbc-enviro";

struct EnviroDriver {
    gateway: Arc<Gateway>,
}

impl Driver for EnviroDriver {
    fn meta(&self) -> DriverMetaData {
        DriverMetaData {
            name: DRIVER_NAME.to_owned(),
            subprotocol: "enviro".to_owned(),
            version: (0, 1),
            description: "third-party environmental sensor hub driver".to_owned(),
        }
    }

    fn accepts_url(&self, url: &JdbcUrl) -> bool {
        url.subprotocol == "enviro"
    }

    fn connect(&self, url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
        // Verify connectivity, then cache the schema (Fig 5).
        self.gateway
            .network()
            .request(
                &self.gateway.config().address,
                &format!("{}:enviro", url.host),
                b"READINGS",
            )
            .map_err(|e| SqlError::Connection(e.to_string()))?;
        Ok(Box::new(EnviroConnection {
            gateway: self.gateway.clone(),
            url: url.clone(),
            closed: false,
        }))
    }
}

struct EnviroConnection {
    gateway: Arc<Gateway>,
    url: JdbcUrl,
    closed: bool,
}

impl Connection for EnviroConnection {
    fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
        if self.closed {
            return Err(SqlError::Closed);
        }
        Ok(Box::new(EnviroStatement {
            gateway: self.gateway.clone(),
            url: self.url.clone(),
        }))
    }
    fn url(&self) -> &JdbcUrl {
        &self.url
    }
    fn is_closed(&self) -> bool {
        self.closed
    }
    fn close(&mut self) -> DbcResult<()> {
        self.closed = true;
        Ok(())
    }
}

struct EnviroStatement {
    gateway: Arc<Gateway>,
    url: JdbcUrl,
}

impl Statement for EnviroStatement {
    fn execute_query(&mut self, sql: &str) -> DbcResult<Box<dyn ResultSet>> {
        let sel = parse_select(sql)?;
        let handle = self.gateway.schema().handle_for(DRIVER_NAME);
        let group = handle
            .group(&sel.table)
            .ok_or_else(|| SqlError::Unsupported(format!("unknown group '{}'", sel.table)))?
            .clone();

        // Native fetch + parse.
        let bytes = self
            .gateway
            .network()
            .request(
                &self.gateway.config().address,
                &format!("{}:enviro", self.url.host),
                b"READINGS",
            )
            .map_err(|e| SqlError::Connection(e.to_string()))?;
        let text = String::from_utf8_lossy(&bytes);
        let native_rows: Vec<NativeRow> = text
            .lines()
            .filter_map(|line| {
                let mut parts = line.split_whitespace();
                let id = parts.next()?;
                let temp: f64 = parts.next()?.parse().ok()?;
                let hum: f64 = parts.next()?.parse().ok()?;
                let mut row = NativeRow::new();
                row.insert("sensor.id".into(), SqlValue::Str(id.to_owned()));
                row.insert("sensor.temp".into(), SqlValue::Float(temp));
                row.insert("sensor.humidity".into(), SqlValue::Float(hum));
                Some(row)
            })
            .collect();

        // Normalise through the SchemaManager's mapping, like any driver.
        let translator = Translator::new(&handle);
        let (rows, _) = translator
            .translate_all(&group.name, &native_rows)
            .ok_or_else(|| SqlError::Driver("group missing".into()))?;
        let rs = finish_select(&group, rows, &sel, self.gateway.clock().now_ts())?;
        Ok(Box::new(rs))
    }
}

// ---------------------------------------------------------------------
// 3. Wire it all together at runtime.
// ---------------------------------------------------------------------

fn main() {
    let net = Network::new(SimClock::new(), 99);
    let site = SiteModel::generate(1, &SiteSpec::new("lab", 2, 2));
    site.advance_to(60_000);
    deploy_site(&net, site);
    let gateway = Gateway::new(GatewayConfig::new("gw-lab", "lab"), net.clone());
    install_into_gateway(&gateway);

    // A sensor hub appears on the network, speaking a protocol GridRM has
    // never seen.
    net.register(
        "hub01.lab:enviro",
        Arc::new(SensorHub {
            readings: vec![
                ("rack-a".into(), 24.5, 41.0),
                ("rack-b".into(), 31.2, 38.5),
                ("intake".into(), 18.9, 55.0),
            ],
        }),
    );

    // Extend the GLUE schema with a new group ("as GLUE evolves", §3.2.3).
    gateway.schema().upsert_group(GroupDef {
        name: "EnvironmentSensor".into(),
        description: "Environmental sensor readings".into(),
        attributes: vec![
            AttributeDef::new("SensorId", SqlType::Str, None, "Sensor identifier"),
            AttributeDef::new("TemperatureC", SqlType::Float, Some("degC"), "Temperature"),
            AttributeDef::new(
                "HumidityPct",
                SqlType::Float,
                Some("%"),
                "Relative humidity",
            ),
        ],
    });

    // Register the driver's GLUE implementation metadata and the driver
    // itself — both at runtime (Table 1).
    gateway
        .schema()
        .register_mapping(DriverMapping::new(DRIVER_NAME).with_group(
            "EnvironmentSensor",
            [
                ("SensorId", FieldMapping::direct("sensor.id")),
                ("TemperatureC", FieldMapping::direct("sensor.temp")),
                ("HumidityPct", FieldMapping::direct("sensor.humidity")),
            ],
        ));
    gateway.driver_manager().register(Arc::new(EnviroDriver {
        gateway: gateway.clone(),
    }));

    // Alerting works immediately — the Event Manager has no idea a new
    // kind of source exists, and doesn't need to.
    gateway.alerts().add_rule(AlertRule {
        name: "overheating".into(),
        group: "EnvironmentSensor".into(),
        attr: "TemperatureC".into(),
        cmp: Comparison::Gt,
        threshold: 30.0,
        severity: Severity::Critical,
        category: "env.temperature.high".into(),
    });
    let (_, alerts) = gateway
        .events()
        .register_listener(ListenerFilter::default());

    // Query the brand-new source with plain SQL through the same gateway.
    let resp = gateway
        .query(&ClientRequest::realtime(
            "jdbc:enviro://hub01.lab/",
            "SELECT SensorId, TemperatureC, HumidityPct FROM EnvironmentSensor \
             ORDER BY TemperatureC DESC",
        ))
        .expect("custom driver query");
    println!("EnvironmentSensor via the runtime-registered driver:\n");
    println!("{}", resp.rows.to_table_string());

    gateway.pump();
    for e in alerts.try_iter() {
        println!("ALERT [{}] {}", e.severity.name(), e.message);
    }

    // And of course the ordinary sources are untouched.
    let resp = gateway
        .query(&ClientRequest::realtime(
            "jdbc:snmp://node00.lab/public",
            "SELECT Hostname, Load1 FROM Processor",
        ))
        .expect("snmp still fine");
    println!("\nSNMP continues to work alongside:\n");
    println!("{}", resp.rows.to_table_string());
}
