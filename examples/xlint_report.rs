//! Static-analysis report: run every `gridrm-lint` rule plus the
//! wire-schema extraction over this very workspace and print the result —
//! the same data `--check` gates CI on, consumable as a dashboard.
//!
//! Run with: `cargo run --example xlint_report` (human summary) or
//! `cargo run --example xlint_report -- --json` (machine-readable).

use gridrm_xlint::schema::build_schema;
use gridrm_xlint::{parse_workspace, scan_files, Config};
use std::collections::BTreeMap;
use std::path::Path;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let config = Config::for_workspace(root).expect("workspace config");
    let (files, parse_findings) = parse_workspace(root).expect("parse workspace");
    let mut findings = parse_findings;
    findings.extend(scan_files(&files, &config));
    findings.sort();
    let (schema, _locs) = build_schema(&files, &config);

    if json {
        let findings_json = serde_json::to_string_pretty(&findings).expect("findings serialize");
        let schema_json = schema.to_json();
        println!(
            "{{\n\"files_scanned\": {},\n\"findings\": {},\n\"wire_schema\": {}\n}}",
            files.len(),
            findings_json,
            schema_json.trim_end()
        );
        return;
    }

    println!("gridrm-lint report — {} file(s) scanned", files.len());
    println!();
    if findings.is_empty() {
        println!("findings: none — the ratchet baseline stays empty");
    } else {
        let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for f in &findings {
            *by_rule.entry(f.rule.as_str()).or_default() += 1;
        }
        println!("findings by rule:");
        for (rule, n) in &by_rule {
            println!("  {rule:<24} {n}");
        }
        println!();
        for f in &findings {
            println!("  {}:{} [{}] {}", f.file, f.line, f.rule, f.message);
        }
    }
    println!();
    println!(
        "wire schema: {} type(s) reachable from {:?} (fingerprint v{})",
        schema.types.len(),
        schema.roots,
        schema.version
    );
    for t in &schema.types {
        let shape = match t.kind.as_str() {
            "enum" => format!("{} variant(s)", t.variants.len()),
            _ => format!("{} field(s)", t.fields.len()),
        };
        println!("  {:<20} {:<6} {shape:<14} {}", t.name, t.kind, t.file);
    }
}
