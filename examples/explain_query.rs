//! `EXPLAIN ANALYZE` across a two-site Grid: stand up two gateways over
//! simulated agent populations, run one fan-out query through the Global
//! layer, and pretty-print the hierarchical span tree the EXPLAIN verb
//! returns — driver resolution candidates, pool decisions, GLUE drops
//! and per-site virtual timings included.
//!
//! Run with: `cargo run --example explain_query`

use gridrm::core::explain::render_span_tree;
use gridrm::prelude::*;
use std::sync::Arc;

fn main() {
    // Two sites, each with its own gateway, joined by a GMA directory.
    let net = Network::new(SimClock::new(), 1007);
    let directory = GmaDirectory::new();
    let mut layers: Vec<(Arc<Gateway>, Arc<GlobalLayer>)> = Vec::new();
    for (i, name) in ["east", "west"].iter().enumerate() {
        let site = SiteModel::generate(31 + i as u64, &SiteSpec::new(name, 3, 4));
        site.advance_to(240_000);
        deploy_site(&net, site);
        let gateway = Gateway::new(GatewayConfig::new(&format!("gw-{name}"), name), net.clone());
        install_into_gateway(&gateway);
        let layer = GlobalLayer::attach(gateway.clone(), directory.clone());
        layers.push((gateway, layer));
    }
    let (gateway, layer) = &layers[0];

    // EXPLAIN ANALYZE runs the query — locally on east, remotely via
    // west's gateway — and answers with the span tree instead of rows.
    let sql = "EXPLAIN ANALYZE SELECT Hostname, Load1 FROM Processor";
    let resp = layer
        .query(
            &ClientRequest::builder(sql)
                .sources(&[
                    "jdbc:snmp://node00.east/public",
                    "jdbc:snmp://node01.west/public",
                ])
                .build(),
        )
        .expect("explain query");

    println!("== {sql}");
    println!(
        "== {} spans, {} warnings\n",
        resp.rows.len(),
        resp.warnings.len()
    );

    // The same tree as a result set (what a SQL client would see)...
    let header: Vec<String> = resp
        .rows
        .meta()
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    println!("{}", header.join(" | "));
    for row in resp.rows.rows() {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join(" | "));
    }

    // ...and rendered as an indented tree from the trace buffer.
    let trace_id = resp.rows.rows()[0][0].to_string();
    let spans = gateway.telemetry().traces().for_trace(&trace_id);
    println!("\n== span tree for trace {trace_id}\n");
    print!("{}", render_span_tree(&spans));
}
