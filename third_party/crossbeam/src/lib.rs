//! Workspace-local stand-in for the `crossbeam` crate. Provides the two
//! pieces GridRM-rs uses — `channel::{unbounded, Sender, Receiver}` and
//! `queue::ArrayQueue` — with crossbeam-compatible semantics (cloneable,
//! `Send + Sync` endpoints; disconnect detection) on top of `std::sync`.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Send a message; fails when no receiver remains.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Pop a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Iterator draining currently available messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}

/// Bounded queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A bounded MPMC queue (mutex-backed stand-in for crossbeam's
    /// lock-free `ArrayQueue`).
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        capacity: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Queue holding at most `capacity` elements.
        ///
        /// # Panics
        /// Panics if `capacity` is zero (matching crossbeam).
        pub fn new(capacity: usize) -> ArrayQueue<T> {
            assert!(capacity > 0, "capacity must be non-zero");
            ArrayQueue {
                inner: Mutex::new(VecDeque::with_capacity(capacity)),
                capacity,
            }
        }

        /// Push an element; returns it back when the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            if q.len() >= self.capacity {
                return Err(value);
            }
            q.push_back(value);
            Ok(())
        }

        /// Pop the oldest element.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|p| p.into_inner()).len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The fixed capacity.
        pub fn capacity(&self) -> usize {
            self.capacity
        }

        /// True when the queue is at capacity.
        pub fn is_full(&self) -> bool {
            self.len() >= self.capacity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use super::queue::ArrayQueue;

    #[test]
    fn channel_send_try_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn array_queue_bounds() {
        let q = ArrayQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.len(), 1);
    }
}
