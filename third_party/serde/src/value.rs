//! The self-describing value tree shared by `serde` and `serde_json`.

use std::fmt;
use std::ops::Index;

/// A JSON-style number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (always possible, may round).
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::PosInt(u) => *u as f64,
            Number::NegInt(i) => *i as f64,
            Number::Float(f) => *f,
        }
    }

    /// The number as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(u) => i64::try_from(*u).ok(),
            Number::NegInt(i) => Some(*i),
            Number::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            Number::Float(_) => None,
        }
    }

    /// The number as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(u) => Some(*u),
            Number::NegInt(i) => u64::try_from(*i).ok(),
            Number::Float(f) if f.fract() == 0.0 && f.is_finite() && *f >= 0.0 => Some(*f as u64),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(u) => write!(f, "{u}"),
            Number::NegInt(i) => write!(f, "{i}"),
            // Rust's shortest-roundtrip float printing gives the
            // `float_roundtrip` guarantee; keep a `.0` so the value
            // re-parses as a float.
            Number::Float(x) if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 => {
                write!(f, "{x:.1}")
            }
            Number::Float(x) => write!(f, "{x}"),
        }
    }
}

/// An insertion-ordered string-keyed map (JSON object).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert (replacing any previous value under `key`).
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Does the map contain `key`?
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON-style self-describing value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string slice, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `i64`, if numeric and exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `u64`, if numeric and exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The map, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Index an object by key (None for other shapes / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(i64::from(*other))
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::from(i64::from(i))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        if i < 0 {
            Value::Number(Number::NegInt(i))
        } else {
            Value::Number(Number::PosInt(i as u64))
        }
    }
}

impl From<u64> for Value {
    fn from(u: u64) -> Value {
        Value::Number(Number::PosInt(u))
    }
}

impl From<usize> for Value {
    fn from(u: usize) -> Value {
        Value::Number(Number::PosInt(u as u64))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::Float(f))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if matches!(n, Number::Float(f) if !f.is_finite()) {
                // JSON has no NaN/Infinity; serde_json emits null.
                out.push_str("null");
            } else {
                out.push_str(&n.to_string());
            }
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

pub(crate) fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(&mut out, self);
        f.write_str(&out)
    }
}
