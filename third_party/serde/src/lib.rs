//! Workspace-local stand-in for `serde`.
//!
//! The real serde is a zero-copy visitor framework; this stand-in keeps
//! the same *surface* (the `Serialize`/`Deserialize` traits and their
//! derive macros) but routes everything through one self-describing
//! [`Value`] tree, which `serde_json` then prints and parses. That is all
//! GridRM-rs needs: plain `#[derive(Serialize, Deserialize)]` on structs
//! and enums, round-tripped through JSON.

mod value;

pub use value::{Map, Number, Value};

/// Render `v` as indented JSON text (backs `serde_json::to_string_pretty`).
pub fn write_pretty_value(out: &mut String, v: &Value) {
    value::write_pretty(out, v, 0);
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can capture itself as a [`Value`] tree.
pub trait Serialize {
    /// Capture self as a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
///
/// The lifetime parameter exists only for signature compatibility with
/// real serde bounds such as `for<'de> Deserialize<'de>`; this stand-in
/// always deserializes from an owned tree.
pub trait Deserialize<'de>: Sized {
    /// Rebuild self from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, got {v}")))
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Value::Number(Number::NegInt(*self as i64))
                } else {
                    Value::Number(Number::PosInt(*self as u64))
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let err = || DeError::custom(format!(
                    concat!("expected ", stringify!($t), ", got {}"), v
                ));
                match v {
                    Value::Number(Number::PosInt(u)) => <$t>::try_from(*u).map_err(|_| err()),
                    Value::Number(Number::NegInt(i)) => <$t>::try_from(*i).map_err(|_| err()),
                    Value::Number(Number::Float(f))
                        if f.fract() == 0.0 && f.is_finite() =>
                    {
                        Ok(*f as $t)
                    }
                    _ => Err(err()),
                }
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::custom(format!("expected float, got {v}")))
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_owned())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, got {v}")))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Object(m)
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, got {v}")))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| DeError::custom(format!("expected tuple array, got {v}")))?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if arr.len() != LEN {
                    return Err(DeError::custom(format!(
                        "expected tuple of {LEN}, got {} elements", arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )+};
}
tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
