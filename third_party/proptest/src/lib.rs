//! Workspace-local stand-in for `proptest`.
//!
//! Keeps the combinator surface the GridRM-rs property tests use
//! (`proptest!`, `prop_oneof!`, `Strategy`, `prop::collection::vec`,
//! regex-literal string strategies, `prop_recursive`, …) but generates
//! values from a deterministic per-test PRNG and performs no shrinking:
//! a failing case simply fails the test with the generated inputs in
//! the assertion message.

/// Number of generated cases per `proptest!` test function.
pub const NUM_CASES: usize = 64;

pub mod test_runner {
    /// Deterministic xorshift64* generator seeded per test.
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        /// A runner with a fixed, well-known seed.
        pub fn deterministic() -> TestRunner {
            TestRunner {
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// A runner seeded from the test name, so each test sees a
        /// stable but distinct stream.
        pub fn for_test(name: &str) -> TestRunner {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                state: h | 1, // never zero
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state ^= self.state >> 12;
            self.state ^= self.state << 25;
            self.state ^= self.state >> 27;
            self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `0..n` (`n > 0`).
        pub fn usize_below(&mut self, n: usize) -> usize {
            assert!(n > 0, "usize_below(0)");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform float in `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-suite configuration (only `cases` is honoured here).
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }
}

pub mod strategy {
    use super::stringgen;
    use super::test_runner::TestRunner;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            MapStrategy { inner: self, f }
        }

        /// Keep only values for which `pred` holds (regenerating
        /// otherwise; panics after too many rejections).
        fn prop_filter<F, R>(self, reason: R, pred: F) -> FilterStrategy<Self, F>
        where
            Self: Sized,
            R: std::fmt::Display,
            F: Fn(&Self::Value) -> bool,
        {
            FilterStrategy {
                inner: self,
                reason: reason.to_string(),
                pred,
            }
        }

        /// Build recursive values: `recurse` receives a strategy for
        /// the previous depth and returns one for the next.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            Recursive {
                base: self.boxed(),
                depth,
                recurse: Rc::new(move |inner| recurse(inner).boxed()),
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = self;
            BoxedStrategy {
                func: Rc::new(move |runner| this.generate(runner)),
            }
        }

        /// Produce a (non-shrinking) value tree.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<GeneratedTree<Self::Value>, String> {
            Ok(GeneratedTree {
                value: self.generate(runner),
            })
        }
    }

    /// A generated value plus (here: vestigial) shrinking state.
    pub trait ValueTree {
        /// The carried value type.
        type Value;

        /// The current value.
        fn current(&self) -> Self::Value;
    }

    /// The value tree produced by this stand-in: a plain value.
    pub struct GeneratedTree<T> {
        value: T,
    }

    impl<T: Clone> ValueTree for GeneratedTree<T> {
        type Value = T;

        fn current(&self) -> T {
            self.value.clone()
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        func: Rc<dyn Fn(&mut TestRunner) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                func: Rc::clone(&self.func),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            (self.func)(runner)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from at least one option.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "Union of zero strategies");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            let pick = runner.usize_below(self.options.len());
            self.options[pick].generate(runner)
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct MapStrategy<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for MapStrategy<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// `prop_filter` adapter.
    #[derive(Clone)]
    pub struct FilterStrategy<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S, F> Strategy for FilterStrategy<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, runner: &mut TestRunner) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(runner);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 candidates: {}", self.reason);
        }
    }

    /// `prop_recursive` adapter: mixes the base case with ever-deeper
    /// towers built by the recursion closure.
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        depth: u32,
        #[allow(clippy::type_complexity)]
        recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            let levels = runner.usize_below(self.depth as usize + 1);
            let mut strat = self.base.clone();
            for _ in 0..levels {
                let deeper = (self.recurse)(strat);
                strat = Union::new(vec![self.base.clone(), deeper]).boxed();
            }
            strat.generate(runner)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (runner.next_u64() as i128).rem_euclid(span);
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    self.start + runner.f64_unit() as $t * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    impl Strategy for &str {
        type Value = String;

        /// String literals act as (a supported subset of) regexes.
        fn generate(&self, runner: &mut TestRunner) -> String {
            stringgen::from_regex(self, runner)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$n.generate(runner),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }

    /// Strategy for any [`super::arbitrary::Arbitrary`] type.
    pub struct Any<A>(pub(crate) PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A: super::arbitrary::Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, runner: &mut TestRunner) -> A {
            A::arbitrary(runner)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRunner;
    use std::marker::PhantomData;

    /// Types with a default whole-domain generator.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    /// The strategy covering a type's whole domain.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> $t {
                    runner.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for f64 {
        fn arbitrary(runner: &mut TestRunner) -> f64 {
            // Raw bit patterns: exercises subnormals, infinities, NaN.
            f64::from_bits(runner.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(runner: &mut TestRunner) -> f32 {
            f32::from_bits(runner.next_u64() as u32)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRunner;
    use std::collections::BTreeMap;

    /// Inclusive size bounds accepted by collection strategies.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl SizeRange {
        fn draw(&self, runner: &mut TestRunner) -> usize {
            self.lo + runner.usize_below(self.hi - self.lo + 1)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors with element strategy and length range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = self.size.draw(runner);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// Strategy for `BTreeMap`s from key and value strategies.
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Maps with up to `size` entries (duplicate keys collapse, so the
    /// result may be smaller, matching real proptest's behaviour only
    /// loosely — fine for property inputs).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, runner: &mut TestRunner) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.draw(runner);
            (0..n)
                .map(|_| (self.key.generate(runner), self.value.generate(runner)))
                .collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRunner;

    /// Strategy for `Option<T>` (roughly half `Some`).
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    /// `None` or `Some` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Option<S::Value> {
            if runner.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.0.generate(runner))
            }
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRunner;

    /// Strategy picking one element of a base vector.
    #[derive(Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// One uniformly chosen element of `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over no items");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            self.items[runner.usize_below(self.items.len())].clone()
        }
    }

    /// Strategy for order-preserving subsequences of a base vector.
    #[derive(Clone)]
    pub struct Subsequence<T: Clone> {
        items: Vec<T>,
        size: std::ops::Range<usize>,
    }

    /// A subsequence of `items` (original order kept) whose length is
    /// drawn from `size`, capped at the number of items.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: std::ops::Range<usize>) -> Subsequence<T> {
        assert!(size.start < size.end, "empty subsequence size range");
        Subsequence { items, size }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<T> {
            let hi = self.size.end.min(self.items.len() + 1);
            let lo = self.size.start.min(hi.saturating_sub(1));
            let n = lo + runner.usize_below(hi - lo);
            // Choose n distinct indices, then emit them in order.
            let mut picked = vec![false; self.items.len()];
            let mut left = n;
            while left > 0 {
                let idx = runner.usize_below(self.items.len());
                if !picked[idx] {
                    picked[idx] = true;
                    left -= 1;
                }
            }
            self.items
                .iter()
                .zip(&picked)
                .filter(|(_, &p)| p)
                .map(|(item, _)| item.clone())
                .collect()
        }
    }
}

mod stringgen {
    use super::test_runner::TestRunner;

    enum Atom {
        Lit(char),
        Class(Vec<(char, char)>),
        Printable,
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Generate a string matching the supported regex subset: literal
    /// characters, `[...]` classes with ranges, `\PC` (any printable),
    /// and `{n}` / `{m,n}` / `?` / `*` / `+` quantifiers.
    pub fn from_regex(pattern: &str, runner: &mut TestRunner) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let span = piece.max - piece.min + 1;
            let reps = piece.min + runner.usize_below(span);
            for _ in 0..reps {
                out.push(pick(&piece.atom, runner));
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0usize;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let (class, next) = parse_class(&chars, i + 1);
                    i = next;
                    Atom::Class(class)
                }
                '\\' => {
                    i += 1;
                    let c = chars
                        .get(i)
                        .copied()
                        .unwrap_or_else(|| panic!("dangling escape in regex `{pattern}`"));
                    i += 1;
                    if c == 'P' || c == 'p' {
                        // \PC / \pC — proptest shorthand for printable.
                        i += 1; // skip the category letter
                        Atom::Printable
                    } else {
                        Atom::Lit(c)
                    }
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            let (min, max, next) = parse_quant(&chars, i);
            i = next;
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Vec<(char, char)>, usize) {
        let mut ranges = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let lo = chars[i];
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                ranges.push((lo, chars[i + 2]));
                i += 3;
            } else {
                ranges.push((lo, lo));
                i += 1;
            }
        }
        (ranges, i + 1) // skip the `]`
    }

    fn parse_quant(chars: &[char], i: usize) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('?') => (0, 1, i + 1),
            Some('*') => (0, 8, i + 1),
            Some('+') => (1, 8, i + 1),
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                };
                (min, max, close + 1)
            }
            _ => (1, 1, i),
        }
    }

    fn pick(atom: &Atom, runner: &mut TestRunner) -> char {
        match atom {
            Atom::Lit(c) => *c,
            Atom::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                    .sum();
                let mut idx = runner.usize_below(total as usize) as u32;
                for (lo, hi) in ranges {
                    let size = *hi as u32 - *lo as u32 + 1;
                    if idx < size {
                        return char::from_u32(*lo as u32 + idx).expect("invalid char range");
                    }
                    idx -= size;
                }
                unreachable!()
            }
            Atom::Printable => {
                // Mostly printable ASCII, sometimes multi-byte text to
                // exercise unicode paths.
                const EXOTIC: [char; 8] = ['é', 'ß', 'λ', 'Ж', '中', '✓', 'ø', 'π'];
                if runner.next_u64().is_multiple_of(8) {
                    EXOTIC[runner.usize_below(EXOTIC.len())]
                } else {
                    char::from_u32(0x20 + runner.usize_below(0x5F) as u32).unwrap()
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestRunner;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias so tests can write `prop::collection::vec(..)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Uniform choice between strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn` runs the configured number of
/// generated cases ([`NUM_CASES`] unless `#![proptest_config(..)]`
/// overrides it).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { (($cfg).cases as usize) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::NUM_CASES) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cases:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __runner = $crate::test_runner::TestRunner::for_test(stringify!($name));
                let __cases: usize = $cases;
                for __case in 0..__cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __runner);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Skip the current generated case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert within a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::ValueTree;

    #[test]
    fn regex_subset_shapes() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..50 {
            let s = crate::strategy::Strategy::generate(&"[a-z]{1,8}", &mut runner);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = crate::strategy::Strategy::generate(&"[A-Za-z][A-Za-z0-9]{0,10}", &mut runner);
            assert!(t.chars().next().unwrap().is_ascii_alphabetic());

            let p = crate::strategy::Strategy::generate(&"\\PC{0,20}", &mut runner);
            assert!(p.chars().count() <= 20);
            assert!(p.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn oneof_and_trees() {
        let strat = prop_oneof![Just(1i64), 10i64..20, any::<i64>()];
        let mut runner = TestRunner::deterministic();
        for _ in 0..20 {
            let _ = strat.new_tree(&mut runner).unwrap().current();
        }
    }

    proptest! {
        /// The macro itself compiles and runs bodies.
        #[test]
        fn macro_smoke(x in 0usize..10, flag in any::<bool>(), s in "[a-c]{0,3}") {
            prop_assert!(x < 10);
            prop_assert_eq!(flag, flag, "flag={} s={}", flag, s);
            prop_assert_ne!(x, 10);
        }
    }
}
