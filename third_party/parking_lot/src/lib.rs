//! Workspace-local stand-in for the `parking_lot` crate, backed by
//! `std::sync` primitives. Only the API surface GridRM-rs uses is
//! provided: `Mutex`/`RwLock` whose `lock()`/`read()`/`write()` return
//! guards directly (poisoning is swallowed, matching parking_lot's
//! poison-free semantics).

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock (non-poisoning facade over [`sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock (non-poisoning facade over [`sync::RwLock`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
