//! Workspace-local stand-in for `serde_json`.
//!
//! Prints and parses the [`Value`] tree from the companion `serde`
//! stand-in as JSON text. Covers the subset GridRM-rs uses: `to_string`,
//! `to_string_pretty`, `to_vec`, `from_str`, `from_slice`, plus the
//! `Value`/`Map`/`Number` re-exports.

pub use serde::{Map, Number, Value};

use std::fmt;

/// Error produced when parsing or converting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.to_string())
    }
}

/// A specialized `Result` for JSON operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_string())
}

/// Serialize to human-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    serde::write_pretty_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserialize from JSON text.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: for<'de> serde::Deserialize<'de>>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: for<'de> serde::Deserialize<'de>>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        chars: s.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char> {
        let c = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<()> {
        let got = self.bump()?;
        if got != want {
            return Err(Error::new(format!(
                "expected `{want}` at offset {}, got `{got}`",
                self.pos - 1
            )));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some('n') => self.literal("null", Value::Null),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('"') => Ok(Value::String(self.string()?)),
            Some('[') => self.array(),
            Some('{') => self.object(),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{c}` at offset {}",
                self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                ']' => return Ok(Value::Array(items)),
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array, got `{c}`"
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect('{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                '}' => return Ok(Value::Object(map)),
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object, got `{c}`"
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'b' => out.push('\u{0008}'),
                    'f' => out.push('\u{000C}'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require a trailing \uXXXX.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    c => return Err(Error::new(format!("invalid escape `\\{c}`"))),
                },
                c if (c as u32) < 0x20 => {
                    return Err(Error::new("raw control character in string"))
                }
                c => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.bump()?;
            let digit = c
                .to_digit(16)
                .ok_or_else(|| Error::new(format!("invalid hex digit `{c}`")))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some('.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some('+' | '-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if text.is_empty() || text == "-" {
            return Err(Error::new("invalid number"));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
            // Integer literal outside 64-bit range: fall through to f64.
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let src = r#"{"a": [1, -2, 3.5, true, null], "b": "x\ny", "c": {"d": 0.5}}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["a"][0], 1i64);
        assert_eq!(v["a"][1], -2i64);
        assert_eq!(v["a"][2], 3.5f64);
        assert_eq!(v["a"][3], true);
        assert!(v["a"][4].is_null());
        assert_eq!(v["b"], "x\ny");
        assert_eq!(v["c"]["d"], 0.5f64);
        let printed = to_string(&v).unwrap();
        let back: Value = from_str(&printed).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_roundtrip_exact() {
        for f in [0.1, -1.75e-9, 3.0, 1.0e300, f64::MIN_POSITIVE] {
            let printed = to_string(&f).unwrap();
            let back: f64 = from_str(&printed).unwrap();
            assert_eq!(back, f, "{printed}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(v, "aé😀b");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("0x1").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_parses_back() {
        let v: Value = from_str(r#"{"a": [1, 2], "b": {}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }
}
