//! Workspace-local stand-in for `criterion`.
//!
//! Offers the same bench-definition surface (`criterion_group!`,
//! `benchmark_group`, `bench_with_input`, …) but executes each bench
//! routine a handful of times and reports wall-clock per iteration,
//! with none of criterion's sampling or statistics. This keeps
//! `cargo bench` (and `cargo test --benches`) building and running
//! offline; numbers are indicative only.

use std::fmt;
use std::time::{Duration, Instant};

/// Iterations per bench routine (smoke-run, not a statistical sample).
const ITERS: u32 = 10;

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level bench driver handed to every bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    /// Run a single stand-alone bench.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, f);
        self
    }
}

/// A named set of benches sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one bench in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Run one parameterised bench in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// A function-plus-parameter bench identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Units processed per iteration (ignored by this stand-in).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handle passed to each bench routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = ITERS;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    f(&mut b);
    let per_iter = b.elapsed / b.iters.max(1);
    println!("  {id}: {per_iter:?}/iter");
}

/// Collect bench functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(4));
        let mut count = 0u64;
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, n| {
            b.iter(|| {
                count += *n;
                black_box(count)
            })
        });
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(2 * 2)));
        assert!(count > 0);
    }
}
