//! Workspace-local stand-in for the `proc-macro2` crate (offline build),
//! exposing the API subset the workspace needs: parsing Rust source text
//! into a [`TokenStream`] of spanned [`TokenTree`]s, entirely outside a
//! procedural-macro context.
//!
//! The lexer is a faithful-enough standalone implementation of Rust's
//! lexical grammar for linting purposes: nested block comments, doc
//! comments (skipped — they carry no token-level signal the lints need),
//! raw/byte/C strings, char-vs-lifetime disambiguation, raw identifiers,
//! numeric literals with suffixes, and joint/alone punctuation spacing.
//! Every token records a [`Span`] with 1-based line and 0-based column,
//! mirroring `proc-macro2`'s `span-locations` feature.

use std::fmt;
use std::str::FromStr;

/// A region of source text: start and end line/column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    start: LineColumn,
    end: LineColumn,
}

/// A line/column pair: `line` is 1-based, `column` 0-based (as in
/// `proc-macro2` with `span-locations`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LineColumn {
    /// 1-based source line.
    pub line: usize,
    /// 0-based UTF-8 column.
    pub column: usize,
}

impl Span {
    /// A span pointing at nothing in particular (line 1, column 0).
    pub fn call_site() -> Span {
        Span {
            start: LineColumn { line: 1, column: 0 },
            end: LineColumn { line: 1, column: 0 },
        }
    }

    /// Where the token begins.
    pub fn start(&self) -> LineColumn {
        self.start
    }

    /// Where the token ends (exclusive).
    pub fn end(&self) -> LineColumn {
        self.end
    }
}

/// One leaf or group in the token-tree view of a source file.
#[derive(Debug, Clone)]
pub enum TokenTree {
    /// A delimited group: `(...)`, `[...]` or `{...}`.
    Group(Group),
    /// An identifier or keyword (keywords are not distinguished).
    Ident(Ident),
    /// A single punctuation character with spacing information.
    Punct(Punct),
    /// A literal: string, byte string, char, or number.
    Literal(Literal),
}

impl TokenTree {
    /// The token's source span.
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Group(g) => g.span(),
            TokenTree::Ident(i) => i.span(),
            TokenTree::Punct(p) => p.span(),
            TokenTree::Literal(l) => l.span(),
        }
    }
}

impl fmt::Display for TokenTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenTree::Group(g) => g.fmt(f),
            TokenTree::Ident(i) => i.fmt(f),
            TokenTree::Punct(p) => p.fmt(f),
            TokenTree::Literal(l) => l.fmt(f),
        }
    }
}

/// Which bracket pair delimits a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    /// `( ... )`
    Parenthesis,
    /// `{ ... }`
    Brace,
    /// `[ ... ]`
    Bracket,
    /// Invisible delimiters (never produced by the lexer; kept for API
    /// parity).
    None,
}

/// A delimited token sequence.
#[derive(Debug, Clone)]
pub struct Group {
    delimiter: Delimiter,
    stream: TokenStream,
    span: Span,
}

impl Group {
    /// Build a group (used by tests and token surgery).
    pub fn new(delimiter: Delimiter, stream: TokenStream) -> Group {
        Group {
            delimiter,
            stream,
            span: Span::call_site(),
        }
    }

    /// The delimiter kind.
    pub fn delimiter(&self) -> Delimiter {
        self.delimiter
    }

    /// The tokens between the delimiters.
    pub fn stream(&self) -> TokenStream {
        self.stream.clone()
    }

    /// Span of the opening delimiter through the closing one.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (open, close) = match self.delimiter {
            Delimiter::Parenthesis => ("(", ")"),
            Delimiter::Brace => ("{ ", " }"),
            Delimiter::Bracket => ("[", "]"),
            Delimiter::None => ("", ""),
        };
        write!(f, "{open}{}{close}", self.stream)
    }
}

/// An identifier (or keyword; raw identifiers keep their `r#` prefix
/// stripped, matching `proc-macro2`'s `Display`).
#[derive(Debug, Clone)]
pub struct Ident {
    text: String,
    span: Span,
}

impl Ident {
    /// Build an identifier at a given span.
    pub fn new(text: &str, span: Span) -> Ident {
        Ident {
            text: text.to_owned(),
            span,
        }
    }

    /// The token's source span.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl PartialEq<str> for Ident {
    fn eq(&self, other: &str) -> bool {
        self.text == other
    }
}

impl PartialEq<&str> for Ident {
    fn eq(&self, other: &&str) -> bool {
        self.text == *other
    }
}

/// Whether a punctuation character is immediately followed by another
/// punctuation character (`Joint`, e.g. the `-` in `->`) or not
/// (`Alone`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spacing {
    /// Followed directly by another punct: part of a multi-char operator.
    Joint,
    /// Free-standing.
    Alone,
}

/// One punctuation character.
#[derive(Debug, Clone)]
pub struct Punct {
    ch: char,
    spacing: Spacing,
    span: Span,
}

impl Punct {
    /// The character itself.
    pub fn as_char(&self) -> char {
        self.ch
    }

    /// Joint/alone spacing.
    pub fn spacing(&self) -> Spacing {
        self.spacing
    }

    /// The token's source span.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ch)
    }
}

/// A literal token, kept as its raw source text.
#[derive(Debug, Clone)]
pub struct Literal {
    text: String,
    span: Span,
}

impl Literal {
    /// The token's source span.
    pub fn span(&self) -> Span {
        self.span
    }

    /// If this is a plain or raw (byte/C) string literal, its unescaped
    /// value. Extension over upstream `proc-macro2` (which routes this
    /// through `syn::LitStr`); the stand-in offers it directly.
    pub fn str_value(&self) -> Option<String> {
        let t = self.text.as_str();
        let (rest, raw) = if let Some(r) = t.strip_prefix("br").or_else(|| t.strip_prefix("cr")) {
            (r, true)
        } else if let Some(r) = t.strip_prefix('r') {
            (r, true)
        } else if let Some(r) = t.strip_prefix('b').or_else(|| t.strip_prefix('c')) {
            (r, false)
        } else {
            (t, false)
        };
        if raw {
            let hashes = rest.len() - rest.trim_start_matches('#').len();
            let inner = rest.trim_start_matches('#').strip_prefix('"')?;
            let inner = inner.strip_suffix(&"#".repeat(hashes))?;
            let inner = inner.strip_suffix('"')?;
            Some(inner.to_owned())
        } else {
            let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
            Some(unescape(inner))
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('\'') => out.push('\''),
            Some('x') => {
                let hex: String = chars.by_ref().take(2).collect();
                if let Ok(v) = u8::from_str_radix(&hex, 16) {
                    out.push(v as char);
                }
            }
            Some('u') => {
                // \u{...}
                let mut hex = String::new();
                for c in chars.by_ref() {
                    if c == '{' {
                        continue;
                    }
                    if c == '}' {
                        break;
                    }
                    hex.push(c);
                }
                if let Ok(v) = u32::from_str_radix(&hex, 16) {
                    if let Some(c) = char::from_u32(v) {
                        out.push(c);
                    }
                }
            }
            Some('\n') => {
                // Line continuation: swallow leading whitespace.
                while let Some(&c) = chars.as_str().as_bytes().first() {
                    if c == b' ' || c == b'\t' {
                        chars.next();
                    } else {
                        break;
                    }
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// A sequence of token trees.
#[derive(Debug, Clone, Default)]
pub struct TokenStream {
    trees: Vec<TokenTree>,
}

impl TokenStream {
    /// An empty stream.
    pub fn new() -> TokenStream {
        TokenStream::default()
    }

    /// Whether the stream holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Number of top-level token trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Borrow the top-level trees (stand-in extension; upstream requires
    /// `into_iter`, but the lints walk streams repeatedly).
    pub fn trees(&self) -> &[TokenTree] {
        &self.trees
    }
}

impl FromIterator<TokenTree> for TokenStream {
    fn from_iter<I: IntoIterator<Item = TokenTree>>(iter: I) -> TokenStream {
        TokenStream {
            trees: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for TokenStream {
    type Item = TokenTree;
    type IntoIter = std::vec::IntoIter<TokenTree>;
    fn into_iter(self) -> Self::IntoIter {
        self.trees.into_iter()
    }
}

impl fmt::Display for TokenStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for t in &self.trees {
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            t.fmt(f)?;
        }
        Ok(())
    }
}

/// Lexing failure: what went wrong and where.
#[derive(Debug, Clone)]
pub struct LexError {
    msg: String,
    /// Where the offending text begins.
    pub at: LineColumn,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}:{}", self.msg, self.at.line, self.at.column + 1)
    }
}

impl std::error::Error for LexError {}

impl FromStr for TokenStream {
    type Err = LexError;

    fn from_str(src: &str) -> Result<TokenStream, LexError> {
        Lexer::new(src).lex_all()
    }
}

// ---------------------------------------------------------------------------
// The lexer
// ---------------------------------------------------------------------------

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: usize,
    col: usize,
}

const PUNCT_CHARS: &[u8] = b";,.@#~?:$=!<>-&|+*/^%'";

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Lexer<'a> {
        let mut lx = Lexer {
            src: text.as_bytes(),
            text,
            pos: 0,
            line: 1,
            col: 0,
        };
        // A shebang line (`#!...` not followed by `[`) is not Rust tokens.
        if text.starts_with("#!") && !text[2..].trim_start().starts_with('[') {
            while lx.pos < lx.src.len() && lx.src[lx.pos] != b'\n' {
                lx.pos += 1;
            }
        }
        lx
    }

    fn here(&self) -> LineColumn {
        LineColumn {
            line: self.line,
            column: self.col,
        }
    }

    fn err(&self, msg: &str) -> LexError {
        LexError {
            msg: msg.to_owned(),
            at: self.here(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 0;
        } else if b & 0xC0 != 0x80 {
            // Count UTF-8 scalar starts only, so columns match char offsets.
            self.col += 1;
        }
        Some(b)
    }

    fn lex_all(&mut self) -> Result<TokenStream, LexError> {
        let (stream, closer) = self.lex_group_body(None)?;
        if closer.is_some() {
            return Err(self.err("unbalanced closing delimiter"));
        }
        Ok(stream)
    }

    /// Lex tokens until the matching close delimiter for `open` (or EOF
    /// when `open` is `None`). Returns the stream plus the closer seen.
    fn lex_group_body(&mut self, open: Option<u8>) -> Result<(TokenStream, Option<u8>), LexError> {
        let mut trees: Vec<TokenTree> = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.here();
            let Some(b) = self.peek() else {
                if open.is_some() {
                    return Err(self.err("unterminated group"));
                }
                return Ok((TokenStream { trees }, None));
            };
            match b {
                b'(' | b'[' | b'{' => {
                    self.bump();
                    let (inner, closer) = self.lex_group_body(Some(b))?;
                    let want = match b {
                        b'(' => b')',
                        b'[' => b']',
                        _ => b'}',
                    };
                    if closer != Some(want) {
                        return Err(self.err("mismatched delimiter"));
                    }
                    let delim = match b {
                        b'(' => Delimiter::Parenthesis,
                        b'[' => Delimiter::Bracket,
                        _ => Delimiter::Brace,
                    };
                    trees.push(TokenTree::Group(Group {
                        delimiter: delim,
                        stream: inner,
                        span: Span {
                            start,
                            end: self.here(),
                        },
                    }));
                }
                b')' | b']' | b'}' => {
                    if open.is_none() {
                        return Err(self.err("unbalanced closing delimiter"));
                    }
                    self.bump();
                    return Ok((TokenStream { trees }, Some(b)));
                }
                b'"' => {
                    let s = self.pos;
                    trees.push(self.lex_string(start, s)?);
                }
                b'\'' => trees.push(self.lex_char_or_lifetime(start)?),
                b'0'..=b'9' => trees.push(self.lex_number(start)),
                _ if ident_start(b) => {
                    // May be a prefixed literal: r"", r#"", b"", b'', br"",
                    // c"", cr"", or a raw identifier r#name.
                    if let Some(tok) = self.try_prefixed_literal(start)? {
                        trees.push(tok);
                    } else {
                        trees.push(self.lex_ident(start));
                    }
                }
                _ if PUNCT_CHARS.contains(&b) => {
                    self.bump();
                    let joint =
                        matches!(self.peek(), Some(n) if PUNCT_CHARS.contains(&n) && n != b'\'');
                    trees.push(TokenTree::Punct(Punct {
                        ch: b as char,
                        spacing: if joint {
                            Spacing::Joint
                        } else {
                            Spacing::Alone
                        },
                        span: Span {
                            start,
                            end: self.here(),
                        },
                    }));
                }
                _ => {
                    // Non-ASCII identifier or stray byte: consume the full
                    // UTF-8 scalar(s) as an ident-ish token to stay robust.
                    let s = self.pos;
                    while let Some(b) = self.peek() {
                        if !b.is_ascii() || ident_continue(b) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if self.pos == s {
                        self.bump(); // ensure progress
                    }
                    trees.push(TokenTree::Ident(Ident {
                        text: self.text[s..self.pos].to_owned(),
                        span: Span {
                            start,
                            end: self.here(),
                        },
                    }));
                }
            }
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b) if (b as char).is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'/'), Some(b'*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_ident(&mut self, start: LineColumn) -> TokenTree {
        let s = self.pos;
        while let Some(b) = self.peek() {
            if ident_continue(b) || !b.is_ascii() {
                self.bump();
            } else {
                break;
            }
        }
        TokenTree::Ident(Ident {
            text: self.text[s..self.pos].to_owned(),
            span: Span {
                start,
                end: self.here(),
            },
        })
    }

    /// Handle `r`/`b`/`c` prefixed string-ish literals and raw idents.
    /// Returns `None` when the upcoming token is a plain identifier.
    fn try_prefixed_literal(&mut self, start: LineColumn) -> Result<Option<TokenTree>, LexError> {
        let lit_pos = self.pos;
        let rest = &self.src[self.pos..];
        let prefix_len = match rest {
            [b'r', b'#', n, ..] if ident_start(*n) => {
                // r#ident — raw identifier, lex as ident with prefix.
                self.bump();
                self.bump();
                let TokenTree::Ident(id) = self.lex_ident(start) else {
                    unreachable!()
                };
                return Ok(Some(TokenTree::Ident(Ident {
                    text: id.text,
                    span: Span {
                        start,
                        end: self.here(),
                    },
                })));
            }
            [b'b', b'\'', ..] => {
                self.bump();
                return self.lex_char_or_lifetime(start).map(Some);
            }
            [b'r', b'"', ..] | [b'r', b'#', ..] => 1,
            [b'b', b'"', ..] | [b'c', b'"', ..] => 1,
            [b'b', b'r', t, ..] | [b'c', b'r', t, ..] if *t == b'"' || *t == b'#' => 2,
            _ => return Ok(None),
        };
        let raw = rest[prefix_len - 1] == b'r';
        for _ in 0..prefix_len {
            self.bump();
        }
        if raw {
            self.lex_raw_string(start, lit_pos).map(Some)
        } else {
            self.lex_string(start, lit_pos).map(Some)
        }
    }

    /// Lex a `"..."` (cooked) string; `self.pos` is at the opening quote
    /// and `s` is the byte offset where the literal (incl. any `b`/`c`
    /// prefix) begins.
    fn lex_string(&mut self, start: LineColumn, s: usize) -> Result<TokenTree, LexError> {
        self.bump(); // opening quote
        loop {
            match self.peek() {
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    self.bump();
                }
                None => return Err(self.err("unterminated string literal")),
            }
        }
        Ok(TokenTree::Literal(Literal {
            text: self.text[s..self.pos].to_owned(),
            span: Span {
                start,
                end: self.here(),
            },
        }))
    }

    /// Lex a raw string starting at `#`* `"`; the `r`/`br`/`cr` prefix is
    /// already consumed and `s` is the byte offset where it began.
    fn lex_raw_string(&mut self, start: LineColumn, s: usize) -> Result<TokenTree, LexError> {
        let mut hashes = 0usize;
        while self.peek() == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek() != Some(b'"') {
            return Err(self.err("malformed raw string"));
        }
        self.bump();
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        loop {
            if self.pos + closer.len() <= self.src.len()
                && &self.src[self.pos..self.pos + closer.len()] == closer.as_slice()
            {
                for _ in 0..closer.len() {
                    self.bump();
                }
                break;
            }
            if self.bump().is_none() {
                return Err(self.err("unterminated raw string literal"));
            }
        }
        Ok(TokenTree::Literal(Literal {
            text: self.text[s..self.pos].to_owned(),
            span: Span {
                start,
                end: self.here(),
            },
        }))
    }

    /// At a `'`: disambiguate char literal from lifetime.
    fn lex_char_or_lifetime(&mut self, start: LineColumn) -> Result<TokenTree, LexError> {
        let s = self.pos;
        self.bump(); // the quote
        match self.peek() {
            Some(b'\\') => {
                // Escaped char literal.
                self.bump();
                self.bump();
                // \u{...} and \x.. escapes: eat through the closing quote.
                while let Some(b) = self.peek() {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                Ok(TokenTree::Literal(Literal {
                    text: self.text[s..self.pos].to_owned(),
                    span: Span {
                        start,
                        end: self.here(),
                    },
                }))
            }
            Some(b) if ident_start(b) => {
                // Could be 'a' (char) or 'a / 'static (lifetime): a char
                // literal has exactly one ident char then a quote.
                let after = self.src.get(self.pos + 1).copied();
                if after == Some(b'\'') {
                    self.bump();
                    self.bump();
                    Ok(TokenTree::Literal(Literal {
                        text: self.text[s..self.pos].to_owned(),
                        span: Span {
                            start,
                            end: self.here(),
                        },
                    }))
                } else {
                    // Lifetime: quote punct (joint) + ident, like upstream.
                    let _ = self.lex_ident(self.here());
                    Ok(TokenTree::Punct(Punct {
                        ch: '\'',
                        spacing: Spacing::Joint,
                        span: Span {
                            start,
                            end: self.here(),
                        },
                    }))
                }
            }
            Some(_) => {
                // Non-ident char like '3' or '%' (or UTF-8 scalar).
                self.bump();
                while let Some(b) = self.peek() {
                    if b & 0xC0 == 0x80 {
                        self.bump(); // continuation bytes of a scalar
                    } else {
                        break;
                    }
                }
                if self.peek() == Some(b'\'') {
                    self.bump();
                }
                Ok(TokenTree::Literal(Literal {
                    text: self.text[s..self.pos].to_owned(),
                    span: Span {
                        start,
                        end: self.here(),
                    },
                }))
            }
            None => Err(self.err("unterminated char literal")),
        }
    }

    fn lex_number(&mut self, start: LineColumn) -> TokenTree {
        let s = self.pos;
        // Radix prefix.
        if self.peek() == Some(b'0')
            && matches!(self.peek2(), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.bump();
            self.bump();
            while let Some(b) = self.peek() {
                if b.is_ascii_alphanumeric() || b == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while let Some(b) = self.peek() {
                if b.is_ascii_digit() || b == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            // Fractional part: a dot followed by a digit (so `1..x` and
            // `1.method()` keep the dot as punctuation).
            if self.peek() == Some(b'.') && matches!(self.peek2(), Some(d) if d.is_ascii_digit()) {
                self.bump();
                while let Some(b) = self.peek() {
                    if b.is_ascii_digit() || b == b'_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            // Exponent.
            if matches!(self.peek(), Some(b'e' | b'E'))
                && matches!(self.peek2(), Some(d) if d.is_ascii_digit() || d == b'+' || d == b'-')
            {
                self.bump();
                self.bump();
                while let Some(b) = self.peek() {
                    if b.is_ascii_digit() || b == b'_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (u8, f64, usize, ...).
        while let Some(b) = self.peek() {
            if ident_continue(b) {
                self.bump();
            } else {
                break;
            }
        }
        TokenTree::Literal(Literal {
            text: self.text[s..self.pos].to_owned(),
            span: Span {
                start,
                end: self.here(),
            },
        })
    }
}

fn ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> TokenStream {
        src.parse().expect("lexes")
    }

    fn kinds(ts: &TokenStream) -> String {
        ts.trees()
            .iter()
            .map(|t| match t {
                TokenTree::Group(g) => match g.delimiter() {
                    Delimiter::Parenthesis => "(".to_owned(),
                    Delimiter::Brace => "{".to_owned(),
                    Delimiter::Bracket => "[".to_owned(),
                    Delimiter::None => "?".to_owned(),
                },
                TokenTree::Ident(i) => format!("i:{i}"),
                TokenTree::Punct(p) => format!("p:{}", p.as_char()),
                TokenTree::Literal(l) => format!("l:{l}"),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    #[test]
    fn basic_tokens() {
        let ts = lex("fn main() { let x = 1.5e3; }");
        assert_eq!(kinds(&ts), "i:fn i:main ( {");
    }

    #[test]
    fn comments_are_skipped_even_nested() {
        let ts = lex("a /* x /* y */ z */ b // tail\nc");
        assert_eq!(kinds(&ts), "i:a i:b i:c");
    }

    #[test]
    fn strings_raw_strings_and_escapes() {
        let ts = lex(r####"("plain \" quote", r#"raw "inner""#, b"bytes")"####);
        let TokenTree::Group(g) = &ts.trees()[0] else {
            panic!("expected group")
        };
        let lits: Vec<String> = g
            .stream()
            .trees()
            .iter()
            .filter_map(|t| match t {
                TokenTree::Literal(l) => l.str_value(),
                _ => None,
            })
            .collect();
        assert_eq!(lits, [r#"plain " quote"#, r#"raw "inner""#, "bytes"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ts = lex("<'a> 'x' '\\n' 'static");
        let k = kinds(&ts);
        assert!(k.contains("p:'"), "lifetime lexes as punct: {k}");
        assert!(k.contains("l:'x'"), "char literal kept: {k}");
        assert!(k.contains("l:'\\n'"), "escaped char kept: {k}");
    }

    #[test]
    fn spans_track_lines() {
        let ts = lex("a\n  b");
        let spans: Vec<(usize, usize)> = ts
            .trees()
            .iter()
            .map(|t| (t.span().start().line, t.span().start().column))
            .collect();
        assert_eq!(spans, [(1, 0), (2, 2)]);
    }

    #[test]
    fn number_then_range_keeps_dots() {
        let ts = lex("0..10");
        assert_eq!(kinds(&ts), "l:0 p:. p:. l:10");
    }

    #[test]
    fn unbalanced_is_an_error() {
        assert!("fn f( {".parse::<TokenStream>().is_err());
        assert!("}".parse::<TokenStream>().is_err());
    }

    #[test]
    fn raw_identifier() {
        let ts = lex("r#type");
        assert_eq!(kinds(&ts), "i:type");
    }
}
