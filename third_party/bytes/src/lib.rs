//! Workspace-local stand-in for the `bytes` crate: `Bytes`/`BytesMut`
//! plus the `Buf`/`BufMut` traits, covering the cursor-style reads and
//! appends the SNMP codec uses.

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// True when at least one byte is left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume and return one byte.
    ///
    /// # Panics
    /// Panics when no byte remains.
    fn get_u8(&mut self) -> u8;
}

/// Write-side append operations.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);

    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Buffer owning a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Split off and return the next `n` unread bytes, advancing the
    /// cursor past them.
    ///
    /// # Panics
    /// Panics when fewer than `n` bytes remain.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.remaining(), "split_to out of range");
        let out = Bytes {
            data: self.data[self.pos..self.pos + n].to_vec(),
            pos: 0,
        };
        self.pos += n;
        out
    }

    /// The unread bytes as a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// The unread bytes as a slice.
    pub fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 past end of buffer");
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// The written bytes as a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut w = BytesMut::with_capacity(8);
        w.put_u8(7);
        w.put_slice(b"abc");
        assert_eq!(w.to_vec(), vec![7, b'a', b'b', b'c']);

        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.remaining(), 4);
        assert_eq!(r.get_u8(), 7);
        let s = r.split_to(2);
        assert_eq!(s.to_vec(), b"ab");
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.get_u8(), b'c');
        assert!(!r.has_remaining());
    }
}
