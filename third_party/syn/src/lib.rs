//! Workspace-local stand-in for the `syn` crate (offline build),
//! exposing the API subset the workspace's static-analysis tooling
//! needs: [`parse_file`] turns Rust source into a [`File`] of items —
//! functions, impl blocks, traits and modules — with every function
//! body kept as a `proc-macro2` [`TokenStream`] for token-level
//! inspection.
//!
//! The parser is deliberately lenient: constructs it does not model
//! (structs, enums, uses, macros, consts, ...) are preserved as
//! [`Item::Verbatim`] so a lint pass can still walk their tokens, and
//! unknown syntax never aborts parsing — only lexical errors (from the
//! `proc-macro2` stand-in) are fatal, mirroring how `syn::parse_file`
//! fails on broken source.

use proc_macro2::{Delimiter, LineColumn, Span, TokenStream, TokenTree};
use std::fmt;

/// Parse failure (lexical, or a file that is not valid UTF-8 Rust).
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    at: Option<LineColumn>,
}

impl Error {
    /// Line/column the error points at, when known.
    pub fn location(&self) -> Option<LineColumn> {
        self.at
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Result alias matching upstream `syn`.
pub type Result<T> = std::result::Result<T, Error>;

/// A parsed source file.
#[derive(Debug, Clone)]
pub struct File {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One top-level (or module-nested) item.
#[derive(Debug, Clone)]
pub enum Item {
    /// A free function.
    Fn(ItemFn),
    /// An `impl` block (inherent or trait).
    Impl(ItemImpl),
    /// A `mod name { ... }` or `mod name;`.
    Mod(ItemMod),
    /// A `trait Name { ... }`.
    Trait(ItemTrait),
    /// Anything else, kept as raw tokens.
    Verbatim(TokenStream),
}

/// An outer attribute `#[...]` (inner `#![...]` attributes are parsed
/// but not attached).
#[derive(Debug, Clone)]
pub struct Attribute {
    /// The tokens between the brackets, e.g. `cfg(test)`.
    pub tokens: TokenStream,
    /// Span of the opening `#`.
    pub span: Span,
}

impl Attribute {
    /// The attribute's leading path, e.g. `cfg`, `test`, `serde`.
    pub fn path(&self) -> String {
        match self.tokens.trees().first() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            _ => String::new(),
        }
    }

    /// True for `#[cfg(test)]` (possibly with extra predicates that
    /// include `test`).
    pub fn is_cfg_test(&self) -> bool {
        if self.path() != "cfg" {
            return false;
        }
        fn mentions_test(ts: &TokenStream) -> bool {
            ts.trees().iter().any(|t| match t {
                TokenTree::Ident(i) => *i == "test",
                TokenTree::Group(g) => mentions_test(&g.stream()),
                _ => false,
            })
        }
        mentions_test(&self.tokens)
    }
}

/// A function signature (subset: just the name; the full token text of
/// the signature is kept for diagnostics).
#[derive(Debug, Clone)]
pub struct Signature {
    /// The function's name.
    pub ident: String,
}

/// A function with its body tokens, used for both free functions and
/// methods inside `impl`/`trait` blocks.
#[derive(Debug, Clone)]
pub struct ItemFn {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Name (and, in spirit, the rest of the signature).
    pub sig: Signature,
    /// Body tokens; empty for signature-only trait methods.
    pub block: TokenStream,
    /// Whether a `{ ... }` body was present.
    pub has_body: bool,
    /// Span of the `fn` keyword.
    pub span: Span,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ItemImpl {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Rendered trait path for `impl Trait for Type` (e.g.
    /// `gridrm_dbc::Driver`); `None` for inherent impls.
    pub trait_path: Option<String>,
    /// Rendered self type (e.g. `GangliaDriver`).
    pub self_ty: String,
    /// Functions defined in the block (non-fn members are dropped).
    pub fns: Vec<ItemFn>,
    /// Span of the `impl` keyword.
    pub span: Span,
}

impl ItemImpl {
    /// Last path segment of the implemented trait, generics stripped:
    /// `impl gridrm_dbc::Driver for X` → `Some("Driver")`.
    pub fn trait_name(&self) -> Option<&str> {
        let path = self.trait_path.as_deref()?;
        let last = path.rsplit("::").next().unwrap_or(path);
        Some(last.split('<').next().unwrap_or(last).trim())
    }
}

/// A module.
#[derive(Debug, Clone)]
pub struct ItemMod {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Module name.
    pub ident: String,
    /// Inline body items; `None` for `mod name;`.
    pub content: Option<Vec<Item>>,
    /// Span of the `mod` keyword.
    pub span: Span,
}

/// A trait definition (subset: its methods).
#[derive(Debug, Clone)]
pub struct ItemTrait {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// Trait name.
    pub ident: String,
    /// Methods; `has_body` distinguishes defaulted methods.
    pub fns: Vec<ItemFn>,
    /// Span of the `trait` keyword.
    pub span: Span,
}

/// Parse a whole source file.
pub fn parse_file(src: &str) -> Result<File> {
    let stream: TokenStream = src.parse().map_err(|e: proc_macro2::LexError| Error {
        message: e.to_string(),
        at: Some(e.at),
    })?;
    let trees: Vec<TokenTree> = stream.into_iter().collect();
    Ok(File {
        items: parse_items(&trees),
    })
}

// ---------------------------------------------------------------------------
// Item-level recursive-descent over token trees
// ---------------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if *i == s)
}

fn group_with(t: &TokenTree, d: Delimiter) -> Option<&proc_macro2::Group> {
    match t {
        TokenTree::Group(g) if g.delimiter() == d => Some(g),
        _ => None,
    }
}

/// Render tokens tightly enough that paths read naturally
/// (`a::b::C<D>`); idents/literals get a separating space.
fn render(tokens: &[TokenTree]) -> String {
    let mut out = String::new();
    let mut prev_wordy = false;
    for t in tokens {
        let wordy = matches!(t, TokenTree::Ident(_) | TokenTree::Literal(_));
        if wordy && prev_wordy {
            out.push(' ');
        }
        match t {
            TokenTree::Group(g) => out.push_str(&g.to_string()),
            other => out.push_str(&other.to_string()),
        }
        prev_wordy = wordy;
    }
    out
}

struct Cursor<'a> {
    toks: &'a [TokenTree],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a TokenTree> {
        self.toks.get(self.i)
    }

    fn peek_at(&self, n: usize) -> Option<&'a TokenTree> {
        self.toks.get(self.i + n)
    }

    fn bump(&mut self) -> Option<&'a TokenTree> {
        let t = self.toks.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    /// Collect outer attributes; inner attributes are consumed and
    /// dropped.
    fn attrs(&mut self) -> Vec<Attribute> {
        let mut attrs = Vec::new();
        while let Some(t) = self.peek() {
            if !is_punct(t, '#') {
                break;
            }
            let span = t.span();
            match self.peek_at(1) {
                Some(inner) if is_punct(inner, '!') => {
                    if let Some(g) = self
                        .peek_at(2)
                        .and_then(|t| group_with(t, Delimiter::Bracket))
                    {
                        let _ = g;
                        self.i += 3; // #![...] — inner attribute, dropped
                    } else {
                        break;
                    }
                }
                Some(t2) => {
                    if let Some(g) = group_with(t2, Delimiter::Bracket) {
                        attrs.push(Attribute {
                            tokens: g.stream(),
                            span,
                        });
                        self.i += 2;
                    } else {
                        break;
                    }
                }
                None => break,
            }
        }
        attrs
    }

    /// Consume visibility / `const` / `unsafe` / `async` / `extern "C"` /
    /// `default` modifiers that may precede an item keyword. Returns
    /// `false` if a `const`/`static`-style *item* was detected instead
    /// (cursor left on its keyword).
    fn modifiers(&mut self) -> bool {
        loop {
            let Some(t) = self.peek() else {
                return true;
            };
            let TokenTree::Ident(id) = t else {
                return true;
            };
            let word = id.to_string();
            match word.as_str() {
                "pub" => {
                    self.i += 1;
                    if let Some(t) = self.peek() {
                        if group_with(t, Delimiter::Parenthesis).is_some() {
                            self.i += 1; // pub(crate) etc.
                        }
                    }
                }
                "unsafe" | "async" | "default" => {
                    self.i += 1;
                }
                "extern" => {
                    self.i += 1;
                    if let Some(TokenTree::Literal(_)) = self.peek() {
                        self.i += 1; // the ABI string
                    }
                }
                "const" => {
                    // `const fn` / `const unsafe fn` are modifiers; a
                    // `const NAME: ...` is an item.
                    match self.peek_at(1) {
                        Some(t)
                            if is_ident(t, "fn")
                                || is_ident(t, "unsafe")
                                || is_ident(t, "async")
                                || is_ident(t, "extern") =>
                        {
                            self.i += 1;
                        }
                        _ => return false,
                    }
                }
                _ => return true,
            }
        }
    }

    /// Skip a balanced `<...>` generics run if the cursor is on `<`.
    fn skip_generics(&mut self) {
        if !matches!(self.peek(), Some(t) if is_punct(t, '<')) {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        // A `->` arrow inside Fn(...) bounds: the `-` was
                        // skipped as an ordinary token, so only count `>`
                        // when the previous token was not `-`.
                        let prev_minus = self.i > 0 && is_punct(&self.toks[self.i - 1], '-');
                        if !prev_minus {
                            depth -= 1;
                        }
                    }
                    _ => {}
                }
            }
            self.i += 1;
            if depth == 0 {
                break;
            }
        }
    }

    /// Skip forward to just past the next top-level `;`, or consume a
    /// trailing brace group (whichever comes first). Used for items the
    /// parser does not model.
    fn skip_item_tail(&mut self) {
        while let Some(t) = self.bump() {
            if is_punct(t, ';') {
                return;
            }
            if group_with(t, Delimiter::Brace).is_some() {
                return;
            }
        }
    }
}

fn parse_items(toks: &[TokenTree]) -> Vec<Item> {
    let mut cur = Cursor { toks, i: 0 };
    let mut items = Vec::new();
    while cur.peek().is_some() {
        let before = cur.i;
        let attrs = cur.attrs();
        if !cur.modifiers() {
            // const/static item: keep tokens, skip to `;`.
            let start = cur.i;
            cur.skip_item_tail();
            items.push(Item::Verbatim(toks[start..cur.i].iter().cloned().collect()));
            continue;
        }
        let Some(t) = cur.peek() else { break };
        let span = t.span();
        if is_ident(t, "fn") {
            cur.i += 1;
            if let Some(f) = parse_fn_after_keyword(&mut cur, attrs, span) {
                items.push(Item::Fn(f));
            }
        } else if is_ident(t, "impl") {
            cur.i += 1;
            items.push(Item::Impl(parse_impl(&mut cur, attrs, span)));
        } else if is_ident(t, "mod") {
            cur.i += 1;
            let name = match cur.peek() {
                Some(TokenTree::Ident(i)) => {
                    let n = i.to_string();
                    cur.i += 1;
                    n
                }
                _ => String::new(),
            };
            let content = match cur.peek() {
                Some(t) if group_with(t, Delimiter::Brace).is_some() => {
                    let g = group_with(t, Delimiter::Brace).map(|g| g.stream());
                    cur.i += 1;
                    g.map(|s| {
                        let inner: Vec<TokenTree> = s.into_iter().collect();
                        parse_items(&inner)
                    })
                }
                _ => {
                    cur.skip_item_tail();
                    None
                }
            };
            items.push(Item::Mod(ItemMod {
                attrs,
                ident: name,
                content,
                span,
            }));
        } else if is_ident(t, "trait") {
            cur.i += 1;
            let name = match cur.peek() {
                Some(TokenTree::Ident(i)) => {
                    let n = i.to_string();
                    cur.i += 1;
                    n
                }
                _ => String::new(),
            };
            // Supertraits / generics / where clause up to the body.
            let mut body = None;
            while let Some(t) = cur.bump() {
                if let Some(g) = group_with(t, Delimiter::Brace) {
                    body = Some(g.stream());
                    break;
                }
                if is_punct(t, ';') {
                    break;
                }
            }
            let fns = body
                .map(|s| {
                    let inner: Vec<TokenTree> = s.into_iter().collect();
                    parse_member_fns(&inner)
                })
                .unwrap_or_default();
            items.push(Item::Trait(ItemTrait {
                attrs,
                ident: name,
                fns,
                span,
            }));
        } else {
            // struct / enum / use / type / macro / stray tokens: verbatim.
            let start = cur.i;
            cur.skip_item_tail();
            items.push(Item::Verbatim(toks[start..cur.i].iter().cloned().collect()));
        }
        if cur.i == before {
            cur.i += 1; // guarantee progress on pathological input
        }
    }
    items
}

/// Parse `name <generics>? (args) -> ret? where...? { body }` with the
/// cursor just past the `fn` keyword.
fn parse_fn_after_keyword(
    cur: &mut Cursor<'_>,
    attrs: Vec<Attribute>,
    span: Span,
) -> Option<ItemFn> {
    let name = match cur.peek() {
        Some(TokenTree::Ident(i)) => {
            let n = i.to_string();
            cur.i += 1;
            n
        }
        _ => return None,
    };
    // Everything up to the body brace (or `;` for signature-only).
    loop {
        match cur.peek() {
            Some(t) if is_punct(t, '<') => cur.skip_generics(),
            Some(t) if group_with(t, Delimiter::Brace).is_some() => {
                let block = group_with(t, Delimiter::Brace)
                    .map(|g| g.stream())
                    .unwrap_or_default();
                cur.i += 1;
                return Some(ItemFn {
                    attrs,
                    sig: Signature { ident: name },
                    block,
                    has_body: true,
                    span,
                });
            }
            Some(t) if is_punct(t, ';') => {
                cur.i += 1;
                return Some(ItemFn {
                    attrs,
                    sig: Signature { ident: name },
                    block: TokenStream::new(),
                    has_body: false,
                    span,
                });
            }
            Some(_) => {
                cur.i += 1;
            }
            None => return None,
        }
    }
}

fn parse_impl(cur: &mut Cursor<'_>, attrs: Vec<Attribute>, span: Span) -> ItemImpl {
    cur.skip_generics();
    // Collect type tokens until the body, splitting on a top-level `for`
    // (excluding `for<'a>` higher-ranked binders).
    let mut head: Vec<TokenTree> = Vec::new();
    let mut for_at: Option<usize> = None;
    let mut where_at: Option<usize> = None;
    let mut body = None;
    let mut angle_depth = 0i32;
    while let Some(t) = cur.peek() {
        if let Some(g) = group_with(t, Delimiter::Brace) {
            body = Some(g.stream());
            cur.i += 1;
            break;
        }
        if is_punct(t, ';') {
            cur.i += 1;
            break;
        }
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => {
                    let prev_minus = head.last().map(|t| is_punct(t, '-')).unwrap_or(false);
                    if !prev_minus {
                        angle_depth -= 1;
                    }
                }
                _ => {}
            }
        }
        if angle_depth == 0 && is_ident(t, "for") {
            let hrtb = matches!(cur.peek_at(1), Some(n) if is_punct(n, '<'));
            if !hrtb && for_at.is_none() {
                for_at = Some(head.len());
            }
        }
        if angle_depth == 0 && is_ident(t, "where") && where_at.is_none() {
            where_at = Some(head.len());
        }
        head.push(t.clone());
        cur.i += 1;
    }
    let clause_end = where_at.unwrap_or(head.len());
    let (trait_path, self_ty) = match for_at {
        Some(at) if at < clause_end => {
            (Some(render(&head[..at])), render(&head[at + 1..clause_end]))
        }
        _ => (None, render(&head[..clause_end])),
    };
    let fns = body
        .map(|s| {
            let inner: Vec<TokenTree> = s.into_iter().collect();
            parse_member_fns(&inner)
        })
        .unwrap_or_default();
    ItemImpl {
        attrs,
        trait_path,
        self_ty,
        fns,
        span,
    }
}

/// Parse the functions out of an impl/trait body, skipping consts,
/// associated types and macros.
fn parse_member_fns(toks: &[TokenTree]) -> Vec<ItemFn> {
    let mut cur = Cursor { toks, i: 0 };
    let mut fns = Vec::new();
    while cur.peek().is_some() {
        let before = cur.i;
        let attrs = cur.attrs();
        if !cur.modifiers() {
            cur.skip_item_tail(); // associated const
            continue;
        }
        match cur.peek() {
            Some(t) if is_ident(t, "fn") => {
                let span = t.span();
                cur.i += 1;
                if let Some(f) = parse_fn_after_keyword(&mut cur, attrs, span) {
                    fns.push(f);
                }
            }
            Some(t) if is_ident(t, "type") => {
                cur.skip_item_tail();
                let _ = t;
            }
            Some(_) => {
                cur.skip_item_tail();
            }
            None => break,
        }
        if cur.i == before {
            cur.i += 1;
        }
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(items: &[Item]) -> Vec<String> {
        items
            .iter()
            .map(|i| match i {
                Item::Fn(f) => format!("fn:{}", f.sig.ident),
                Item::Impl(im) => format!(
                    "impl:{}:{}",
                    im.trait_name().unwrap_or("-"),
                    im.self_ty.split('<').next().unwrap_or("").trim()
                ),
                Item::Mod(m) => format!("mod:{}", m.ident),
                Item::Trait(t) => format!("trait:{}", t.ident),
                Item::Verbatim(_) => "verbatim".to_owned(),
            })
            .collect()
    }

    #[test]
    fn items_and_impls() {
        let src = r#"
            use std::sync::Arc;
            pub struct Foo { x: u32 }
            impl Foo { fn new() -> Foo { Foo { x: 0 } } }
            impl gridrm_dbc::Driver for Foo {
                fn accepts_url(&self, url: &JdbcUrl) -> bool { true }
            }
            pub fn free<T: Into<String>>(t: T) -> String { t.into() }
            mod inner { pub fn helper() {} }
        "#;
        let file = parse_file(src).unwrap();
        assert_eq!(
            names(&file.items),
            [
                "verbatim",
                "verbatim",
                "impl:-:Foo",
                "impl:Driver:Foo",
                "fn:free",
                "mod:inner"
            ]
        );
        let Item::Impl(im) = &file.items[3] else {
            panic!()
        };
        assert_eq!(im.fns.len(), 1);
        assert_eq!(im.fns[0].sig.ident, "accepts_url");
        let Item::Mod(m) = &file.items[5] else {
            panic!()
        };
        assert_eq!(names(m.content.as_ref().unwrap()), ["fn:helper"]);
    }

    #[test]
    fn cfg_test_attribute_detection() {
        let src = r#"
            #[cfg(test)]
            mod tests { #[test] fn t() { x.unwrap(); } }
        "#;
        let file = parse_file(src).unwrap();
        let Item::Mod(m) = &file.items[0] else {
            panic!()
        };
        assert!(m.attrs.iter().any(|a| a.is_cfg_test()));
        let Item::Fn(f) = &m.content.as_ref().unwrap()[0] else {
            panic!()
        };
        assert_eq!(f.attrs[0].path(), "test");
    }

    #[test]
    fn generic_impl_with_where_clause() {
        let src =
            "impl<K: Eq + Hash, V: Clone> SingleFlight<K, V> where K: Send { fn go(&self) {} }";
        let file = parse_file(src).unwrap();
        let Item::Impl(im) = &file.items[0] else {
            panic!()
        };
        assert!(im.trait_path.is_none());
        assert!(im.self_ty.starts_with("SingleFlight"));
        assert_eq!(im.fns[0].sig.ident, "go");
    }

    #[test]
    fn fn_bound_arrow_does_not_break_generics() {
        let src = "impl<F: Fn(&str) -> String> Holder<F> { fn call(&self) {} }";
        let file = parse_file(src).unwrap();
        let Item::Impl(im) = &file.items[0] else {
            panic!()
        };
        assert!(im.self_ty.starts_with("Holder"));
        assert_eq!(im.fns.len(), 1);
    }

    #[test]
    fn trait_with_default_methods() {
        let src = r#"
            pub trait Driver {
                fn accepts_url(&self, url: &JdbcUrl) -> bool;
                fn name(&self) -> String { self.meta().name }
            }
        "#;
        let file = parse_file(src).unwrap();
        let Item::Trait(t) = &file.items[0] else {
            panic!()
        };
        assert_eq!(t.fns.len(), 2);
        assert!(!t.fns[0].has_body);
        assert!(t.fns[1].has_body);
    }

    #[test]
    fn const_items_do_not_eat_fns() {
        let src = "const N: usize = 3; pub const fn f() -> usize { N }";
        let file = parse_file(src).unwrap();
        assert_eq!(names(&file.items), ["verbatim", "fn:f"]);
    }

    #[test]
    fn lex_error_is_reported() {
        assert!(parse_file("fn broken( {").is_err());
    }
}
