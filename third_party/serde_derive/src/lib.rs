//! Workspace-local stand-in for `serde_derive`.
//!
//! Parses the deriving item directly from the proc-macro token stream
//! (no `syn`/`quote` available offline) and emits `Serialize` /
//! `Deserialize` impls against the Value-tree model of the companion
//! `serde` stand-in. Supports non-generic structs (named, tuple, unit)
//! and enums (unit, tuple, and struct variants) with externally-tagged
//! encoding — the same JSON shape real serde produces by default.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// `#[serde(default)]` → `Some(None)`;
    /// `#[serde(default = "path")]` → `Some(Some(path))`.
    default: Option<Option<String>>,
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if matches!(
                    toks.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    toks.next();
                }
            }
            _ => break,
        }
    }
    let kw = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected struct/enum keyword, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, got {other:?}"),
    };
    match kw.as_str() {
        "struct" => {
            let fields = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item {
                name,
                kind: ItemKind::Struct(fields),
            }
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("derive: expected enum body, got {other:?}"),
            };
            Item {
                name,
                kind: ItemKind::Enum(parse_variants(body)),
            }
        }
        other => panic!("derive supports only structs and enums, got `{other}`"),
    }
}

/// Recognise `serde(default)` / `serde(default = "path")` inside one
/// attribute's bracket group; any other attribute returns `None`.
fn parse_serde_default(stream: TokenStream) -> Option<Option<String>> {
    let mut toks = stream.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let mut toks = inner.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        _ => return None,
    }
    match toks.next() {
        None => Some(None),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => match toks.next() {
            Some(TokenTree::Literal(lit)) => {
                let s = lit.to_string();
                Some(Some(s.trim_matches('"').to_owned()))
            }
            _ => None,
        },
        _ => None,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        let mut default = None;
        while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            toks.next();
            if let Some(TokenTree::Group(g)) = toks.next() {
                if let Some(d) = parse_serde_default(g.stream()) {
                    default = Some(d);
                }
            }
        }
        if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            toks.next();
            if matches!(
                toks.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                toks.next();
            }
        }
        match toks.next() {
            Some(TokenTree::Ident(id)) => fields.push(Field {
                name: id.to_string(),
                default,
            }),
            None => break,
            other => panic!("derive: expected field name, got {other:?}"),
        }
        toks.next(); // the `:` after the field name
        let mut angle_depth = 0i32;
        for t in toks.by_ref() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut seg_nonempty = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    angle_depth += 1;
                    seg_nonempty = true;
                }
                '>' => {
                    angle_depth -= 1;
                    seg_nonempty = true;
                }
                ',' if angle_depth == 0 => {
                    if seg_nonempty {
                        count += 1;
                    }
                    seg_nonempty = false;
                }
                _ => seg_nonempty = true,
            },
            _ => seg_nonempty = true,
        }
    }
    if seg_nonempty {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            toks.next();
            toks.next();
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive: expected variant name, got {other:?}"),
        };
        let peeked = toks.peek().cloned();
        let fields = match peeked {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                toks.next();
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                toks.next();
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip any explicit discriminant, stop at the variant separator.
        for t in toks.by_ref() {
            if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                let f = &f.name;
                s.push_str(&format!(
                    "m.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        ItemKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::String(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(::std::string::String::from(\"{vname}\"), {inner});\n\
                             ::serde::Value::Object(m)\n\
                             }}\n",
                            binds = binds.join(", "),
                        ));
                    }
                    Fields::Named(fields) => {
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in fields {
                            let f = &f.name;
                            inner.push_str(&format!(
                                "inner.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {fields} }} => {{\n\
                             {inner}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(m)\n\
                             }}\n",
                            fields = names.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_named_constructor(type_path: &str, fields: &[Field], obj_var: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|field| {
            let f = &field.name;
            match &field.default {
                // Like real serde, `default` fires only when the key is
                // absent; an explicit value (even null) deserializes.
                Some(default) => {
                    let expr = match default {
                        Some(path) => format!("{path}()"),
                        None => "::core::default::Default::default()".to_owned(),
                    };
                    format!(
                        "{f}: match {obj_var}.get(\"{f}\") {{\n\
                         ::core::option::Option::Some(value) => \
                         ::serde::Deserialize::from_value(value)?,\n\
                         ::core::option::Option::None => {expr},\n\
                         }}"
                    )
                }
                None => format!(
                    "{f}: ::serde::Deserialize::from_value(\
                     {obj_var}.get(\"{f}\").unwrap_or(&::serde::Value::Null))?"
                ),
            }
        })
        .collect();
    format!("{type_path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let ctor = gen_named_constructor(name, fields, "obj");
            format!(
                "let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                 ::core::result::Result::Ok({ctor})"
            )
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if arr.len() != {n} {{\n\
                 return ::core::result::Result::Err(::serde::DeError::custom(\
                 \"wrong tuple arity for {name}\"));\n\
                 }}\n\
                 ::core::result::Result::Ok({name}({inits}))",
                inits = inits.join(", "),
            )
        }
        ItemKind::Struct(Fields::Unit) => {
            format!("let _ = v;\n::core::result::Result::Ok({name})")
        }
        ItemKind::Enum(variants) => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .collect();
            let nonunit: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .collect();

            let string_arm = if unit.is_empty() {
                format!(
                    "::serde::Value::String(s) => \
                     ::core::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown variant {{s}} for {name}\"))),\n"
                )
            } else {
                let mut arms = String::new();
                for v in &unit {
                    let vname = &v.name;
                    arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
                format!(
                    "::serde::Value::String(s) => match s.as_str() {{\n\
                     {arms}\
                     other => ::core::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown variant {{other}} for {name}\"))),\n\
                     }},\n"
                )
            };

            let object_arm = if nonunit.is_empty() {
                format!(
                    "::serde::Value::Object(_) => \
                     ::core::result::Result::Err(::serde::DeError::custom(\
                     \"unexpected object for {name}\")),\n"
                )
            } else {
                let mut checks = String::new();
                for v in &nonunit {
                    let vname = &v.name;
                    let build = match &v.fields {
                        Fields::Tuple(1) => format!(
                            "return ::core::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?));"
                        ),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                                .collect();
                            format!(
                                "let arr = inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::custom(\
                                 \"expected array for variant {vname}\"))?;\n\
                                 if arr.len() != {n} {{\n\
                                 return ::core::result::Result::Err(\
                                 ::serde::DeError::custom(\
                                 \"wrong tuple arity for variant {vname}\"));\n\
                                 }}\n\
                                 return ::core::result::Result::Ok(\
                                 {name}::{vname}({inits}));",
                                inits = inits.join(", "),
                            )
                        }
                        Fields::Named(fields) => {
                            let ctor =
                                gen_named_constructor(&format!("{name}::{vname}"), fields, "obj");
                            format!(
                                "let obj = inner.as_object().ok_or_else(|| \
                                 ::serde::DeError::custom(\
                                 \"expected object for variant {vname}\"))?;\n\
                                 return ::core::result::Result::Ok({ctor});"
                            )
                        }
                        Fields::Unit => unreachable!(),
                    };
                    checks.push_str(&format!(
                        "if let ::core::option::Option::Some(inner) = m.get(\"{vname}\") {{\n\
                         {build}\n\
                         }}\n"
                    ));
                }
                format!(
                    "::serde::Value::Object(m) => {{\n\
                     {checks}\
                     ::core::result::Result::Err(::serde::DeError::custom(\
                     \"unknown variant object for {name}\"))\n\
                     }}\n"
                )
            };

            format!(
                "match v {{\n\
                 {string_arm}\
                 {object_arm}\
                 _ => ::core::result::Result::Err(::serde::DeError::custom(\
                 \"expected enum representation for {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_value(v: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}

/// Derive `serde::Serialize` (Value-tree model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` (Value-tree model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
