//! Doc-drift guard: the metric-family table in `docs/observability.md`
//! must stay in lockstep with the live registry, in both directions —
//! every documented family must be registered by a fully exercised
//! gateway, and every registered family must be documented. A new
//! metric without a doc row (or a doc row for a removed metric) fails
//! here instead of rotting silently.

use gridrm::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

const OBSERVABILITY_MD: &str = include_str!("../docs/observability.md");

/// Family names from the `| metric | kind | labels | meaning |` table:
/// the first backticked cell of each `| `gridrm_...` |` row.
fn documented_families() -> BTreeSet<String> {
    OBSERVABILITY_MD
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("| `gridrm_")?;
            let name = rest.split('`').next()?;
            Some(format!("gridrm_{name}"))
        })
        .collect()
}

/// A world that materialises every documented family: two sites with
/// an SLO-configured alpha gateway, one cross-Grid query (site-latency
/// histogram + Global-layer counters), one local query, one pump
/// (housekeeping gauges, probes, time-series recorder, SLO gauges).
fn exercised_gateway() -> Arc<Gateway> {
    let net = Network::new(SimClock::new(), 424_242);
    let directory = GmaDirectory::new();
    let mut gateways = Vec::new();
    for (i, name) in ["alpha", "beta"].iter().enumerate() {
        let model = SiteModel::generate(2_000 + i as u64, &SiteSpec::new(name, 3, 2));
        model.advance_to(120_000);
        gridrm::agents::deploy_site(&net, model);
        let mut config = GatewayConfig::new(&format!("gw-{name}"), name);
        if *name == "alpha" {
            config.slos = vec![SloSpec::new(
                "availability",
                SloObjective::Availability {
                    bad_paths: vec!["denied".into(), "deadline_exceeded".into()],
                },
                0.99,
            )];
        }
        let gateway = Gateway::new(config, net.clone());
        install_into_gateway(&gateway);
        let layer = GlobalLayer::attach(gateway.clone(), directory.clone());
        gateways.push((gateway, layer));
    }
    let (alpha, layer) = gateways.swap_remove(0);
    alpha
        .admin()
        .add_source(DataSourceConfig::dynamic(
            "jdbc:snmp://node01.alpha/public",
            "node01 via SNMP",
        ))
        .expect("source registers");
    layer
        .query(
            &ClientRequest::builder("SELECT Hostname, Load1 FROM Processor")
                .sources(&[
                    "jdbc:snmp://node00.alpha/public",
                    "jdbc:snmp://node00.beta/public",
                ])
                .build(),
        )
        .expect("cross-grid query");
    alpha.clock().advance(1_000);
    alpha.pump();
    alpha
}

#[test]
fn metrics_table_matches_live_registry_both_ways() {
    let documented = documented_families();
    assert!(
        documented.len() >= 20,
        "table parse found only {} families — did the doc format change?",
        documented.len()
    );

    let gateway = exercised_gateway();
    let registered: BTreeSet<String> = gateway
        .telemetry()
        .registry()
        .snapshot()
        .into_iter()
        .map(|f| f.name)
        .collect();

    let undocumented: Vec<&String> = registered.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "registered but missing from the docs/observability.md metrics \
         table: {undocumented:?}"
    );
    let unregistered: Vec<&String> = documented.difference(&registered).collect();
    assert!(
        unregistered.is_empty(),
        "documented in docs/observability.md but never registered by an \
         exercised gateway (stale row?): {unregistered:?}"
    );
}
