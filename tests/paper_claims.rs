//! Cross-crate scenario tests pinned to specific paper claims that aren't
//! already covered by the per-crate suites.

use gridrm::core::events::ListenerFilter;
use gridrm::dbc::{Connection, Driver, DriverMetaData, Properties, Statement};
use gridrm::prelude::*;
use std::sync::Arc;

fn world(
    hosts: usize,
) -> (
    Arc<Network>,
    Arc<SiteModel>,
    gridrm::agents::SiteAgents,
    Arc<Gateway>,
) {
    let net = Network::new(SimClock::new(), 555);
    let mut spec = SiteSpec::new("p", hosts, 2);
    spec.peers = vec!["node00.q".to_owned()];
    let site = SiteModel::generate(77, &spec);
    site.advance_to(300_000);
    let agents = deploy_site(&net, site.clone());
    let gateway = Gateway::new(GatewayConfig::new("gw-p", "p"), net.clone());
    gridrm::drivers::install_into_gateway(&gateway);
    (net, site, agents, gateway)
}

/// Table 1: "any driver implementing the java.sql.Driver interface could
/// be registered. The registration component remains generic by avoiding
/// any direct reference to the driver's actual class name."
#[test]
fn any_driver_implementation_is_registrable() {
    struct ThirdPartyDriver;
    impl Driver for ThirdPartyDriver {
        fn meta(&self) -> DriverMetaData {
            DriverMetaData {
                name: "jdbc-thirdparty".into(),
                subprotocol: "thirdparty".into(),
                version: (0, 1),
                description: "a plug-in the gateway has never heard of".into(),
            }
        }
        fn accepts_url(&self, url: &JdbcUrl) -> bool {
            url.subprotocol == "thirdparty"
        }
        fn connect(
            &self,
            url: &JdbcUrl,
            _props: &Properties,
        ) -> gridrm::dbc::DbcResult<Box<dyn Connection>> {
            struct C(JdbcUrl);
            impl Connection for C {
                fn create_statement(&mut self) -> gridrm::dbc::DbcResult<Box<dyn Statement>> {
                    struct S;
                    impl Statement for S {
                        fn execute_query(
                            &mut self,
                            _sql: &str,
                        ) -> gridrm::dbc::DbcResult<Box<dyn gridrm::dbc::ResultSet>>
                        {
                            Ok(Box::new(
                                RowSet::new(
                                    gridrm::dbc::ResultSetMetaData::from_pairs(&[(
                                        "Answer",
                                        gridrm::sqlparse::SqlType::Int,
                                    )]),
                                    vec![vec![SqlValue::Int(42)]],
                                )
                                .unwrap(),
                            ))
                        }
                    }
                    Ok(Box::new(S))
                }
                fn url(&self) -> &JdbcUrl {
                    &self.0
                }
                fn is_closed(&self) -> bool {
                    false
                }
                fn close(&mut self) -> gridrm::dbc::DbcResult<()> {
                    Ok(())
                }
            }
            Ok(Box::new(C(url.clone())))
        }
    }

    let (_net, _site, _agents, gateway) = world(1);
    // Runtime registration of a never-seen plug-in (§3.2.2).
    gateway
        .driver_manager()
        .register(Arc::new(ThirdPartyDriver));
    let resp = gateway
        .query(&ClientRequest::realtime(
            "jdbc:thirdparty://somewhere/x",
            "SELECT Answer FROM Anything",
        ))
        .unwrap();
    assert_eq!(resp.rows.rows()[0][0], SqlValue::Int(42));
    // And removal at runtime doesn't disturb other drivers.
    assert!(gateway.driver_manager().unregister("jdbc-thirdparty"));
    assert!(gateway
        .query(&ClientRequest::realtime(
            "jdbc:snmp://node00.p/public",
            "SELECT Hostname FROM Processor"
        ))
        .is_ok());
}

/// §3.2.2's two URL forms: `jdbc:nws://host/perfdata` pins NWS, while
/// `jdbc:://host/perfdata` means "the first available driver".
#[test]
fn url_forms_from_the_paper() {
    let (_net, _site, _agents, gateway) = world(2);
    let dm = gateway.driver_manager();
    let pinned = dm
        .resolve(&JdbcUrl::parse("jdbc:nws://node00.p/perfdata").unwrap())
        .unwrap();
    assert_eq!(pinned.name(), "jdbc-nws");
    let any = dm
        .resolve(&JdbcUrl::parse("jdbc:://node00.p/perfdata").unwrap())
        .unwrap();
    // Registration order (priority): SNMP probes first and accepts.
    // The wildcard path is "perfdata", which the SNMP agent rejects as a
    // community — so the scan moves on to Ganglia.
    assert_eq!(any.name(), "jdbc-ganglia");
}

/// The gateway's own historical database is just another data source via
/// the JDBC-GridRM driver — "SQL ... used extensively throughout" (§3).
#[test]
fn history_is_queryable_as_a_data_source() {
    let (_net, site, _agents, gateway) = world(2);
    for step in 1..=3u64 {
        site.advance_to(300_000 + step * 10_000);
        gateway
            .query(&ClientRequest::realtime(
                "jdbc:snmp://node01.p/public",
                "SELECT Hostname, Load1 FROM Processor",
            ))
            .unwrap();
    }
    let resp = gateway
        .query(&ClientRequest::realtime(
            "jdbc:gridrm://local/history",
            "SELECT COUNT(*) AS n FROM history WHERE attr = 'Load1'",
        ))
        .unwrap();
    assert_eq!(resp.rows.rows()[0][0], SqlValue::Int(3));
}

/// NetLogger streaming: a SUBSCRIBE turns the agent into a push source
/// whose ULM lines flow through the Event Manager formatters.
#[test]
fn netlogger_streaming_into_event_manager() {
    let (net, _site, agents, gateway) = world(2);
    let (_, rx) = gateway.events().register_listener(ListenerFilter {
        category_prefix: Some("cpu.".into()),
        ..Default::default()
    });
    // Subscribe the gateway to the NetLogger stream.
    let reply = net
        .request("gw.p", "node00.p:netlogger", b"SUBSCRIBE gw.p")
        .unwrap();
    assert_eq!(reply, b"OK\n");
    let n = agents.netlogger.pump();
    assert!(n > 0);
    gateway.pump();
    let events: Vec<_> = rx.try_iter().collect();
    assert_eq!(events.len(), 2); // one cpu.load per host
    assert!(events.iter().all(|e| e.category == "cpu.load"));
    assert!(events[0].value.is_some());
}

/// Gateway restart: persisted registration details are restored
/// ("registration details are cached persistently within the Gateway",
/// §3.2.2) and the restored preferences steer driver selection.
#[test]
fn registration_survives_gateway_restart() {
    let dir = std::env::temp_dir().join("gridrm-restart-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.json");

    let (net, _site, _agents, gateway) = world(2);
    gateway
        .admin()
        .add_source(DataSourceConfig {
            url: "jdbc:://node00.p/public".into(),
            label: "head".into(),
            preferred_drivers: vec!["jdbc-scms".into()],
            policy: Some(FailurePolicy::Report),
        })
        .unwrap();
    gateway.admin().save(&path).unwrap();

    // "Restart": a brand-new gateway on the same network.
    let gateway2 = Gateway::new(GatewayConfig::new("gw-p2", "p"), net.clone());
    gridrm::drivers::install_into_gateway(&gateway2);
    assert_eq!(gateway2.admin().load(&path).unwrap(), 1);
    // The restored static preference wins over dynamic selection.
    let chosen = gateway2
        .driver_manager()
        .resolve(&JdbcUrl::parse("jdbc:://node00.p/public").unwrap())
        .unwrap();
    assert_eq!(chosen.name(), "jdbc-scms");
    std::fs::remove_file(&path).ok();
}

/// §3.2.4's data-shape contrast, measured: a one-attribute SNMP exchange
/// moves an order of magnitude fewer bytes than a Ganglia cluster dump.
#[test]
fn fine_vs_coarse_grained_byte_counts() {
    let (net, _site, _agents, gateway) = world(16);
    let sql = "SELECT Load1 FROM Processor WHERE Hostname = 'node03.p'";
    gateway
        .query(&ClientRequest::realtime("jdbc:snmp://node03.p/public", sql))
        .unwrap();
    gateway
        .query(&ClientRequest::realtime(
            "jdbc:ganglia://node00.p/p?ttl=0",
            sql,
        ))
        .unwrap();
    let snmp_bytes = net.stats_for("gw.p", "node03.p:snmp").snapshot().bytes_in;
    let ganglia_bytes = net
        .stats_for("gw.p", "node00.p:ganglia")
        .snapshot()
        .bytes_in;
    assert!(
        ganglia_bytes > snmp_bytes * 10,
        "ganglia {ganglia_bytes} vs snmp {snmp_bytes}"
    );
}

/// The same GLUE row from two drivers agrees (homogeneous view, §1):
/// every shared non-null attribute matches within quantisation error.
#[test]
fn cross_driver_value_agreement() {
    let (_net, _site, _agents, gateway) = world(3);
    let sql = "SELECT Hostname, NCpu, Load5, RAMSizeMB FROM MainMemory WHERE Hostname = 'node01.p'";
    // MainMemory only has Hostname + RAM attrs; use a valid projection.
    let sql = sql.replace("NCpu, Load5, ", "RAMAvailableMB, ");
    let mut answers = Vec::new();
    for src in [
        "jdbc:snmp://node01.p/public",
        "jdbc:ganglia://node00.p/p",
        "jdbc:scms://node00.p/",
    ] {
        let resp = gateway.query(&ClientRequest::realtime(src, &sql)).unwrap();
        assert_eq!(resp.rows.len(), 1, "via {src}");
        answers.push(resp.rows.rows()[0].clone());
    }
    for row in &answers {
        assert_eq!(row[0], SqlValue::Str("node01.p".into()));
        // RAMSizeMB identical everywhere.
        assert_eq!(row[2].as_i64().unwrap(), 2048);
        // RAMAvailableMB within rounding (sources quantise differently).
        let avail = row[1].as_f64().unwrap();
        let reference = answers[0][1].as_f64().unwrap();
        assert!((avail - reference).abs() <= 1.5, "{avail} vs {reference}");
    }
}
