//! Regression guard for the `Transport` API extraction: the simnet is
//! still the deterministic test transport. The same multi-site
//! scenario, replayed from scratch, must drive **byte-identical** wire
//! traffic through the transport — request bytes, response bytes, and
//! error strings — and attaching via an explicit simnet transport must
//! behave exactly like the classic `GlobalLayer::attach`.

use gridrm::global::{GlobalLayer, GmaDirectory, RecordingTransport, Transport};
use gridrm::prelude::*;
use std::sync::Arc;

/// Build a two-site grid, run remote queries (including failure paths),
/// event forwarding, and pings; return the layer-0 fingerprint of all
/// observable behaviour plus the recorded wire transcript (empty when
/// `record` is false and the classic `attach` path is used).
fn run_scenario(record: bool) -> (String, String) {
    let net = Network::new(SimClock::new(), 0xD5);
    let recorder = RecordingTransport::new(net.clone());
    let directory = GmaDirectory::new();
    let mut layers = Vec::new();
    for i in 0..2u64 {
        let site = format!("site{i}");
        let model = SiteModel::generate(100 + i, &SiteSpec::new(&site, 2, 4));
        model.advance_to(300_000);
        deploy_site(&net, model);
        let gateway = Gateway::new(
            GatewayConfig::new(&format!("gw-{site}"), &site),
            net.clone(),
        );
        install_into_gateway(&gateway);
        let layer = if record {
            let transport: Arc<dyn Transport> = recorder.clone();
            GlobalLayer::attach_via(gateway, directory.clone(), transport)
        } else {
            GlobalLayer::attach(gateway, directory.clone())
        };
        layers.push(layer);
    }
    let portal = &layers[0];

    let mut out = String::new();
    // Remote query (site0 -> site1) and a local one for contrast.
    for source in [
        "jdbc:snmp://node01.site1/public",
        "jdbc:snmp://node00.site0/public",
    ] {
        match portal.query(&ClientRequest::realtime(
            source,
            "SELECT Hostname, Load1 FROM Processor ORDER BY Hostname",
        )) {
            Ok(resp) => out.push_str(&resp.rows.to_table_string()),
            Err(e) => out.push_str(&format!("ERR {source}: {e}\n")),
        }
    }
    // Failure paths must surface identical error strings run to run:
    // a host the remote site does not have, and a downed GMA endpoint.
    for down in [false, true] {
        net.set_down("gw.site1:gma", down);
        match portal.query(&ClientRequest::realtime(
            "jdbc:snmp://node09.site1/public",
            "SELECT Hostname FROM Processor",
        )) {
            Ok(resp) => out.push_str(&resp.rows.to_table_string()),
            Err(e) => out.push_str(&format!("ERR down={down}: {e}\n")),
        }
        out.push_str(&format!("ping down={down}: {}\n", portal.ping("gw-site1")));
    }
    net.set_down("gw.site1:gma", false);
    // Event forwarding crosses the transport too.
    let accepted = portal.forward_event(&GridRMEvent {
        id: 1,
        at_ms: 300_500,
        source: "det-test".to_owned(),
        hostname: Some("node00.site0".to_owned()),
        severity: Severity::Warning,
        category: "cpu.load".to_owned(),
        message: "synthetic".to_owned(),
        value: Some(3.5),
    });
    out.push_str(&format!("event accepted by {accepted} peers\n"));
    let stats = portal.stats().snapshot();
    out.push_str(&format!(
        "out={} in={} ok={} err={}\n",
        stats.remote_queries_out, stats.remote_queries_in, stats.segments_ok, stats.segments_error
    ));
    (out, recorder.transcript_text())
}

#[test]
fn simnet_transport_transcripts_are_byte_identical() {
    let (fp_a, wire_a) = run_scenario(true);
    let (fp_b, wire_b) = run_scenario(true);
    assert!(!wire_a.is_empty(), "scenario produced no wire traffic");
    assert_eq!(fp_a, fp_b, "observable behaviour diverged between runs");
    assert_eq!(wire_a, wire_b, "wire transcripts diverged between runs");
    // The transcript must carry both directions of the failure story:
    // a remote error answered over the wire, and a transport error.
    assert!(wire_a.contains("gw.site1:gma"), "{wire_a}");
    assert!(
        wire_a.contains("endpoint 'gw.site1:gma' is down"),
        "downed-endpoint error text missing:\n{wire_a}"
    );
}

#[test]
fn attach_and_attach_via_simnet_agree() {
    let (classic, _) = run_scenario(false);
    let (via, _) = run_scenario(true);
    assert_eq!(
        classic, via,
        "attach() and attach_via(simnet) behave differently"
    );
}
