//! Data-source health subsystem end-to-end: a forced agent outage must
//! walk the Up → Degraded → Down state machine with debounce, recover
//! back to Up once the agent returns, raise alert events, and report the
//! same facts through every exposition surface — the `gridrm_health` and
//! `gridrm_journal` virtual SQL tables, the Admin JSON snapshot, and the
//! Prometheus text rendering.

use gridrm::prelude::*;
use std::sync::Arc;

const SNMP_URL: &str = "jdbc:snmp://node01.hm/public";
const AGENT_ADDR: &str = "node01.hm:snmp";
const TELEMETRY_URL: &str = "jdbc:telemetry://local/metrics";

/// A deployed site plus a gateway with fast health thresholds: probes
/// every 10 virtual seconds, Down after 2 consecutive failures, Up
/// after 2 consecutive successes.
fn world() -> Arc<Gateway> {
    let net = Network::new(SimClock::new(), 909);
    let site = SiteModel::generate(17, &SiteSpec::new("hm", 4, 2));
    site.advance_to(120_000);
    gridrm::agents::deploy_site(&net, site);
    let mut config = GatewayConfig::new("gw-hm", "hm");
    config.probe_interval_ms = 10_000;
    config.probe_timeout_ms = 5_000;
    config.health_down_after = 2;
    config.health_up_after = 2;
    config.slow_query_threshold_ms = 1;
    let gateway = Gateway::new(config, net);
    install_into_gateway(&gateway);
    gateway
        .admin()
        .add_source(DataSourceConfig::dynamic(SNMP_URL, "node01 via SNMP"))
        .expect("source registers");
    gateway
}

/// Query one of the telemetry driver's virtual tables through the
/// normal client path.
fn sql(gateway: &Gateway, query: &str) -> RowSet {
    gateway
        .query(&ClientRequest::realtime(TELEMETRY_URL, query))
        .expect("telemetry virtual table query")
        .rows
}

#[test]
fn outage_reaches_down_within_a_probe_interval_and_recovers() {
    let gateway = world();
    let clock = gateway.clock().clone();
    let net = gateway.network().clone();
    let (_, alerts) = gateway.events().register_listener(ListenerFilter {
        category_prefix: Some("health.".into()),
        ..Default::default()
    });

    // First pump: the registered source has never been probed, so a
    // probe runs immediately and proves it Up.
    gateway.pump();
    assert_eq!(
        gateway.health().state_of(SNMP_URL),
        Some(HealthState::Up),
        "first probe promotes Unknown -> Up"
    );

    // Kill the agent. A client query now fails: passive failure #1
    // puts the source into Degraded (debounce: not yet Down).
    net.set_down(AGENT_ADDR, true);
    clock.advance(1_000);
    let err = gateway.query(&ClientRequest::realtime(
        SNMP_URL,
        "SELECT Hostname, Load1 FROM Processor",
    ));
    assert!(err.is_err(), "query against a dead agent fails");
    assert_eq!(
        gateway.health().state_of(SNMP_URL),
        Some(HealthState::Degraded)
    );

    // Within one probe interval the scheduler notices too: probe
    // failure #2 crosses the down_after=2 threshold.
    clock.advance(10_000);
    gateway.pump();
    assert_eq!(gateway.health().state_of(SNMP_URL), Some(HealthState::Down));

    // The SQL view reflects the outage...
    let rows = sql(
        &gateway,
        "SELECT state, consecutive_failures FROM gridrm_health \
         WHERE source = 'jdbc:snmp://node01.hm/public'",
    );
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.rows()[0][0], SqlValue::Str("down".into()));
    let failures = rows.rows()[0][1].as_f64().unwrap() as u32;
    assert!(
        failures >= 2,
        "nonzero consecutive failures, got {failures}"
    );

    // ...and agrees field-for-field with the Admin snapshot behind the
    // JSON exposition.
    let snap = gateway
        .admin()
        .health_snapshot()
        .into_iter()
        .find(|s| s.source == SNMP_URL)
        .expect("admin tracks the source");
    assert_eq!(snap.state, HealthState::Down);
    assert_eq!(snap.consecutive_failures, failures);
    assert!(gateway.admin().health_json().contains("down"));

    // Down and Degraded transitions raised alert events.
    let mut categories = Vec::new();
    while let Ok(e) = alerts.try_recv() {
        categories.push(e.category);
    }
    assert!(
        categories.contains(&"health.state.degraded".to_owned()),
        "degraded alert raised: {categories:?}"
    );
    assert!(
        categories.contains(&"health.state.down".to_owned()),
        "down alert raised: {categories:?}"
    );

    // Agent returns: up_after=2 probe successes re-promote to Up.
    net.set_down(AGENT_ADDR, false);
    clock.advance(10_000);
    gateway.pump();
    assert_eq!(
        gateway.health().state_of(SNMP_URL),
        Some(HealthState::Down),
        "one success is not enough (debounce)"
    );
    clock.advance(10_000);
    gateway.pump();
    assert_eq!(gateway.health().state_of(SNMP_URL), Some(HealthState::Up));
    let rows = sql(
        &gateway,
        "SELECT state FROM gridrm_health \
         WHERE source = 'jdbc:snmp://node01.hm/public'",
    );
    assert_eq!(rows.rows()[0][0], SqlValue::Str("up".into()));
    let mut categories = Vec::new();
    while let Ok(e) = alerts.try_recv() {
        categories.push(e.category);
    }
    assert!(
        categories.contains(&"health.state.recovered".to_owned()),
        "recovery alert raised: {categories:?}"
    );
}

#[test]
fn transition_counts_identical_across_journal_sql_prometheus_and_json() {
    let gateway = world();
    let clock = gateway.clock().clone();
    let net = gateway.network().clone();

    // Produce a handful of transitions: up, degraded, down, up again.
    gateway.pump();
    net.set_down(AGENT_ADDR, true);
    for _ in 0..2 {
        clock.advance(10_000);
        gateway.pump();
    }
    net.set_down(AGENT_ADDR, false);
    for _ in 0..2 {
        clock.advance(10_000);
        gateway.pump();
    }
    assert_eq!(gateway.health().state_of(SNMP_URL), Some(HealthState::Up));

    // Surface 1: the in-process journal ring.
    let via_ring = gateway
        .telemetry()
        .journal()
        .recent_of_kind(gridrm::telemetry::KIND_STATE_TRANSITION)
        .len() as u64;
    assert!(
        via_ring >= 4,
        "expected several transitions, got {via_ring}"
    );

    // Surface 2: Prometheus text.
    let prom = gateway.admin().metrics_prometheus();
    let via_prometheus: u64 = prom
        .lines()
        .filter(|l| l.starts_with("gridrm_health_transitions_total{"))
        .map(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(0.0) as u64
        })
        .sum();

    // Surface 3: the JSON metrics snapshot.
    let via_json: u64 = gateway
        .admin()
        .metrics_snapshot()
        .into_iter()
        .filter(|f| f.name == "gridrm_health_transitions_total")
        .flat_map(|f| f.samples)
        .map(|s| s.value as u64)
        .sum();

    // Surface 4: the journal SQL table — read last, because the read
    // itself is a successful interaction the health monitor observes
    // (after the table row snapshot is taken).
    let rows = sql(
        &gateway,
        "SELECT seq FROM gridrm_journal WHERE kind = 'state_transition'",
    );
    let via_sql = rows.len() as u64;

    assert_eq!(via_ring, via_prometheus, "journal ring vs Prometheus");
    assert_eq!(via_prometheus, via_json, "Prometheus vs JSON snapshot");
    assert_eq!(via_json, via_sql, "JSON snapshot vs journal SQL table");
}

#[test]
fn journal_ordering_matches_clock_and_trace_timestamps() {
    let gateway = world();
    let clock = gateway.clock().clone();
    let net = gateway.network().clone();

    gateway.pump();
    net.set_down(AGENT_ADDR, true);
    clock.advance(10_000);
    let _ = gateway.query(&ClientRequest::realtime(
        SNMP_URL,
        "SELECT Load1 FROM Processor",
    ));
    gateway.pump();

    let entries = gateway.telemetry().journal().recent();
    assert!(!entries.is_empty());
    for pair in entries.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq strictly increasing");
        assert!(
            pair[0].at_ms <= pair[1].at_ms,
            "journal timestamps never run backwards"
        );
    }
    let now = clock.now_millis();
    assert!(entries.iter().all(|e| e.at_ms <= now));

    // Traces come from the same virtual clock, so the journal and the
    // trace ring tell one consistent story.
    let traces = gateway.telemetry().traces().recent();
    assert!(!traces.is_empty());
    for pair in traces.windows(2) {
        assert!(pair[0].started_ms <= pair[1].started_ms);
    }
    assert!(traces.iter().all(|t| t.finished_ms <= now));
}

#[test]
fn slow_query_log_captures_per_stage_breakdown() {
    let gateway = world();
    let clock = gateway.clock().clone();

    // The world sets slow_query_threshold_ms = 1. Simnet requests do
    // not advance the virtual clock, so instantaneous client queries
    // never qualify; drive a traced request whose stages straddle a
    // clock advance, the same way a genuinely slow query would.
    let mut span = gateway
        .telemetry()
        .span("SELECT Hostname, Load1 FROM Processor");
    span.stage("acil");
    clock.advance(25);
    span.stage_with("driver_execute", "jdbc-snmp");
    span.finish("ok");
    let slow = gateway.telemetry().slow_queries().top();
    assert!(!slow.is_empty(), "slow log captured the query");
    assert!(slow[0].duration_ms() >= 1);
    assert!(
        slow[0].stages.iter().any(|s| s.stage == "driver_execute"),
        "per-stage breakdown retained: {:?}",
        slow[0].stages
    );

    // Same facts through the SQL surface and the Admin JSON exposition.
    let rows = sql(
        &gateway,
        "SELECT duration_ms, stages FROM gridrm_slow_queries",
    );
    assert!(!rows.is_empty());
    assert!(rows.rows()[0][1]
        .as_str()
        .unwrap()
        .contains("driver_execute"));
    assert!(gateway
        .admin()
        .slow_queries_json()
        .contains("driver_execute"));
}

#[test]
fn site_rollup_tracks_worst_source_state() {
    let gateway = world();
    let clock = gateway.clock().clone();
    let net = gateway.network().clone();
    let directory = GmaDirectory::new();
    let layer = GlobalLayer::attach(gateway.clone(), directory);

    gateway.pump();
    let rollup = layer.site_health();
    assert_eq!(rollup.site, "hm");
    assert_eq!(rollup.overall, HealthState::Up);
    assert!(rollup.up >= 1);

    net.set_down(AGENT_ADDR, true);
    for _ in 0..2 {
        clock.advance(10_000);
        gateway.pump();
    }
    let rollup = layer.site_health();
    assert_eq!(rollup.overall, HealthState::Down, "worst state wins");
    assert!(rollup.down >= 1);
}
