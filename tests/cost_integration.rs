//! The cost-accounting plane end to end: a two-site fan-out where the
//! children's inclusive costs sum *exactly* to the root's ledger entry,
//! the priced `EXPLAIN ANALYZE` columns, the `gridrm_query_costs` /
//! `gridrm_intrusion` virtual tables, and determinism — the same world
//! built twice produces byte-identical cost vectors.

use gridrm::prelude::*;

const SQL: &str = "SELECT Hostname, Load1 FROM Processor ORDER BY Hostname";
const ALPHA_URL: &str = "jdbc:snmp://node00.alpha/public";
const BETA_URL: &str = "jdbc:snmp://node00.beta/public";

struct Grid {
    gateways: Vec<std::sync::Arc<Gateway>>,
    layers: Vec<std::sync::Arc<GlobalLayer>>,
}

/// Two sites behind one directory with 20 ms one-way WAN latency.
fn grid() -> Grid {
    let net = Network::new(SimClock::new(), 777);
    let directory = GmaDirectory::new();
    let mut gateways = Vec::new();
    let mut layers = Vec::new();
    for (i, name) in ["alpha", "beta"].iter().enumerate() {
        let model = SiteModel::generate(300 + i as u64, &SiteSpec::new(name, 2, 2));
        model.advance_to(120_000);
        deploy_site(&net, model);
        let gateway = Gateway::new(GatewayConfig::new(&format!("gw-{name}"), name), net.clone());
        install_into_gateway(&gateway);
        layers.push(GlobalLayer::attach(gateway.clone(), directory.clone()));
        gateways.push(gateway);
    }
    net.set_latency("gw.alpha:gma", "gw.beta:gma", Latency::ms(20, 0));
    net.set_latency("gw.beta:gma", "gw.alpha:gma", Latency::ms(20, 0));
    Grid { gateways, layers }
}

fn fanout_request() -> ClientRequest {
    ClientRequest::builder(SQL)
        .sources(&[ALPHA_URL, BETA_URL])
        .build()
}

/// Run one fan-out query and return (root span, its direct children,
/// the root's `gridrm_query_costs` ledger entry).
fn run_fanout(g: &Grid) -> (TraceRecord, Vec<TraceRecord>, QueryCostEntry) {
    let resp = g.layers[0].query(&fanout_request()).unwrap();
    assert_eq!(resp.sources_ok, 2, "outcomes: {:?}", resp.outcomes);

    let telemetry = g.gateways[0].telemetry();
    let spans = telemetry.traces().recent();
    let root = spans
        .iter()
        .find(|s| s.parent_span_id.is_none() && s.request == SQL)
        .expect("fan-out root span")
        .clone();
    let children: Vec<TraceRecord> = spans
        .iter()
        .filter(|s| s.parent_span_id.as_deref() == Some(root.span_id.as_str()))
        .cloned()
        .collect();
    let entry = telemetry
        .costs()
        .entries()
        .into_iter()
        .find(|e| e.trace_id == root.trace_id)
        .expect("root ledger entry");
    (root, children, entry)
}

#[test]
fn child_costs_sum_exactly_to_the_root_ledger_entry() {
    let g = grid();
    let (root, children, entry) = run_fanout(&g);

    // One local + one remote segment, each carrying a non-trivial cost.
    assert_eq!(children.len(), 2, "children: {children:#?}");
    let mut sum = CostVector::default();
    for c in &children {
        sum.add(&c.cost);
    }
    // The engine charges only segment spans, so the root's inclusive
    // cost is exactly the sum of its children — and the ledger entry
    // recorded the same vector.
    assert_eq!(root.cost, sum, "root: {root:#?}");
    assert_eq!(entry.cost, root.cost);
    assert_eq!(entry.site, "alpha");
    assert!(!entry.over_budget, "no budget configured");

    // The remote segment put real frames on the WAN, one each way.
    let remote = children
        .iter()
        .find(|c| c.request.contains("gw-beta"))
        .expect("remote segment span");
    assert_eq!(remote.cost.msgs_out, 1);
    assert_eq!(remote.cost.msgs_in, 1);
    assert!(remote.cost.bytes_out > 0 && remote.cost.bytes_in > 0);
    // It also absorbed the remote gateway's execution charges.
    assert!(remote.cost.fetch_units > 0, "remote: {remote:#?}");
    assert!(remote.cost.rows_returned > 0);

    // The local segment never touched the wire but did real work.
    let local = children
        .iter()
        .find(|c| c.request.contains("gw-alpha"))
        .expect("local segment span");
    assert_eq!(local.cost.total_msgs(), 0);
    assert!(local.cost.fetch_units > 0 && local.cost.rows_returned > 0);

    // Root totals are non-zero on every EXPLAIN-surfaced axis.
    assert!(root.cost.rows_returned >= 2);
    assert!(root.cost.total_bytes() > 0);
    assert_eq!(root.cost.total_msgs(), 2);
}

#[test]
fn fanout_costs_are_deterministic_across_worlds() {
    // The same world built twice yields byte-identical cost vectors —
    // costs are functions of virtual time and seeded content only.
    let runs: Vec<(CostVector, Vec<CostVector>, Vec<IntrusionRow>)> = (0..2)
        .map(|_| {
            let g = grid();
            let (root, mut children, _) = run_fanout(&g);
            children.sort_by(|a, b| a.request.cmp(&b.request));
            let costs = children.into_iter().map(|c| c.cost).collect();
            let intrusion = g.gateways[0].telemetry().costs().intrusion_snapshot();
            (root.cost, costs, intrusion)
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    // The fan-out charged its query traffic against the remote site.
    assert!(
        runs[0]
            .2
            .iter()
            .any(|r| r.site == "beta" && r.cause == "query" && r.bucket.bytes > 0),
        "intrusion: {:#?}",
        runs[0].2
    );
}

#[test]
fn explain_analyze_prices_the_span_tree() {
    let g = grid();
    let request = ClientRequest::builder(&format!("EXPLAIN ANALYZE {SQL}"))
        .sources(&[ALPHA_URL, BETA_URL])
        .build();
    let resp = g.layers[0].query(&request).unwrap();
    let meta = resp.rows.meta();
    let names: Vec<&str> = meta.columns().iter().map(|c| c.name.as_str()).collect();
    assert_eq!(&names[12..], &["rows", "bytes", "msgs"]);

    // Depth-first order: row 0 is the explain root, which inherits the
    // whole fan-out's inclusive cost.
    let root = &resp.rows.rows()[0];
    assert!(root[12].as_i64().unwrap() >= 2, "rows: {:?}", root[12]);
    assert!(root[13].as_i64().unwrap() > 0, "bytes: {:?}", root[13]);
    assert_eq!(root[14].as_i64().unwrap(), 2, "msgs: {:?}", root[14]);

    // The remote segment's row prices its own wire traffic.
    let remote = resp
        .rows
        .rows()
        .iter()
        .find(|r| {
            r[5].as_str()
                .map(|s| s.starts_with("segment:gw-beta"))
                .unwrap_or(false)
        })
        .expect("remote segment row");
    assert!(remote[13].as_i64().unwrap() > 0);
    assert_eq!(remote[14].as_i64().unwrap(), 2);

    // Plain EXPLAIN withholds measurements: cost columns are NULL.
    let request = ClientRequest::builder(&format!("EXPLAIN {SQL}"))
        .sources(&[ALPHA_URL, BETA_URL])
        .build();
    let resp = g.layers[0].query(&request).unwrap();
    for row in resp.rows.rows() {
        assert!(row[12].is_null() && row[13].is_null() && row[14].is_null());
    }
}

#[test]
fn cost_tables_serve_fanout_charges_via_sql() {
    let g = grid();
    run_fanout(&g);
    let resp = g.gateways[0]
        .query(&ClientRequest::realtime(
            "jdbc:telemetry://local/metrics",
            "SELECT trace_id, msgs_out, bytes_in, rows_returned, over_budget \
             FROM gridrm_query_costs WHERE request = 'SELECT Hostname, Load1 \
             FROM Processor ORDER BY Hostname'",
        ))
        .unwrap();
    assert_eq!(resp.rows.len(), 1);
    assert_eq!(resp.rows.rows()[0][1].as_i64().unwrap(), 1);
    assert!(resp.rows.rows()[0][2].as_i64().unwrap() > 0);

    let resp = g.gateways[0]
        .query(&ClientRequest::realtime(
            "jdbc:telemetry://local/metrics",
            "SELECT site, cause, msgs, bytes FROM gridrm_intrusion \
             WHERE site = 'beta' AND cause = 'query'",
        ))
        .unwrap();
    assert_eq!(resp.rows.len(), 1);
    assert_eq!(resp.rows.rows()[0][2].as_i64().unwrap(), 2);
    assert!(resp.rows.rows()[0][3].as_i64().unwrap() > 0);
}
