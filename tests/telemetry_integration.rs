//! Gateway-wide telemetry integration: a simulated multi-source workload
//! must leave exactly-accountable marks in the metrics registry, produce
//! ordered query-path traces, and expose the same numbers through all
//! three exposition surfaces (JSON snapshot, Prometheus text, and the
//! `gridrm_telemetry` virtual SQL table).

use gridrm::prelude::*;
use gridrm::telemetry::Sample;
use std::sync::Arc;

/// A deployed site with a gateway and the standard driver set.
fn world() -> Arc<Gateway> {
    let net = Network::new(SimClock::new(), 777);
    let site = SiteModel::generate(21, &SiteSpec::new("tm", 4, 2));
    site.advance_to(120_000);
    deploy_site(&net, site);
    let gateway = Gateway::new(GatewayConfig::new("gw-tm", "tm"), net);
    install_into_gateway(&gateway);
    gateway
}

const SNMP_URL: &str = "jdbc:snmp://node01.tm/public";
const GANGLIA_URL: &str = "jdbc:ganglia://node00.tm/tm";

/// Run the reference workload: four queries against two distinct
/// simulated sources — one of them repeated from cache.
fn run_workload(gateway: &Gateway) {
    let sql = "SELECT Hostname, Load1 FROM Processor";
    // 1. Real-time against the SNMP agent.
    gateway
        .query(&ClientRequest::realtime(SNMP_URL, sql))
        .expect("snmp query");
    // 2. Real-time against the Ganglia agent (different driver).
    gateway
        .query(&ClientRequest::realtime(GANGLIA_URL, sql))
        .expect("ganglia query");
    // 3. Cached query: misses (different SQL), so it fetches + stores.
    gateway
        .query(&ClientRequest::cached(
            SNMP_URL,
            "SELECT Hostname FROM Processor",
            Some(60_000),
        ))
        .expect("cached query (miss)");
    // 4. Same cached query again: served from the cache.
    gateway
        .query(&ClientRequest::cached(
            SNMP_URL,
            "SELECT Hostname FROM Processor",
            Some(60_000),
        ))
        .expect("cached query (hit)");
}

fn sample_value(samples: &[Sample], name: &str, labels: &str) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && s.labels == labels)
        .map(|s| s.value)
}

#[test]
fn counters_match_workload_exactly() {
    let gateway = world();
    run_workload(&gateway);
    let samples = gateway.telemetry().registry().samples();

    // 4 client requests total.
    assert_eq!(
        sample_value(&samples, "gridrm_requests_total", ""),
        Some(4.0)
    );
    // Cache: one lookup missed, one hit (realtime queries bypass lookup).
    assert_eq!(
        sample_value(&samples, "gridrm_cache_events_total", "event=\"hit\""),
        Some(1.0)
    );
    assert_eq!(
        sample_value(&samples, "gridrm_cache_events_total", "event=\"miss\""),
        Some(1.0)
    );
    // Every successful real-time fetch stores its result: queries 1-3.
    assert_eq!(
        sample_value(&samples, "gridrm_cache_events_total", "event=\"store\""),
        Some(3.0)
    );
    // Request paths: 3 real-time fetches, 1 served from cache.
    assert_eq!(
        sample_value(
            &samples,
            "gridrm_request_paths_total",
            "path=\"realtime_fetch\""
        ),
        Some(3.0)
    );
    assert_eq!(
        sample_value(
            &samples,
            "gridrm_request_paths_total",
            "path=\"cache_served\""
        ),
        Some(1.0)
    );

    // Per-driver latency histograms: SNMP executed twice, Ganglia once.
    assert_eq!(
        sample_value(
            &samples,
            "gridrm_driver_latency_ms_count",
            "driver=\"jdbc-snmp\""
        ),
        Some(2.0)
    );
    assert_eq!(
        sample_value(
            &samples,
            "gridrm_driver_latency_ms_count",
            "driver=\"jdbc-ganglia\""
        ),
        Some(1.0)
    );
    // And the request-latency histogram saw all four requests.
    assert_eq!(
        sample_value(&samples, "gridrm_request_latency_ms_count", ""),
        Some(4.0)
    );
}

#[test]
fn traces_record_query_path_stages_in_order() {
    let gateway = world();
    run_workload(&gateway);
    let traces = gateway.telemetry().traces().recent();
    let roots: Vec<_> = traces
        .iter()
        .filter(|t| t.parent_span_id.is_none())
        .collect();
    assert_eq!(roots.len(), 4, "one root span per client request");

    // The first request went to the SNMP agent through the full path:
    // the root span holds the request-manager stages...
    let t = roots[0];
    assert_eq!(t.outcome, "ok");
    assert_eq!(t.source.as_deref(), Some(SNMP_URL));
    let stages: Vec<&str> = t.stages.iter().map(|s| s.stage.as_str()).collect();
    let pos = |name: &str| {
        stages
            .iter()
            .position(|s| *s == name)
            .unwrap_or_else(|| panic!("stage {name} missing from {stages:?}"))
    };
    assert!(
        pos("acil") < pos("handle"),
        "stages out of order: {stages:?}"
    );
    assert!(
        pos("handle") < pos("resolve"),
        "stages out of order: {stages:?}"
    );
    // Timestamps are monotone non-decreasing across the whole trace.
    assert!(t.stages.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    assert!(t.started_ms <= t.stages[0].at_ms);
    assert!(t.finished_ms >= t.stages[t.stages.len() - 1].at_ms);
    // The resolve stage names the winning driver.
    assert_eq!(
        t.stages[pos("resolve")].detail.as_deref(),
        Some("jdbc-snmp")
    );

    // ...while the per-driver work lives on a `driver_execute` child
    // span sharing the root's trace.
    let child = traces
        .iter()
        .find(|c| {
            c.parent_span_id.as_deref() == Some(t.span_id.as_str())
                && c.stages.iter().any(|s| s.stage == "driver_execute")
        })
        .expect("driver_execute child span");
    assert_eq!(child.trace_id, t.trace_id);
    let child_stages: Vec<&str> = child.stages.iter().map(|s| s.stage.as_str()).collect();
    let cpos = |name: &str| {
        child_stages
            .iter()
            .position(|s| *s == name)
            .unwrap_or_else(|| panic!("stage {name} missing from {child_stages:?}"))
    };
    let order = [
        cpos("checkout"),
        cpos("connect"),
        cpos("execute"),
        cpos("translate"),
    ];
    assert!(
        order.windows(2).all(|w| w[0] < w[1]),
        "child stages out of order: {child_stages:?}"
    );

    // The cache-served request records a cache hit and never resolves.
    let hit = roots[3];
    assert!(hit
        .stages
        .iter()
        .any(|s| s.stage == "cache_lookup" && s.detail.as_deref() == Some("hit")));
    assert!(!hit.stages.iter().any(|s| s.stage == "resolve"));
}

#[test]
fn sql_virtual_table_agrees_with_json_snapshot() {
    let gateway = world();
    run_workload(&gateway);

    // JSON exposition through the admin interface.
    let json = gateway.admin().metrics_json();
    assert!(json.contains("gridrm_requests_total"));
    let snapshot = gateway.admin().metrics_snapshot();
    let json_samples: Vec<Sample> = snapshot.into_iter().flat_map(|f| f.samples).collect();

    // The same counters via SQL over the virtual table — through the
    // normal driver path, like any other data source.
    let resp = gateway
        .query(&ClientRequest::realtime(
            "jdbc:telemetry://local/metrics",
            "SELECT name, labels, value FROM gridrm_telemetry \
             WHERE kind = 'counter' ORDER BY name, labels",
        ))
        .expect("telemetry query");
    assert!(!resp.rows.is_empty());
    for row in resp.rows.rows() {
        let name = row[0].to_string();
        let labels = row[1].to_string();
        let via_sql = row[2].as_f64().unwrap();
        // The SQL query itself is one more request, so skip the counters
        // it bumps between the JSON snapshot and the SQL read.
        if name.starts_with("gridrm_requests")
            || name.starts_with("gridrm_request_paths")
            || name.starts_with("gridrm_driver_resolutions")
            || name.starts_with("gridrm_pool")
        {
            continue;
        }
        let via_json = sample_value(&json_samples, &name, &labels)
            .unwrap_or_else(|| panic!("{name}{{{labels}}} missing from JSON snapshot"));
        assert_eq!(via_sql, via_json, "{name}{{{labels}}} disagrees");
    }
    // Spot-check the headline counter: the SQL read sees the 4 workload
    // requests plus itself.
    let req_row = resp
        .rows
        .rows()
        .iter()
        .find(|r| r[0].to_string() == "gridrm_requests_total")
        .expect("gridrm_requests_total row");
    assert_eq!(req_row[2].as_f64().unwrap(), 5.0);

    // Prometheus text exposition carries the same families.
    let prom = gateway.admin().metrics_prometheus();
    assert!(prom.contains("# TYPE gridrm_requests_total counter"));
    assert!(prom.contains("# TYPE gridrm_driver_latency_ms histogram"));
    assert!(prom.contains("gridrm_cache_events_total{event=\"hit\"} 1"));
}

#[test]
fn like_filter_over_virtual_table() {
    let gateway = world();
    run_workload(&gateway);
    let resp = gateway
        .query(&ClientRequest::realtime(
            "jdbc:telemetry://local/metrics",
            "SELECT name, value FROM gridrm_telemetry WHERE name LIKE 'gridrm_cache%'",
        ))
        .expect("LIKE query");
    assert!(!resp.rows.is_empty());
    assert!(resp
        .rows
        .rows()
        .iter()
        .all(|r| r[0].to_string().starts_with("gridrm_cache")));
}
