//! The live observability plane end to end: grid-level continuous
//! queries streaming exact deterministic deltas across the wire,
//! backpressure policies bounding slow subscribers with counters that
//! agree with delivered counts, subscriber churn mid-pump, and alerts
//! firing through the materialised-continuous-query path on every
//! surface (events, journal, SQL table, Prometheus).

use gridrm::dbc::{
    ColumnMeta, Connection, DbcResult, Driver, DriverMetaData, JdbcUrl, Properties, ResultSet,
    ResultSetMetaData, RowSet, SqlError, Statement,
};
use gridrm::prelude::*;
use gridrm::sqlparse::SqlType;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

const SQL: &str = "SELECT Hostname, Load1 FROM Processor ORDER BY Hostname EVERY 250";
const ALPHA_URL: &str = "jdbc:snmp://node00.alpha/public";
const BETA_URL: &str = "jdbc:snmp://node00.beta/public";

struct Grid {
    sites: Vec<Arc<SiteModel>>,
    gateways: Vec<Arc<Gateway>>,
    layers: Vec<Arc<GlobalLayer>>,
}

/// Two sites behind one directory, zero-latency links, models advanced
/// to the same virtual instant.
fn grid() -> Grid {
    let net = Network::new(SimClock::new(), 4242);
    let directory = GmaDirectory::new();
    let mut sites = Vec::new();
    let mut gateways = Vec::new();
    let mut layers = Vec::new();
    for (i, name) in ["alpha", "beta"].iter().enumerate() {
        let model = SiteModel::generate(900 + i as u64, &SiteSpec::new(name, 2, 3));
        model.advance_to(60_000);
        deploy_site(&net, model.clone());
        sites.push(model);
        let gateway = Gateway::new(GatewayConfig::new(&format!("gw-{name}"), name), net.clone());
        install_into_gateway(&gateway);
        layers.push(GlobalLayer::attach(gateway.clone(), directory.clone()));
        gateways.push(gateway);
    }
    Grid {
        sites,
        gateways,
        layers,
    }
}

/// Render a delta to a comparable line (everything deterministic).
fn render(d: &StreamDelta) -> String {
    format!(
        "{}@{} seq={} rows={} removed={} coalesced={}",
        d.origin,
        d.emitted_ms,
        d.seq,
        d.rows.len(),
        d.removed,
        d.coalesced
    )
}

/// Run the two-site streaming scenario once and transcribe every delta.
fn run_grid_scenario() -> Vec<String> {
    let g = grid();
    let clock = g.gateways[0].clock().clone();
    let spec = ClientRequest::builder(SQL)
        .sources(&[ALPHA_URL, BETA_URL])
        .subscribe();
    let sub = g.layers[0].subscribe(&spec).expect("grid subscribe");
    assert_eq!(sub.shares(), 2, "one local share, one remote share");
    assert!(sub.local.is_some());
    assert_eq!(sub.remotes.len(), 1);
    assert_eq!(sub.remotes[0].gateway, "gw-beta");

    let mut transcript = Vec::new();
    // Round 0: registration emitted the initial snapshot on both
    // gateways at the (virtual) instant of subscription.
    for d in g.layers[0].poll_deltas(&sub, 0).expect("initial poll") {
        transcript.push(render(&d));
    }
    // Rounds 1-3: advance virtual time one cadence at a time. Rounds 1
    // and 2 move the site models (loads change -> deltas); round 3
    // changes nothing, so the evaluations must emit nothing.
    for round in 1..=3u64 {
        clock.advance(250);
        if round < 3 {
            for site in &g.sites {
                site.advance_to(60_000 + round * 60_000);
            }
        }
        for gw in &g.gateways {
            gw.pump();
        }
        for d in g.layers[0].poll_deltas(&sub, 0).expect("poll") {
            transcript.push(render(&d));
        }
    }
    assert_eq!(g.layers[0].unsubscribe(&sub), 2, "both shares cancel");
    assert!(
        g.layers[0].poll_deltas(&sub, 0).is_err(),
        "polling a cancelled grid subscription errors"
    );
    transcript
}

#[test]
fn grid_subscription_streams_exact_deltas_across_the_wire() {
    let transcript = run_grid_scenario();
    // Initial snapshots at t=0 (subscribe time), one per share, merged
    // deterministically: same emit time -> origin order.
    assert_eq!(
        transcript[..2],
        [
            "local:gw-alpha@0 seq=1 rows=1 removed=0 coalesced=0",
            "local:gw-beta@0 seq=1 rows=1 removed=0 coalesced=0"
        ],
        "transcript: {transcript:#?}"
    );
    // Two changed rounds follow at exactly one cadence apart (a
    // modified row is one new row plus one removal); the unchanged
    // third round emitted nothing.
    assert_eq!(
        transcript[2..],
        [
            "local:gw-alpha@250 seq=2 rows=1 removed=1 coalesced=0",
            "local:gw-beta@250 seq=2 rows=1 removed=1 coalesced=0",
            "local:gw-alpha@500 seq=3 rows=1 removed=1 coalesced=0",
            "local:gw-beta@500 seq=3 rows=1 removed=1 coalesced=0",
        ],
        "transcript: {transcript:#?}"
    );
    // The whole scenario is bit-for-bit reproducible.
    assert_eq!(
        transcript,
        run_grid_scenario(),
        "scenario must be deterministic"
    );
}

#[test]
fn sql_every_clause_registers_a_subscription_and_explain_shows_stages() {
    let g = grid();
    // Plain `SELECT ... EVERY n` through the normal query path answers
    // with a subscription acknowledgement, not rows.
    let resp = g.gateways[0]
        .query(&ClientRequest::realtime(ALPHA_URL, SQL))
        .expect("subscribe via SQL");
    let meta = resp.rows.meta();
    assert!(meta.column_index("Subscription").is_ok());
    assert_eq!(resp.rows.len(), 1);
    let id = match resp.rows.rows()[0][0] {
        SqlValue::Int(n) => n as u64,
        ref other => panic!("expected subscription id, got {other:?}"),
    };
    assert_eq!(g.gateways[0].poll_deltas(id, 0).expect("poll").len(), 1);
    // The subscription is visible in the SQL surface and the admin JSON.
    let resp = g.gateways[0]
        .query(&ClientRequest::realtime(
            "jdbc:telemetry://local/metrics",
            "SELECT id, sql FROM gridrm_subscriptions",
        ))
        .expect("subscriptions table");
    assert_eq!(resp.rows.len(), 1);
    assert_eq!(
        resp.rows.rows()[0][1],
        SqlValue::Str("SELECT Hostname, Load1 FROM Processor ORDER BY Hostname ASC".into())
    );
    assert!(g.gateways[0]
        .admin()
        .subscriptions_json()
        .contains("\"id\": 1"));
    // EXPLAIN ANALYZE of a continuous query runs the full lifecycle and
    // renders the subscribe/delta/deliver stages.
    let resp = g.gateways[0]
        .query(&ClientRequest::realtime(
            ALPHA_URL,
            &format!("EXPLAIN ANALYZE {SQL}"),
        ))
        .expect("explain analyze");
    let rendered = format!("{:?}", resp.rows.rows());
    for stage in ["subscribe", "delta", "deliver"] {
        assert!(rendered.contains(stage), "missing {stage}: {rendered}");
    }
    // The temporary explain subscription was cancelled afterwards.
    assert_eq!(g.gateways[0].streams().subscriber_count(), 1);
}

// ---------------------------------------------------------------------
// A driver whose single row the test controls exactly, so emissions are
// forced (or suppressed) on demand.
// ---------------------------------------------------------------------

struct ValueDriver {
    value: Arc<AtomicI64>,
}

struct ValueConnection {
    url: JdbcUrl,
    value: Arc<AtomicI64>,
    closed: bool,
}

struct ValueStatement {
    value: Arc<AtomicI64>,
}

impl Driver for ValueDriver {
    fn meta(&self) -> DriverMetaData {
        DriverMetaData {
            name: "jdbc-value".to_owned(),
            subprotocol: "value".to_owned(),
            version: (0, 1),
            description: "test driver serving one controlled row".to_owned(),
        }
    }
    fn accepts_url(&self, url: &JdbcUrl) -> bool {
        url.subprotocol == "value"
    }
    fn connect(&self, url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
        Ok(Box::new(ValueConnection {
            url: url.clone(),
            value: self.value.clone(),
            closed: false,
        }))
    }
}

impl Connection for ValueConnection {
    fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
        Ok(Box::new(ValueStatement {
            value: self.value.clone(),
        }))
    }
    fn url(&self) -> &JdbcUrl {
        &self.url
    }
    fn is_closed(&self) -> bool {
        self.closed
    }
    fn close(&mut self) -> DbcResult<()> {
        self.closed = true;
        Ok(())
    }
}

impl Statement for ValueStatement {
    fn execute_query(&mut self, _sql: &str) -> DbcResult<Box<dyn ResultSet>> {
        let rows = RowSet::new(
            ResultSetMetaData::new(vec![ColumnMeta::new("V", SqlType::Int)]),
            vec![vec![SqlValue::Int(self.value.load(Ordering::SeqCst))]],
        )
        .map_err(|e| SqlError::Driver(e.to_string()))?;
        Ok(Box::new(rows))
    }
}

/// A gateway over the controllable driver plus the shared value cell.
fn value_gateway() -> (Arc<Gateway>, Arc<AtomicI64>, Arc<SimClock>) {
    let clock = SimClock::new();
    let net = Network::new(clock.clone(), 7);
    let gateway = Gateway::new(GatewayConfig::new("gw-v", "v"), net);
    let value = Arc::new(AtomicI64::new(1));
    gateway.driver_manager().register(Arc::new(ValueDriver {
        value: value.clone(),
    }));
    (gateway, value, clock)
}

#[test]
fn backpressure_policies_bound_buffers_and_counters_agree() {
    let (gateway, value, clock) = value_gateway();
    // Three capacity-1 subscribers (the tightest possible buffer), one
    // per policy, on three distinct standing queries.
    let subscribe = |path: &str, policy: BackpressurePolicy| {
        let spec = ClientRequest::builder("SELECT V FROM T EVERY 100")
            .source(&format!("jdbc:value://node/{path}"))
            .subscribe()
            .buffer(1)
            .backpressure(policy);
        gateway.subscribe(&spec).expect("subscribe")
    };
    let oldest = subscribe("a", BackpressurePolicy::DropOldest);
    let newest = subscribe("b", BackpressurePolicy::DropNewest);
    let merged = subscribe("c", BackpressurePolicy::Coalesce);

    // Registration buffered the snapshot delta (seq 1, V=1); four more
    // changed evaluations overflow the one-slot buffer four times.
    for round in 2..=5i64 {
        clock.advance(100);
        value.store(round, Ordering::SeqCst);
        gateway.pump();
    }

    // DropOldest keeps the freshest delta.
    let d = gateway.poll_deltas(oldest, 0).expect("poll oldest");
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].seq, 5);
    assert_eq!(d[0].rows.rows()[0][0], SqlValue::Int(5));
    // DropNewest keeps the original snapshot.
    let d = gateway.poll_deltas(newest, 0).expect("poll newest");
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].seq, 1);
    assert_eq!(d[0].rows.rows()[0][0], SqlValue::Int(1));
    // Coalesce merges all five emissions into one delta, nothing lost.
    let d = gateway.poll_deltas(merged, 0).expect("poll merged");
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].seq, 5);
    assert_eq!(d[0].coalesced, 4);
    let values: Vec<&SqlValue> = d[0].rows.rows().iter().map(|r| &r[0]).collect();
    assert_eq!(values.len(), 5, "coalesced rows accumulate");

    // The exposed drop counters agree with what each subscriber saw:
    // emitted == delivered + dropped on every row of the snapshot.
    for snap in gateway.streams().snapshot() {
        assert_eq!(
            snap.emitted,
            snap.delivered + snap.dropped,
            "subscription {}: {snap:?}",
            snap.id
        );
        assert_eq!(snap.pending, 0, "all buffers drained");
    }
    let stats = gateway.streams().stats();
    assert_eq!(stats.dropped_oldest.get(), 4);
    assert_eq!(stats.dropped_newest.get(), 4);
    assert_eq!(stats.dropped_coalesced.get(), 4);
    let prom = gateway.admin().metrics_prometheus();
    for line in [
        "gridrm_sub_dropped_total{policy=\"drop_oldest\"} 4",
        "gridrm_sub_dropped_total{policy=\"drop_newest\"} 4",
        "gridrm_sub_dropped_total{policy=\"coalesce\"} 4",
        "gridrm_sub_deltas_total 15",
    ] {
        assert!(prom.contains(line), "missing `{line}` in:\n{prom}");
    }
}

#[test]
fn coalesce_merges_non_adjacent_deltas() {
    let (gateway, value, clock) = value_gateway();
    let spec = ClientRequest::builder("SELECT V FROM T EVERY 100")
        .source("jdbc:value://node/x")
        .subscribe()
        .buffer(2)
        .backpressure(BackpressurePolicy::Coalesce);
    let id = gateway.subscribe(&spec).expect("subscribe");

    // seq 1 (snapshot, V=1) and seq 2 (V=2) fill the two slots.
    clock.advance(100);
    value.store(2, Ordering::SeqCst);
    gateway.pump();
    // An unchanged evaluation sits between the buffered delta and the
    // next emission: nothing is emitted, nothing merged.
    clock.advance(100);
    gateway.pump();
    assert_eq!(gateway.streams().pending(id), 2);
    // The next change must coalesce into seq 2 even though the two
    // emissions were not produced by adjacent evaluations.
    clock.advance(100);
    value.store(3, Ordering::SeqCst);
    gateway.pump();

    let d = gateway.poll_deltas(id, 0).expect("poll");
    assert_eq!(d.len(), 2);
    assert_eq!((d[0].seq, d[0].coalesced), (1, 0));
    assert_eq!(d[1].seq, 3, "merged delta carries the newest seq");
    assert_eq!(d[1].coalesced, 1);
    assert_eq!(
        d[1].rows.rows().iter().map(|r| &r[0]).collect::<Vec<_>>(),
        [&SqlValue::Int(2), &SqlValue::Int(3)],
        "non-adjacent emissions merged into one batch"
    );
}

#[test]
fn subscriber_churn_keeps_streams_consistent() {
    let (gateway, value, clock) = value_gateway();
    let spec = || {
        ClientRequest::builder("SELECT V FROM T EVERY 100")
            .source("jdbc:value://node/x")
            .subscribe()
    };
    let a = gateway.subscribe(&spec()).expect("subscribe a");
    let b = gateway.subscribe(&spec()).expect("subscribe b");
    assert_eq!(
        gateway.streams().standing_query_count(),
        1,
        "identical subscriptions share one standing query"
    );
    clock.advance(100);
    value.store(2, Ordering::SeqCst);
    gateway.pump();
    // Cancel `a` mid-stream; `b` keeps streaming without a gap.
    assert!(gateway.cancel_subscription(a));
    clock.advance(100);
    value.store(3, Ordering::SeqCst);
    gateway.pump();
    assert!(
        gateway.poll_deltas(a, 0).is_err(),
        "cancelled subscriptions cannot be polled"
    );
    let seqs: Vec<u64> = gateway
        .poll_deltas(b, 0)
        .expect("poll b")
        .iter()
        .map(|d| d.seq)
        .collect();
    assert_eq!(seqs, [1, 2, 3], "b saw every emission, gap-free");
    // A newcomer mid-stream starts from its own snapshot, and the
    // shared standing query survives the churn.
    let c = gateway.subscribe(&spec()).expect("subscribe c");
    assert_eq!(gateway.streams().standing_query_count(), 1);
    let d = gateway.poll_deltas(c, 0).expect("poll c");
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].seq, 1, "fresh subscriber gets a fresh snapshot");
    assert_eq!(d[0].rows.rows()[0][0], SqlValue::Int(3));
    assert_eq!(gateway.streams().subscriber_count(), 2);
    // The active gauge tracked the churn.
    assert!(gateway
        .admin()
        .metrics_prometheus()
        .contains("gridrm_subscriptions_active 2"));
}

#[test]
fn alert_fires_through_the_continuous_query_path_on_every_surface() {
    let net = Network::new(SimClock::new(), 11);
    let site = SiteModel::generate(31, &SiteSpec::new("alpha", 2, 3));
    site.advance_to(60_000);
    deploy_site(&net, site);
    let gateway = Gateway::new(GatewayConfig::new("gw-alpha", "alpha"), net);
    install_into_gateway(&gateway);
    let rule = AlertRule {
        name: "load-high".into(),
        group: "Processor".into(),
        attr: "Load1".into(),
        cmp: Comparison::Gt,
        threshold: -1.0, // always true: the rule fires on every row
        severity: Severity::Warning,
        category: "cpu.load.high".into(),
    };
    // The rule IS a query: the scanner evaluates exactly this SQL.
    assert_eq!(rule.to_sql(), "SELECT * FROM Processor WHERE Load1 > -1.0");
    gateway.alerts().add_rule(rule.clone());
    let (_listener, rx) = gateway.events().register_listener(ListenerFilter {
        category_prefix: Some("cpu.load".into()),
        min_severity: None,
        source: None,
    });

    // A fresh fetch runs the materialised rule over the harvested rows.
    let resp = gateway
        .query(&ClientRequest::realtime(
            ALPHA_URL,
            "SELECT Hostname, Load1 FROM Processor",
        ))
        .expect("realtime query");
    assert_eq!(resp.rows.len(), 1);
    gateway.pump(); // dispatch buffered events

    // Surface 1: the event stream.
    let event = rx.try_recv().expect("alert event delivered");
    assert_eq!(event.category, "cpu.load.high");
    assert_eq!(event.severity, Severity::Warning);
    // Surface 2: the structured journal.
    assert!(
        gateway
            .telemetry()
            .journal()
            .recent()
            .iter()
            .any(|e| e.kind == "event" && e.message == "cpu.load.high"),
        "alert reaches the journal"
    );
    // Surface 3: the SQL surface over the journal.
    let resp = gateway
        .query(&ClientRequest::realtime(
            "jdbc:telemetry://local/metrics",
            "SELECT message FROM gridrm_journal WHERE message = 'cpu.load.high'",
        ))
        .expect("journal table");
    assert!(!resp.rows.is_empty());
    // Surface 4: Prometheus exposition.
    let prom = gateway.admin().metrics_prometheus();
    assert!(prom.contains("gridrm_events_total{stage=\"ingested\"}"));
    assert!(prom.contains("gridrm_journal_entries_total{severity=\"warning\"}"));

    // And the same rule stands up as a continuous query whose deltas
    // are the firings.
    assert_eq!(
        rule.to_continuous_sql(250),
        "SELECT * FROM Processor WHERE Load1 > -1.0 EVERY 250"
    );
    let spec = ClientRequest::builder(&rule.to_continuous_sql(250))
        .source(ALPHA_URL)
        .subscribe();
    let id = gateway.subscribe(&spec).expect("alert subscription");
    let deltas = gateway.poll_deltas(id, 0).expect("poll");
    assert_eq!(deltas.len(), 1, "the firing row arrives as a delta");
    assert_eq!(deltas[0].rows.len(), 1);
}
