//! Cross-gateway hierarchical tracing: one `trace_id` must span a
//! Global-layer fan-out, child spans must carry the site they ran on,
//! and `EXPLAIN ANALYZE` must answer with a rowset reconstructing the
//! exact same rooted span tree that the `gridrm_spans` virtual table
//! and the Admin JSON expose.

use gridrm::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// Two sites, each with its own agent population and gateway, joined by
/// a shared GMA directory.
fn grid() -> Vec<(Arc<Gateway>, Arc<GlobalLayer>)> {
    let net = Network::new(SimClock::new(), 4242);
    let directory = GmaDirectory::new();
    ["alpha", "beta"]
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let model = SiteModel::generate(500 + i as u64, &SiteSpec::new(name, 3, 4));
            model.advance_to(180_000);
            deploy_site(&net, model);
            let gateway =
                Gateway::new(GatewayConfig::new(&format!("gw-{name}"), name), net.clone());
            install_into_gateway(&gateway);
            let layer = GlobalLayer::attach(gateway.clone(), directory.clone());
            (gateway, layer)
        })
        .collect()
}

const ALPHA_URL: &str = "jdbc:snmp://node00.alpha/public";
const BETA_URL: &str = "jdbc:snmp://node00.beta/public";
const SQL: &str = "SELECT Hostname, Load1 FROM Processor";

#[test]
fn one_trace_spans_the_global_fanout() {
    let g = grid();
    let (gateway, layer) = &g[0];
    layer
        .query(
            &ClientRequest::builder(SQL)
                .sources(&[ALPHA_URL, BETA_URL])
                .build(),
        )
        .unwrap();

    // The fan-out root lives in alpha's buffer with no parent.
    let traces = gateway.telemetry().traces().recent();
    let root = traces
        .iter()
        .find(|t| t.parent_span_id.is_none() && t.request == SQL)
        .expect("fan-out root span");
    assert_eq!(root.site, "alpha");
    let spans = gateway.telemetry().traces().for_trace(&root.trace_id);
    assert!(
        spans.len() >= 4,
        "expected a real tree, got {}",
        spans.len()
    );

    // Every span shares the trace and every parent resolves within it.
    let ids: HashSet<&str> = spans.iter().map(|s| s.span_id.as_str()).collect();
    for s in &spans {
        assert_eq!(s.trace_id, root.trace_id);
        if let Some(parent) = &s.parent_span_id {
            assert!(ids.contains(parent.as_str()), "orphan parent {parent}");
        }
    }

    // The remote half was imported: spans minted by beta's gateway carry
    // beta's site stamp; alpha's carry alpha's.
    assert!(spans
        .iter()
        .any(|s| s.span_id.starts_with("gw-beta:") && s.site == "beta"));
    assert!(spans
        .iter()
        .all(|s| !s.span_id.starts_with("gw-alpha:") || s.site == "alpha"));

    // Both fan-out segments landed in the per-site latency histogram.
    let samples = gateway.telemetry().registry().samples();
    for site in ["alpha", "beta"] {
        let labels = format!("site=\"{site}\"");
        assert!(
            samples
                .iter()
                .any(|s| s.name == "gridrm_site_latency_ms_count" && s.labels == labels),
            "no latency sample for {site}"
        );
    }
}

#[test]
fn explain_analyze_reconstructs_the_span_tree() {
    let g = grid();
    let (gateway, layer) = &g[0];
    let resp = layer
        .query(
            &ClientRequest::builder(&format!("EXPLAIN ANALYZE {SQL}"))
                .sources(&[ALPHA_URL, BETA_URL])
                .build(),
        )
        .unwrap();
    assert!(resp.warnings.is_empty(), "warnings: {:?}", resp.warnings);

    // Columns: trace_id, span_id, parent_span_id, site, depth, request,
    // source, started_ms, finished_ms, duration_ms, outcome, stages.
    let rows = resp.rows.rows();
    assert!(
        rows.len() >= 5,
        "expected a real tree, got {} rows",
        rows.len()
    );
    let trace_id = rows[0][0].to_string();
    let ids: HashSet<String> = rows.iter().map(|r| r[1].to_string()).collect();
    let mut roots = 0;
    for row in rows {
        assert_eq!(row[0].to_string(), trace_id, "one trace per EXPLAIN");
        match &row[2] {
            v if v.is_null() => roots += 1,
            parent => assert!(ids.contains(&parent.to_string()), "orphan {parent}"),
        }
        // ANALYZE renders real timings.
        assert!(!row[9].is_null(), "duration missing");
    }
    assert_eq!(roots, 1, "exactly one root: the EXPLAIN span");

    // At least one driver-resolution span names the accepts_url
    // candidates it tried, and at least one GLUE-translation span lists
    // what the mapping dropped.
    let stages: Vec<String> = rows.iter().map(|r| r[11].to_string()).collect();
    assert!(
        stages
            .iter()
            .any(|s| s.contains("resolve_candidate") && s.contains("accepts_url")),
        "no resolution span in {stages:?}"
    );
    assert!(
        stages
            .iter()
            .any(|s| s.contains("glue_translate") && s.contains("dropped")),
        "no glue span in {stages:?}"
    );
    // Spans from both sites appear in the tree.
    let sites: HashSet<String> = rows.iter().map(|r| r[3].to_string()).collect();
    assert!(
        sites.contains("alpha") && sites.contains("beta"),
        "{sites:?}"
    );

    // The row count matches the span tree everywhere it is exposed:
    // the trace buffer, the Admin JSON, and the gridrm_spans table.
    let buffered = gateway.telemetry().traces().for_trace(&trace_id);
    assert_eq!(rows.len(), buffered.len());
    let admin_spans = gateway.admin().trace_spans(&trace_id);
    assert_eq!(rows.len(), admin_spans.len());
    let json = gateway.admin().trace_spans_json(&trace_id);
    assert!(json.contains(&trace_id));
    let via_sql = gateway
        .query(&ClientRequest::realtime(
            "jdbc:telemetry://local/metrics",
            &format!(
                "SELECT span_id, parent_span_id FROM gridrm_spans WHERE trace_id = '{trace_id}'"
            ),
        ))
        .unwrap();
    assert_eq!(via_sql.rows.len(), rows.len());
}

#[test]
fn plain_explain_skips_timings_but_keeps_the_plan() {
    let g = grid();
    let (_gateway, layer) = &g[0];
    let resp = layer
        .query(&ClientRequest::realtime(
            ALPHA_URL,
            &format!("EXPLAIN {SQL}"),
        ))
        .unwrap();
    let rows = resp.rows.rows();
    assert!(!rows.is_empty());
    // Plan mode: timing columns are NULL, stage offsets are omitted.
    for row in rows {
        assert!(row[7].is_null() && row[8].is_null() && row[9].is_null());
    }
    assert!(rows
        .iter()
        .any(|r| r[11].to_string().contains("resolve_chosen")));
}
