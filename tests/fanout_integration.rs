//! The parallel fan-out query engine end to end: latency ≈ max(site)
//! rather than sum(site), deadline budgets, partial-results policies,
//! overlapping segment spans, the `QueryExecutor` abstraction, and
//! single-flight coalescing of identical concurrent queries.

use gridrm::dbc::{
    Connection, DbcResult, Driver, DriverMetaData, JdbcUrl, Properties, ResultSet, RowSet,
    SqlError, Statement,
};
use gridrm::prelude::*;
use gridrm::simnet::Latency;
use gridrm::sqlparse::{SqlType, SqlValue};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

const SQL: &str = "SELECT Hostname, Load1 FROM Processor ORDER BY Hostname";
const ALPHA_URL: &str = "jdbc:snmp://node00.alpha/public";
const BETA_URL: &str = "jdbc:snmp://node00.beta/public";
const GAMMA_URL: &str = "jdbc:snmp://node00.gamma/public";

struct Grid {
    net: Arc<Network>,
    gateways: Vec<Arc<Gateway>>,
    layers: Vec<Arc<GlobalLayer>>,
}

/// Three sites behind one directory, with `wan_ms` of one-way latency on
/// every inter-gateway link.
fn grid(wan_ms: u64) -> Grid {
    let net = Network::new(SimClock::new(), 4242);
    let directory = GmaDirectory::new();
    let mut gateways = Vec::new();
    let mut layers = Vec::new();
    for (i, name) in ["alpha", "beta", "gamma"].iter().enumerate() {
        let model = SiteModel::generate(900 + i as u64, &SiteSpec::new(name, 2, 3));
        model.advance_to(120_000);
        deploy_site(&net, model);
        let gateway = Gateway::new(GatewayConfig::new(&format!("gw-{name}"), name), net.clone());
        install_into_gateway(&gateway);
        layers.push(GlobalLayer::attach(gateway.clone(), directory.clone()));
        gateways.push(gateway);
    }
    if wan_ms > 0 {
        for a in ["gw.alpha:gma", "gw.beta:gma", "gw.gamma:gma"] {
            for b in ["gw.alpha:gma", "gw.beta:gma", "gw.gamma:gma"] {
                if a != b {
                    net.set_latency(a, b, Latency::ms(wan_ms, 0));
                }
            }
        }
    }
    Grid {
        net,
        gateways,
        layers,
    }
}

fn all_sources_request() -> ClientRequest {
    ClientRequest::builder(SQL)
        .sources(&[ALPHA_URL, BETA_URL, GAMMA_URL])
        .build()
}

#[test]
fn parallel_fanout_costs_the_slowest_segment_not_the_sum() {
    let g = grid(40); // 80 ms RTT per remote gateway
    let clock = g.gateways[0].clock();

    let before = clock.now_millis();
    let resp = g.layers[0].query(&all_sources_request()).unwrap();
    let parallel_ms = clock.now_millis() - before;
    assert_eq!(resp.rows.len(), 3);
    assert_eq!(resp.sources_ok, 3);
    // Two remote segments of 80 ms each ran side by side: the query cost
    // one RTT, not two.
    assert_eq!(parallel_ms, 80, "parallel fan-out should cost max(site)");

    g.layers[0].set_parallel_fanout(false);
    let before = clock.now_millis();
    let resp = g.layers[0].query(&all_sources_request()).unwrap();
    let sequential_ms = clock.now_millis() - before;
    assert_eq!(resp.rows.len(), 3);
    assert_eq!(
        sequential_ms, 160,
        "sequential fan-out should cost sum(site)"
    );
}

#[test]
fn deadline_budget_drops_segments_that_answer_too_late() {
    let g = grid(40); // each remote segment costs 80 ms
    let request = ClientRequest::builder(SQL)
        .sources(&[ALPHA_URL, BETA_URL, GAMMA_URL])
        .deadline_ms(50)
        .build();
    let resp = g.layers[0].query(&request).unwrap();
    // Best effort: the local row survives, the remote answers landed
    // after the 50 ms budget and were dropped.
    assert_eq!(resp.rows.len(), 1);
    assert_eq!(resp.sources_ok, 1);
    let timeouts: Vec<&SourceOutcome> = resp
        .outcomes
        .iter()
        .filter(|o| o.status == OutcomeStatus::Timeout)
        .collect();
    assert_eq!(timeouts.len(), 2, "outcomes: {:?}", resp.outcomes);
    for t in &timeouts {
        assert_eq!(t.elapsed_ms, 50, "caller stops waiting at the budget");
    }
    assert_eq!(g.layers[0].stats().segments_deadline_exceeded.get(), 2);
    // A roomier budget lets everything through.
    let request = ClientRequest::builder(SQL)
        .sources(&[ALPHA_URL, BETA_URL, GAMMA_URL])
        .deadline_ms(100)
        .build();
    assert_eq!(g.layers[0].query(&request).unwrap().sources_ok, 3);
}

#[test]
fn fail_fast_aborts_remaining_segments() {
    let g = grid(0);
    g.net.set_down("gw.beta:gma", true);
    let request = ClientRequest::builder(SQL)
        .sources(&[ALPHA_URL, BETA_URL, GAMMA_URL])
        .policy(ResultPolicy::FailFast)
        .build();
    let err = g.layers[0].query(&request).expect_err("fail-fast errors");
    assert!(err.to_string().contains("down"), "{err}");
    // Segments run local-first then by gateway name: beta failed, so
    // gamma was never dispatched.
    assert_eq!(
        g.net
            .stats_for("gw.alpha:gma", "gw.gamma:gma")
            .snapshot()
            .requests,
        0,
        "fail-fast should skip the gamma segment"
    );
    // Best effort on the same grid still answers with what it can get.
    let resp = g.layers[0].query(&all_sources_request()).unwrap();
    assert_eq!(resp.rows.len(), 2);
    assert_eq!(resp.sources_ok, 2);
}

#[test]
fn quorum_policy_requires_enough_sources() {
    let g = grid(0);
    g.net.set_down("gw.beta:gma", true);
    let quorum = |n| {
        g.layers[0].query(
            &ClientRequest::builder(SQL)
                .sources(&[ALPHA_URL, BETA_URL, GAMMA_URL])
                .policy(ResultPolicy::Quorum(n))
                .build(),
        )
    };
    let err = quorum(3).expect_err("beta is down, quorum of 3 fails");
    assert_eq!(
        err.to_string(),
        "driver error: quorum not met: 2/3 sources answered"
    );
    let resp = quorum(2).expect("two of three sources suffice");
    assert_eq!(resp.sources_ok, 2);
}

#[test]
fn concurrent_segment_spans_overlap_in_explain_analyze() {
    let g = grid(40);
    // Both sources are remote from alpha: two 80 ms segments.
    let resp = g.layers[0]
        .query(
            &ClientRequest::builder(&format!("EXPLAIN ANALYZE {SQL}"))
                .sources(&[BETA_URL, GAMMA_URL])
                .build(),
        )
        .unwrap();
    let meta = resp.rows.meta();
    let col = |name: &str| {
        meta.columns()
            .iter()
            .position(|c| c.name == name)
            .unwrap_or_else(|| panic!("no column {name}"))
    };
    let (req_col, start_col, finish_col) = (col("request"), col("started_ms"), col("finished_ms"));
    let ms = |v: &SqlValue| match v {
        SqlValue::Int(n) => *n,
        other => panic!("expected integer timestamp, got {other:?}"),
    };
    let segments: Vec<(i64, i64)> = resp
        .rows
        .rows()
        .iter()
        .filter(|r| r[req_col].to_string().starts_with("segment:"))
        .map(|r| (ms(&r[start_col]), ms(&r[finish_col])))
        .collect();
    assert_eq!(segments.len(), 2, "one span per remote segment");
    let (a, b) = (segments[0], segments[1]);
    assert!(a.1 > a.0 && b.1 > b.0, "segments took time: {a:?} {b:?}");
    assert!(
        a.0 < b.1 && b.0 < a.1,
        "remote segments should overlap in time: {a:?} vs {b:?}"
    );
}

#[test]
fn query_executor_unifies_local_and_grid_clients() {
    // The same client helper runs against a single gateway or the whole
    // Grid; only the scope string tells them apart.
    fn hosts_via(executor: &dyn QueryExecutor, sources: &[&str]) -> usize {
        let request = ClientRequest::builder(SQL).sources(sources).build();
        executor.execute(&request).expect("query failed").rows.len()
    }

    let g = grid(0);
    let gateway: &Gateway = &g.gateways[0];
    let layer: &GlobalLayer = &g.layers[0];
    assert_eq!(QueryExecutor::scope(gateway), "local:gw-alpha");
    assert_eq!(QueryExecutor::scope(layer), "grid:gw-alpha");
    assert_eq!(hosts_via(gateway, &[ALPHA_URL]), 1);
    assert_eq!(hosts_via(layer, &[ALPHA_URL, BETA_URL, GAMMA_URL]), 3);
}

// ---------------------------------------------------------------------
// Single-flight coalescing: a driver that blocks until released, so two
// OS threads can genuinely overlap on one gateway.
// ---------------------------------------------------------------------

#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }
    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

struct BlockingDriver {
    gate: Arc<Gate>,
    executions: Arc<AtomicUsize>,
}

struct BlockingConnection {
    url: JdbcUrl,
    gate: Arc<Gate>,
    executions: Arc<AtomicUsize>,
    closed: bool,
}

struct BlockingStatement {
    gate: Arc<Gate>,
    executions: Arc<AtomicUsize>,
}

impl Driver for BlockingDriver {
    fn meta(&self) -> DriverMetaData {
        DriverMetaData {
            name: "jdbc-block".to_owned(),
            subprotocol: "block".to_owned(),
            version: (0, 1),
            description: "test driver that blocks until released".to_owned(),
        }
    }
    fn accepts_url(&self, url: &JdbcUrl) -> bool {
        url.subprotocol == "block"
    }
    fn connect(&self, url: &JdbcUrl, _props: &Properties) -> DbcResult<Box<dyn Connection>> {
        Ok(Box::new(BlockingConnection {
            url: url.clone(),
            gate: self.gate.clone(),
            executions: self.executions.clone(),
            closed: false,
        }))
    }
}

impl Connection for BlockingConnection {
    fn create_statement(&mut self) -> DbcResult<Box<dyn Statement>> {
        Ok(Box::new(BlockingStatement {
            gate: self.gate.clone(),
            executions: self.executions.clone(),
        }))
    }
    fn url(&self) -> &JdbcUrl {
        &self.url
    }
    fn is_closed(&self) -> bool {
        self.closed
    }
    fn close(&mut self) -> DbcResult<()> {
        self.closed = true;
        Ok(())
    }
}

impl Statement for BlockingStatement {
    fn execute_query(&mut self, _sql: &str) -> DbcResult<Box<dyn ResultSet>> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        self.gate.wait();
        let rows = RowSet::new(
            gridrm::dbc::ResultSetMetaData::new(vec![
                gridrm::dbc::ColumnMeta::new("Hostname", SqlType::Str),
                gridrm::dbc::ColumnMeta::new("Load1", SqlType::Float),
            ]),
            vec![vec![
                SqlValue::Str("slow-node".into()),
                SqlValue::Float(0.7),
            ]],
        )
        .map_err(|e| SqlError::Driver(e.to_string()))?;
        Ok(Box::new(rows))
    }
}

#[test]
fn identical_concurrent_queries_coalesce_into_one_fetch() {
    let net = Network::new(SimClock::new(), 7);
    let gateway = Gateway::new(GatewayConfig::new("gw-co", "co"), net);
    let gate = Arc::new(Gate::default());
    let executions = Arc::new(AtomicUsize::new(0));
    gateway.driver_manager().register(Arc::new(BlockingDriver {
        gate: gate.clone(),
        executions: executions.clone(),
    }));

    let source = "jdbc:block://node00.co/x";
    let sql = "SELECT Hostname, Load1 FROM Processor";
    let run = |gw: Arc<Gateway>| {
        thread::spawn(move || {
            gw.query(&ClientRequest::builder(sql).source(source).build())
                .expect("query failed")
        })
    };

    let leader = run(gateway.clone());
    // Wait until the leader is inside the (blocked) driver call.
    while executions.load(Ordering::SeqCst) == 0 {
        thread::yield_now();
    }
    let follower = run(gateway.clone());
    // Wait until the follower has joined the in-flight query.
    while gateway.request_manager().inflight_waiters(source, sql) == 0 {
        thread::yield_now();
    }
    gate.release();
    let lead_resp = leader.join().unwrap();
    let follow_resp = follower.join().unwrap();

    assert_eq!(lead_resp.rows.len(), 1);
    assert_eq!(follow_resp.rows.len(), 1);
    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "one physical fetch for two identical queries"
    );
    let snap = gateway.request_manager().stats().snapshot();
    assert_eq!(snap.realtime_fetches, 1);
    assert_eq!(snap.coalesced_hits, 1);
    // Exactly one of the two responses carries the coalesced marker.
    let statuses: Vec<OutcomeStatus> = [&lead_resp, &follow_resp]
        .iter()
        .flat_map(|r| r.outcomes.iter().map(|o| o.status))
        .collect();
    assert_eq!(
        statuses
            .iter()
            .filter(|s| **s == OutcomeStatus::Coalesced)
            .count(),
        1,
        "statuses: {statuses:?}"
    );
    assert!(statuses.contains(&OutcomeStatus::Ok));
}
