//! Regression guard: the whole simulated world is a pure function of its
//! seeds. Every experiment in EXPERIMENTS.md depends on this.

use gridrm::core::events::ListenerFilter;
use gridrm::prelude::*;

/// Run a non-trivial scenario end to end and fingerprint everything
/// observable: query results, event streams, history contents, traffic
/// counters.
fn fingerprint(seed: u64) -> String {
    let net = Network::new(SimClock::new(), seed);
    let mut spec = SiteSpec::new("det", 3, 4);
    spec.peers = vec!["node00.far".to_owned()];
    let site = SiteModel::generate(seed ^ 0xABCD, &spec);
    site.advance_to(300_000);
    let agents = deploy_site(&net, site.clone());
    let gateway = Gateway::new(GatewayConfig::new("gw-det", "det"), net.clone());
    gridrm::drivers::install_into_gateway(&gateway);

    gateway.alerts().add_rule(AlertRule {
        name: "hot".into(),
        group: "Processor".into(),
        attr: "Load1".into(),
        cmp: Comparison::Gt,
        threshold: 2.5,
        severity: Severity::Critical,
        category: "cpu.hot".into(),
    });
    for a in &agents.snmp {
        a.set_trap_sink(net.clone(), "gw.det", 3.0);
    }
    let (_, rx) = gateway
        .events()
        .register_listener(ListenerFilter::default());

    let mut out = String::new();
    // A lossy link makes determinism of the RNG observable too.
    net.set_drop_rate("gw.det", "node02.det:snmp", 0.3);

    for step in 1..=6u64 {
        site.advance_to(300_000 + step * 30_000);
        if step == 3 {
            site.inject_load_spike("node01.det", 9.0);
        }
        for src in [
            "jdbc:snmp://node00.det/public",
            "jdbc:snmp://node02.det/public", // lossy
            "jdbc:ganglia://node00.det/det?ttl=15000",
            "jdbc:nws://node00.det/perf",
        ] {
            match gateway.query(&ClientRequest::realtime(
                src,
                "SELECT * FROM Processor ORDER BY Hostname",
            )) {
                Ok(resp) => out.push_str(&resp.rows.to_table_string()),
                Err(e) => out.push_str(&format!("ERR {src}: {e}\n")),
            }
        }
        agents.pump();
        gateway.pump();
        for e in rx.try_iter() {
            out.push_str(&format!(
                "EV {} {} {:?}\n",
                e.category,
                e.severity.name(),
                e.value
            ));
        }
    }
    // History fingerprint.
    let hist = gateway
        .query(&ClientRequest::historical(
            "SELECT COUNT(*), SUM(num) FROM history WHERE attr = 'Load1'",
        ))
        .unwrap();
    out.push_str(&hist.rows.to_table_string());
    // Traffic fingerprint.
    for addr in ["node00.det:snmp", "node00.det:ganglia", "node00.det:nws"] {
        let s = net.endpoint_stats(addr).unwrap().snapshot();
        out.push_str(&format!(
            "{addr} {} {}\n",
            s.requests_served, s.bytes_served
        ));
    }
    out
}

#[test]
fn identical_seeds_identical_worlds() {
    let a = fingerprint(0xC0FFEE);
    let b = fingerprint(0xC0FFEE);
    assert_eq!(a, b, "simulation is not deterministic");
    assert!(a.len() > 1000, "fingerprint suspiciously small");
}

/// A multi-site Grid with *jittered* WAN latency, queried through the
/// parallel fan-out engine: rows, per-source outcomes, segment metrics
/// and the virtual clock itself must all replay byte-identically.
fn grid_fingerprint(seed: u64) -> String {
    let net = Network::new(SimClock::new(), seed);
    let directory = GmaDirectory::new();
    let mut layers = Vec::new();
    for (i, name) in ["east", "west", "south"].iter().enumerate() {
        let site = SiteModel::generate(seed + i as u64, &SiteSpec::new(name, 2, 3));
        site.advance_to(90_000);
        deploy_site(&net, site);
        let gateway = Gateway::new(GatewayConfig::new(&format!("gw-{name}"), name), net.clone());
        gridrm::drivers::install_into_gateway(&gateway);
        layers.push(GlobalLayer::attach(gateway, directory.clone()));
    }
    let gmas = ["gw.east:gma", "gw.west:gma", "gw.south:gma"];
    for a in gmas {
        for b in gmas {
            if a != b {
                net.set_latency(a, b, gridrm::simnet::Latency::ms(25, 15));
            }
        }
    }
    // An unreliable remote endpoint makes RNG-order regressions visible.
    net.set_drop_rate("gw.east:gma", "gw.south:gma", 0.4);

    let mut out = String::new();
    for _round in 0..4 {
        let request =
            ClientRequest::builder("SELECT Hostname, Load1 FROM Processor ORDER BY Hostname")
                .sources(&[
                    "jdbc:snmp://node00.east/public",
                    "jdbc:snmp://node00.west/public",
                    "jdbc:snmp://node00.south/public",
                ])
                .deadline_ms(500)
                .build();
        match layers[0].query(&request) {
            Ok(resp) => {
                out.push_str(&resp.rows.to_table_string());
                for o in &resp.outcomes {
                    out.push_str(&format!(
                        "OUT {} {} {}ms {:?}\n",
                        o.source,
                        o.status.name(),
                        o.elapsed_ms,
                        o.detail
                    ));
                }
            }
            Err(e) => out.push_str(&format!("ERR {e}\n")),
        }
        out.push_str(&format!("t={}\n", layers[0].gateway().clock().now_millis()));
    }
    let s = layers[0].stats().snapshot();
    out.push_str(&format!(
        "segments ok={} err={} deadline={}\n",
        s.segments_ok, s.segments_error, s.segments_deadline_exceeded
    ));
    out
}

#[test]
fn parallel_fanout_with_jittered_wan_is_deterministic() {
    let a = grid_fingerprint(0xFA0);
    let b = grid_fingerprint(0xFA0);
    assert_eq!(a, b, "parallel fan-out broke determinism");
    assert!(a.contains("t="), "fingerprint should include the clock");
    assert_ne!(a, grid_fingerprint(0xFA1), "seed should matter");
}

#[test]
fn different_seeds_different_worlds() {
    let a = fingerprint(1);
    let b = fingerprint(2);
    assert_ne!(a, b);
}
