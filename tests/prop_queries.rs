//! Property-based end-to-end tests: for arbitrary query parameters, the
//! driver pipeline (native fetch → GLUE translation → SELECT execution)
//! agrees with a reference computation over the full unfiltered result.

use gridrm::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn world() -> (Arc<SiteModel>, Arc<Gateway>) {
    let net = Network::new(SimClock::new(), 4242);
    let site = SiteModel::generate(9, &SiteSpec::new("pp", 6, 4));
    site.advance_to(240_000);
    deploy_site(&net, site.clone());
    let gateway = Gateway::new(GatewayConfig::new("gw-pp", "pp"), net);
    gridrm::drivers::install_into_gateway(&gateway);
    (site, gateway)
}

fn full_load_table(gateway: &Gateway) -> Vec<(String, f64)> {
    let resp = gateway
        .query(&ClientRequest::realtime(
            "jdbc:ganglia://node00.pp/pp?ttl=600000",
            "SELECT Hostname, Load1 FROM Processor",
        ))
        .unwrap();
    resp.rows
        .rows()
        .iter()
        .map(|r| (r[0].to_string(), r[1].as_f64().unwrap()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// WHERE Load1 > t through the driver == manual filter of the full set.
    /// (The long TTL keeps every query on one cached snapshot, so the
    /// reference and the filtered query see identical data.)
    #[test]
    fn where_threshold_agrees_with_reference(threshold in 0.0f64..3.0) {
        let (_site, gateway) = world();
        let reference = full_load_table(&gateway);
        let expected: usize = reference.iter().filter(|(_, l)| *l > threshold).count();
        let resp = gateway
            .query(&ClientRequest::realtime(
                "jdbc:ganglia://node00.pp/pp?ttl=600000",
                &format!("SELECT Hostname FROM Processor WHERE Load1 > {threshold}"),
            ))
            .unwrap();
        prop_assert_eq!(resp.rows.len(), expected);
    }

    /// ORDER BY + LIMIT returns the top-k of the reference ordering.
    #[test]
    fn order_limit_agrees_with_reference(k in 1usize..6) {
        let (_site, gateway) = world();
        let mut reference = full_load_table(&gateway);
        reference.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let resp = gateway
            .query(&ClientRequest::realtime(
                "jdbc:ganglia://node00.pp/pp?ttl=600000",
                &format!("SELECT Hostname, Load1 FROM Processor ORDER BY Load1 DESC LIMIT {k}"),
            ))
            .unwrap();
        prop_assert_eq!(resp.rows.len(), k.min(reference.len()));
        for (i, row) in resp.rows.rows().iter().enumerate() {
            prop_assert_eq!(row[0].to_string(), reference[i].0.clone());
        }
    }

    /// Aggregates via the driver match manual aggregation.
    #[test]
    fn aggregate_agrees_with_reference(use_avg in any::<bool>()) {
        let (_site, gateway) = world();
        let reference = full_load_table(&gateway);
        let expected = if use_avg {
            reference.iter().map(|(_, l)| l).sum::<f64>() / reference.len() as f64
        } else {
            reference.iter().map(|(_, l)| *l).fold(f64::MIN, f64::max)
        };
        let agg = if use_avg { "AVG(Load1)" } else { "MAX(Load1)" };
        let resp = gateway
            .query(&ClientRequest::realtime(
                "jdbc:ganglia://node00.pp/pp?ttl=600000",
                &format!("SELECT {agg} FROM Processor"),
            ))
            .unwrap();
        let got = resp.rows.rows()[0][0].as_f64().unwrap();
        prop_assert!((got - expected).abs() < 1e-9, "{} vs {}", got, expected);
    }

    /// Lazy and eager Ganglia parsing agree for arbitrary projections.
    #[test]
    fn lazy_eager_projection_agreement(cols in prop::sample::subsequence(
        vec!["Hostname", "NCpu", "Load1", "Load5", "CpuIdle", "ClockMHz"], 1..5))
    {
        let (_site, gateway) = world();
        let projection = cols.join(", ");
        let sql = format!("SELECT {projection} FROM Processor ORDER BY Hostname");
        let eager = gateway
            .query(&ClientRequest::realtime("jdbc:ganglia://node00.pp/pp?ttl=600000&parse=eager", &sql))
            .unwrap();
        let lazy = gateway
            .query(&ClientRequest::realtime("jdbc:ganglia://node00.pp/pp?ttl=600000&parse=lazy", &sql))
            .unwrap();
        prop_assert_eq!(eager.rows.rows(), lazy.rows.rows());
    }

    /// Random-threshold alert rules fire exactly where a manual scan says.
    #[test]
    fn alert_rules_fire_consistently(threshold in 0.0f64..2.0) {
        let (_site, gateway) = world();
        let reference = full_load_table(&gateway);
        let expected = reference.iter().filter(|(_, l)| *l > threshold).count();
        gateway.alerts().add_rule(AlertRule {
            name: "prop-rule".into(),
            group: "Processor".into(),
            attr: "Load1".into(),
            cmp: Comparison::Gt,
            threshold,
            severity: Severity::Warning,
            category: "prop.load".into(),
        });
        let (_, rx) = gateway.events().register_listener(ListenerFilter::default());
        gateway
            .query(&ClientRequest::realtime(
                "jdbc:ganglia://node00.pp/pp?ttl=600000",
                "SELECT Hostname, Load1 FROM Processor",
            ))
            .unwrap();
        gateway.pump();
        prop_assert_eq!(rx.try_iter().count(), expected);
    }
}
