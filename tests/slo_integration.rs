//! SLO burn-rate engine end-to-end: an induced WAN latency regression
//! between two Grid sites must burn the latency SLO's error budget,
//! fire the alert at an exact virtual timestamp, and clear it once the
//! bad samples age out of the slow window — with the same facts visible
//! through every surface: the `gridrm_slo` virtual SQL table, the
//! structured journal, the Prometheus gauges, the alert-event stream,
//! and the Global-layer per-site rollup.
//!
//! Plain simnet requests do not advance the virtual clock; Global-layer
//! fan-out segments do (they charge the sampled RTT and record it in
//! `gridrm_site_latency_ms`), so the SLO under test is declared over
//! that histogram and the workload is cross-site queries.

use gridrm::prelude::*;
use gridrm::telemetry::KIND_SLO;
use std::sync::Arc;

const LOCAL_URL: &str = "jdbc:snmp://node01.alpha/public";
const REMOTE_URL: &str = "jdbc:snmp://node01.beta/public";
const TELEMETRY_URL: &str = "jdbc:telemetry://local/metrics";

struct Grid {
    net: Arc<Network>,
    alpha: Arc<Gateway>,
    layer: Arc<GlobalLayer>,
    _beta: Arc<Gateway>,
    _beta_layer: Arc<GlobalLayer>,
}

/// Two deployed sites whose alpha gateway declares one latency SLO:
/// 90% of query segments under 100 ms, judged over a 60 s fast window
/// and a 300 s slow window with burn thresholds 2x / 1x.
fn grid() -> Grid {
    let net = Network::new(SimClock::new(), 555);
    let directory = GmaDirectory::new();
    let mut gateways = Vec::new();
    for (i, name) in ["alpha", "beta"].iter().enumerate() {
        let model = SiteModel::generate(1000 + i as u64, &SiteSpec::new(name, 4, 2));
        model.advance_to(120_000);
        gridrm::agents::deploy_site(&net, model);
        let mut config = GatewayConfig::new(&format!("gw-{name}"), name);
        if *name == "alpha" {
            config.timeseries_interval_ms = 1_000;
            let mut spec = SloSpec::new(
                "segment-latency",
                SloObjective::Latency {
                    metric: "gridrm_site_latency_ms".to_owned(),
                    threshold_ms: 100.0,
                },
                0.9,
            );
            spec.fast_window_ms = 60_000;
            spec.slow_window_ms = 300_000;
            spec.fast_burn_threshold = 2.0;
            spec.slow_burn_threshold = 1.0;
            config.slos = vec![spec];
        }
        let gateway = Gateway::new(config, net.clone());
        install_into_gateway(&gateway);
        let layer = GlobalLayer::attach(gateway.clone(), directory.clone());
        gateways.push((gateway, layer));
    }
    let (beta, beta_layer) = gateways.pop().expect("beta");
    let (alpha, layer) = gateways.pop().expect("alpha");
    Grid {
        net,
        alpha,
        layer,
        _beta: beta,
        _beta_layer: beta_layer,
    }
}

/// One cross-Grid query through alpha's Global layer.
fn run_query(g: &Grid, source: &str) {
    g.layer
        .query(&ClientRequest::realtime(
            source,
            "SELECT Hostname, Load1 FROM Processor",
        ))
        .expect("grid query");
}

fn sql(gateway: &Gateway, query: &str) -> RowSet {
    gateway
        .query(&ClientRequest::realtime(TELEMETRY_URL, query))
        .expect("telemetry virtual table query")
        .rows
}

fn slo_status(gateway: &Gateway) -> SloStatus {
    gateway
        .telemetry()
        .slo()
        .snapshot()
        .into_iter()
        .find(|s| s.name == "segment-latency")
        .expect("latency SLO declared")
}

#[test]
fn latency_regression_fires_and_clears_across_all_surfaces() {
    let g = grid();
    let clock = g.alpha.clock().clone();
    let (_, alerts) = g.alpha.events().register_listener(ListenerFilter {
        category_prefix: Some("slo.".into()),
        ..Default::default()
    });

    // Healthy baseline: LAN-local and zero-latency remote segments,
    // all well under the 100 ms objective.
    for _ in 0..4 {
        run_query(&g, LOCAL_URL);
        run_query(&g, REMOTE_URL);
        clock.advance(5_000);
        g.alpha.pump();
    }
    let s = slo_status(&g.alpha);
    assert!(!s.firing, "baseline traffic must not fire");
    assert_eq!(s.burn_fast, 0.0);
    assert!(s.total >= 8.0, "segments observed: {}", s.total);
    assert!(g.layer.site_slo().healthy());

    // Induce the regression: every link now costs 250 ms one-way, so
    // each cross-site segment pays a 500 ms round trip — far over the
    // 100 ms objective — and the virtual clock is charged accordingly.
    g.net.set_default_latency(Latency::ms(250, 0));
    let mut fired_at = None;
    for _ in 0..30 {
        run_query(&g, REMOTE_URL);
        clock.advance(5_000);
        g.alpha.pump();
        if slo_status(&g.alpha).firing {
            fired_at = Some(clock.now_millis());
            break;
        }
    }
    // The alert fired at exactly the pump that evaluated it.
    let fired_at = fired_at.expect("regression fires the SLO within 30 pumps");
    let s = slo_status(&g.alpha);
    assert_eq!(s.since_ms, fired_at, "transition stamped with pump time");
    assert!(s.burn_fast >= 2.0, "fast burn {}", s.burn_fast);
    assert!(s.burn_slow >= 1.0, "slow burn {}", s.burn_slow);
    assert!(s.error_budget_remaining < 1.0);

    // Surface 1: the journal records the fire at the exact timestamp.
    let entries = g.alpha.telemetry().journal().recent_of_kind(KIND_SLO);
    let fire = entries
        .iter()
        .find(|e| e.at_ms == fired_at)
        .expect("journal entry at the fire time");
    assert_eq!(fire.severity, JournalSeverity::Critical);
    assert_eq!(fire.stage.as_deref(), Some("firing"));
    assert_eq!(fire.source, "segment-latency");

    // Surface 2: the gridrm_slo virtual SQL table shows the firing row.
    let rows = sql(
        &g.alpha,
        "SELECT name, firing, since_ms, burn_fast FROM gridrm_slo WHERE firing",
    );
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.rows()[0][0], SqlValue::Str("segment-latency".into()));
    assert_eq!(rows.rows()[0][2], SqlValue::Int(fired_at as i64));

    // Surface 3: Prometheus gauges carry the burn and the spent budget.
    let prom = g.alpha.telemetry().registry().render_prometheus();
    assert!(prom.contains("gridrm_slo_burn_rate{slo=\"segment-latency\",window=\"fast\"}"));
    assert!(prom.contains("gridrm_slo_error_budget{slo=\"segment-latency\"}"));
    assert!(prom.contains("gridrm_slo_transitions_total{state=\"firing\"} 1"));

    // Surface 4: the alert-event stream (events ingest at the firing
    // pump and dispatch on the next one).
    g.alpha.pump();
    let mut categories = Vec::new();
    while let Ok(e) = alerts.try_recv() {
        assert_eq!(e.source, "slo:segment-latency");
        categories.push(e.category);
    }
    assert!(
        categories.contains(&"slo.burn.firing".to_owned()),
        "firing alert dispatched: {categories:?}"
    );

    // Surface 5: the Global layer rolls the firing SLO up to the site.
    let rollup = g.layer.site_slo();
    assert_eq!(rollup.site, "alpha");
    assert_eq!((rollup.slos, rollup.firing), (1, 1));
    assert_eq!(rollup.firing_names, vec!["segment-latency".to_owned()]);
    assert!(!rollup.healthy());
    assert!(rollup.worst_burn_slow >= 1.0);

    // Recovery: latency back to LAN-zero; keep serving good traffic
    // until the bad samples age out of the 300 s slow window.
    g.net.set_default_latency(Latency::ZERO);
    let mut cleared_at = None;
    for _ in 0..200 {
        run_query(&g, REMOTE_URL);
        clock.advance(5_000);
        g.alpha.pump();
        if !slo_status(&g.alpha).firing {
            cleared_at = Some(clock.now_millis());
            break;
        }
    }
    let cleared_at = cleared_at.expect("SLO clears after the regression ends");
    let s = slo_status(&g.alpha);
    assert_eq!(s.since_ms, cleared_at, "clear stamped with pump time");
    assert!(s.burn_fast < 2.0 && s.burn_slow < 1.0);
    assert_eq!(s.transitions, 2, "one fire + one clear");

    // The clear is journaled at its exact time and the event follows.
    let entries = g.alpha.telemetry().journal().recent_of_kind(KIND_SLO);
    let clear = entries
        .iter()
        .find(|e| e.at_ms == cleared_at)
        .expect("journal entry at the clear time");
    assert_eq!(clear.severity, JournalSeverity::Info);
    assert_eq!(clear.stage.as_deref(), Some("ok"));
    g.alpha.pump();
    let mut recovered = false;
    while let Ok(e) = alerts.try_recv() {
        recovered |= e.category == "slo.burn.recovered";
    }
    assert!(recovered, "recovery alert dispatched");
    assert!(g.layer.site_slo().healthy());
}

#[test]
fn metrics_history_answers_time_bucket_rollups() {
    let g = grid();
    let clock = g.alpha.clock().clone();
    for _ in 0..12 {
        run_query(&g, LOCAL_URL);
        clock.advance(5_000);
        g.alpha.pump();
    }

    // The recorder sampled the request counter each pump; a time_bucket
    // rollup over the virtual table condenses it into 20 s buckets.
    let rows = sql(
        &g.alpha,
        "SELECT TIME_BUCKET(20000, ts_ms) AS bucket, COUNT(*), MAX(value) \
         FROM gridrm_metrics_history WHERE name = 'gridrm_requests_total' \
         GROUP BY TIME_BUCKET(20000, ts_ms) ORDER BY bucket",
    );
    assert!(rows.len() >= 3, "several buckets, got {}", rows.len());
    let mut prev_bucket = i64::MIN;
    let mut prev_max = f64::MIN;
    for row in rows.rows() {
        let bucket = row[0].as_i64().unwrap();
        assert_eq!(bucket % 20_000, 0, "bucket aligned: {bucket}");
        assert!(bucket > prev_bucket, "buckets ascend");
        prev_bucket = bucket;
        // The request counter is monotone, so per-bucket maxima ascend.
        let max = row[2].as_f64().unwrap();
        assert!(max >= prev_max, "counter maxima ascend");
        prev_max = max;
    }
    // The in-process kernel agrees with the SQL rollup bucket-for-bucket.
    let kernel = g
        .alpha
        .telemetry()
        .timeseries()
        .bucketed("gridrm_requests_total", "", 20_000);
    assert_eq!(kernel.len(), rows.len());
    for (b, row) in kernel.iter().zip(rows.rows()) {
        assert_eq!(b.bucket_ms as i64, row[0].as_i64().unwrap());
        assert_eq!(b.count as i64, row[1].as_i64().unwrap());
        assert_eq!(b.max, row[2].as_f64().unwrap());
    }
}
